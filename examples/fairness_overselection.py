"""Over-selection bias and fairness — the paper's Section 7.4 analysis.

Runs three deployments against the same heterogeneous population where
slow devices hold more data (the correlation the paper observed in
production):

* SyncFL without over-selection — unbiased but straggler-bound (ground truth);
* SyncFL with 30 % over-selection — fast rounds, but it discards the
  slowest clients' work;
* AsyncFL — fast *and* unbiased.

Prints the KS-test comparison of who actually got aggregated (Figure 11)
and the real-training perplexity-by-percentile table (Table 1).

Run:
    python examples/fairness_overselection.py
"""

from repro.harness import SMOKE, figure11, table1
from repro.harness.figures import print_figure11, print_table1


def main() -> None:
    print("Who gets aggregated? (surrogate fleet, Figure 11 analysis)")
    res11 = figure11(scale=SMOKE)
    print_figure11(res11)
    print(
        "AsyncFL participants are statistically indistinguishable from the "
        f"unbiased reference (D={res11.ks_async_exec.statistic:.4f}, "
        f"p={res11.ks_async_exec.pvalue:.2f}); over-selection is not "
        f"(D={res11.ks_sync_os_exec.statistic:.4f}, "
        f"p={res11.ks_sync_os_exec.pvalue:.1e})."
    )
    print()

    print("Does the bias hurt the model? (real LSTM training, Table 1 analysis)")
    res1 = table1(update_budget=800, server_lr=0.05, seed=0)
    print_table1(res1)
    rows = {r.method: r for r in res1.rows}
    ratio = lambda r: r.ppl_99 / r.ppl_all
    print(
        "heavy-data (99th pct) to population perplexity ratio — lower is fairer:\n"
        f"  sync w/o over-selection: {ratio(rows['sync_no_os']):.3f}\n"
        f"  sync w/  over-selection: {ratio(rows['sync_with_os']):.3f}"
        "   <- over-selection taxes heavy-data clients\n"
        f"  async (FedBuff):         {ratio(rows['async']):.3f}"
        "   <- fast AND fair\n"
        f"wall-clock: sync w/o OS took {rows['sync_no_os'].time_h:.2f} simulated "
        f"hours vs {rows['async'].time_h:.2f} for async."
    )


if __name__ == "__main__":
    main()
