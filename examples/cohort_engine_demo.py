"""Batched cohort engine, end to end without the simulator.

The discrete-event simulator processes each upload at its own arrival
timestamp, so inside a simulation the aggregation cores consume updates
one at a time even under cohort dispatch.  This demo shows the *direct*
driver the vectorized APIs exist for: a training loop with no simulated
time, where whole cohorts train through ``CohortTrainer`` and their
delta blocks enter FedBuff through ``receive_update_block`` — one
weights-by-deltas GEMM per server step instead of per-update AXPYs.

It also double-checks the equivalence guarantee on the way: the batched
pipeline must reproduce the scalar ``LocalTrainer`` +
``receive_update`` pipeline's model trajectory.

Run with: PYTHONPATH=src python examples/cohort_engine_demo.py
"""

import time

import numpy as np

from repro.core import CohortRequest, CohortTrainer, FedBuffAggregator, LocalTrainer
from repro.core.server_opt import FedAdam
from repro.core.state import GlobalModelState
from repro.data import CorpusSpec, FederatedDataset, TopicMarkovCorpus
from repro.nn import LSTMLanguageModel, ModelConfig

COHORT = 16
ROUNDS = 6
SEED = 0


def build():
    model_cfg = ModelConfig(vocab_size=24, embed_dim=8, hidden_dim=16)
    corpus = TopicMarkovCorpus(
        CorpusSpec(vocab_size=24, seq_len=10, reference_examples=24.0), seed=SEED
    )
    dataset = FederatedDataset(corpus)
    model = LSTMLanguageModel(model_cfg, seed=SEED)
    state = GlobalModelState(model.get_flat(), FedAdam(lr=0.05))
    agg = FedBuffAggregator(state, goal=COHORT, example_weighting="linear")
    return model_cfg, dataset, agg


def run_batched():
    """Cohorts through the batched trainer, blocks into the aggregator."""
    model_cfg, dataset, agg = build()
    trainer = CohortTrainer(model_cfg, lr=1.0, batch_size=8, seed=SEED)
    start = time.perf_counter()
    for rnd in range(ROUNDS):
        requests = []
        for i in range(COHORT):
            cid = rnd * COHORT + i
            version, vec = agg.register_download(cid)
            requests.append(
                CohortRequest(vec, dataset.client_dataset(cid, 12 + cid % 30), version)
            )
        results = trainer.train_cohort(requests)
        outs = agg.receive_update_block(results)
        step = outs[-1][1]
        assert step is not None, "a full cohort block must close a server step"
        mean_loss = float(np.mean([r.train_loss for r in results]))
        print(f"  round {rnd}: version={step.version} "
              f"weight={step.total_weight:8.1f} mean client loss={mean_loss:.3f}")
    return agg.state.current(), time.perf_counter() - start


def run_scalar():
    """The same schedule through the scalar trainer, one update at a time."""
    model_cfg, dataset, agg = build()
    trainer = LocalTrainer(model_cfg, lr=1.0, batch_size=8, seed=SEED)
    start = time.perf_counter()
    for rnd in range(ROUNDS):
        for i in range(COHORT):
            cid = rnd * COHORT + i
            version, vec = agg.register_download(cid)
            result = trainer.train(
                vec, dataset.client_dataset(cid, 12 + cid % 30), version
            )
            agg.receive_update(result)
    return agg.state.current(), time.perf_counter() - start


def main():
    print(f"FedBuff, {ROUNDS} server steps x {COHORT}-client cohorts, no simulator")
    print("batched pipeline (CohortTrainer + receive_update_block):")
    batched_vec, batched_s = run_batched()
    print("scalar pipeline (LocalTrainer + receive_update) ... ", end="", flush=True)
    scalar_vec, scalar_s = run_scalar()
    print("done")
    drift = float(np.max(np.abs(batched_vec - scalar_vec)))
    print(f"\nscalar {scalar_s*1e3:.0f} ms vs batched {batched_s*1e3:.0f} ms "
          f"-> {scalar_s / batched_s:.2f}x speedup")
    print(f"max |model divergence| after {ROUNDS} steps: {drift:.2e}")
    assert drift <= 1e-6, "batched pipeline diverged from the scalar reference"


if __name__ == "__main__":
    main()
