"""Sharded hierarchical aggregation plane, from the core up to the system.

PAPAYA scales one FL task past a single aggregator by sharding
aggregation horizontally: shard cores partially fold their slice of the
arriving client updates, and a root reducer merges the shard partials
into one server step.  This walkthrough shows the subsystem at its
three levels:

1. **Core equivalence** — drive identical arrival sequences through a
   single ``FedBuffAggregator`` and a ``ShardedFedBuffAggregator``
   (S = 4, hash routing) and watch the models agree to float64 rounding
   (the deterministic ascending-shard merge only *reassociates* the
   weighted sum).
2. **Critical-path speedup** — attach an ``AggregationPlaneClock`` and
   compare the single plane's sequential wall clock against the sharded
   plane's parallel-lane latency (what the ``shards`` experiment sweeps:
   ``python -m repro.harness shards``).
3. **System failover** — run a full simulated deployment described by a
   declarative ``repro.api.ScenarioSpec`` (``plane.name="sharded"``,
   S = 4) spreading one task's shards over three aggregator nodes, kill
   a node mid-run, and watch the heartbeat sweep drop only that node's
   shards (their in-flight contributions are lost, their slice
   re-routes) and re-place them on the survivors.

Run with: PYTHONPATH=src python examples/sharded_aggregation_demo.py
"""

import time

import numpy as np

from repro.api import (
    Deployment,
    ExecutionSpec,
    PlaneSpec,
    PopulationSpec,
    ScenarioSpec,
    TaskSpec,
)
from repro.core import FedBuffAggregator, ShardedFedBuffAggregator, TrainingResult
from repro.core.server_opt import FedAdam
from repro.core.sharding import AggregationPlaneClock
from repro.core.state import GlobalModelState

PARAMS = 20_000
GOAL = 32
ARRIVALS = 128
SEED = 0


def fresh_state():
    rng = np.random.default_rng(SEED)
    return GlobalModelState(
        rng.standard_normal(PARAMS).astype(np.float32), FedAdam(lr=0.1)
    )


def arrival_stream(n):
    rng = np.random.default_rng(SEED + 1)
    return [
        TrainingResult(
            client_id=cid,
            delta=rng.standard_normal(PARAMS).astype(np.float32),
            num_examples=int(rng.integers(1, 50)),
            train_loss=float(rng.random()),
            initial_version=0,
        )
        for cid in range(n)
    ]


def core_equivalence():
    """Same arrivals, single core vs 4 shards: float64-rounding agreement."""
    print("=== 1. core equivalence (S=4, hash routing) ===")
    results = arrival_stream(ARRIVALS)
    single = FedBuffAggregator(fresh_state(), goal=GOAL)
    sharded = ShardedFedBuffAggregator(
        fresh_state(), goal=GOAL, num_shards=4, routing="hash"
    )
    for agg in (single, sharded):
        for r in results:
            agg.register_download(r.client_id)
        for r in results:
            agg.receive_update(r)
    div = float(np.max(np.abs(single.state.current() - sharded.state.current())))
    print(f"server steps: single={single.version} sharded={sharded.version}")
    print(f"per-shard folds: {sharded.shard_loads()}")
    print(f"max model divergence: {div:.2e}  "
          "(merge reassociation surviving the float32 state cast)\n")


def critical_path_speedup():
    """Measured fold costs on parallel lanes vs the sequential plane."""
    print("=== 2. critical-path speedup (plane clock) ===")
    results = arrival_stream(ARRIVALS)

    single = FedBuffAggregator(fresh_state(), goal=GOAL)
    for r in results:
        single.register_download(r.client_id)
    t0 = time.perf_counter()
    for r in results:
        single.receive_update(r)
    single_s = time.perf_counter() - t0

    for num_shards in (2, 4, 8):
        clock = AggregationPlaneClock(num_shards)
        sharded = ShardedFedBuffAggregator(
            fresh_state(), goal=GOAL, num_shards=num_shards, clock=clock
        )
        for r in results:
            sharded.register_download(r.client_id)
        for r in results:
            sharded.receive_update(r)
        print(
            f"S={num_shards}: single {single_s * 1e3:6.2f} ms -> plane "
            f"{clock.elapsed * 1e3:6.2f} ms  "
            f"(speedup {single_s / clock.elapsed:.2f}x, "
            f"{clock.folds} folds, {clock.merges} merges)"
        )
    print("sweep the full operating curve: python -m repro.harness shards\n")


def system_failover():
    """One task, 4 shards over 3 nodes; node dies mid-run; plane recovers."""
    print("=== 3. system-level shard failover ===")
    spec = ScenarioSpec(
        population=PopulationSpec(n_devices=500, seed=SEED),
        tasks=(
            TaskSpec(name="demo", mode="async", concurrency=40,
                     aggregation_goal=10, model_size_bytes=100_000,
                     trainer="surrogate"),
        ),
        plane=PlaneSpec(name="sharded", num_shards=4, shard_routing="hash"),
        system={"n_aggregators": 3},
        execution=ExecutionSpec(seed=SEED, t_end_s=2500.0),
    )
    deployment = Deployment.from_spec(spec)
    fs = deployment.build()
    rt = fs.task_runtimes["demo"]
    print(f"initial shard placement: {fs.coordinator.shard_placement['demo']}")
    victim = rt.shard_nodes[0].node_id
    fs.inject_aggregator_failure(at_time=120.0, node_id=victim)
    res = deployment.run()
    stats = res.stats()
    print(f"killed node {victim} at t=120s; detected by heartbeat sweep")
    print(f"placement after failover: {fs.coordinator.shard_placement['demo']}")
    print(
        f"server steps: {stats.server_steps}, aggregated: {stats.aggregated}, "
        f"aborted: {stats.aborted} (dropped slices), "
        f"shard failovers: {rt.core.shard_failovers}"
    )
    for record in fs.log.of_kind("shard_failed"):
        print(
            f"  t={record.time:7.1f}s  shard {record.detail['shard']} on "
            f"node {record.detail['node']} died: lost "
            f"{record.detail['lost_buffered']} buffered, dropped "
            f"{record.detail['dropped_clients']} in-flight clients"
        )
    print(f"live shards at the end: {rt.core.live_shards()}")


if __name__ == "__main__":
    core_equivalence()
    critical_path_speedup()
    system_failover()
