"""Quickstart: federated next-word prediction with buffered async aggregation.

Trains a real (NumPy) LSTM language model across a simulated heterogeneous
device fleet using PAPAYA's AsyncFL mode (FedBuff + FedAdam), then prints
the training curve and a sample of model completions.

Run:
    python examples/quickstart.py
"""

from repro.core import FedAdam, GlobalModelState, LocalTrainer, TaskConfig, TrainingMode
from repro.data import CorpusSpec, FederatedDataset, TopicMarkovCorpus, Vocabulary
from repro.harness import print_series, print_table
from repro.nn import LSTMLanguageModel, ModelConfig
from repro.sim import DevicePopulation, PopulationConfig
from repro.system import FederatedSimulation, RealTrainingAdapter


def main() -> None:
    # --- the federation: a synthetic non-IID corpus over a device fleet ---
    vocab_size = 32
    corpus = TopicMarkovCorpus(CorpusSpec(vocab_size=vocab_size, seq_len=10), seed=7)
    dataset = FederatedDataset(corpus)
    population = DevicePopulation(
        PopulationConfig(n_devices=500, mean_examples=24, max_examples=80), seed=7
    )

    # --- the model + server optimizer (FedAdam, as in the paper) ---
    model_cfg = ModelConfig(vocab_size=vocab_size, embed_dim=12, hidden_dim=24)
    model = LSTMLanguageModel(model_cfg, seed=1)
    state = GlobalModelState(model.get_flat(), FedAdam(lr=0.05))
    trainer = LocalTrainer(model_cfg, lr=1.0, batch_size=8, seed=1)

    eval_ids = list(range(16))
    adapter = RealTrainingAdapter(
        trainer,
        dataset,
        state,
        eval_clients=eval_ids,
        eval_examples=[population.profile(i).n_examples for i in eval_ids],
        eval_every=5,
    )

    # --- the task: AsyncFL, 20 concurrent clients, server step every 5 updates ---
    task = TaskConfig(
        name="quickstart",
        mode=TrainingMode.ASYNC,
        concurrency=20,
        aggregation_goal=5,
        model_size_bytes=200_000,
    )
    sim = FederatedSimulation([(task, adapter)], population, seed=7)
    print("Training an LSTM next-word model with AsyncFL (FedBuff)...")
    result = sim.run(t_end=3_000_000.0, max_server_steps=60)

    # --- report ---
    times, losses = result.trace.loss_curve("quickstart")
    print_series("test loss over simulated time", times, losses)
    stats = result.stats()
    print_table(
        ["metric", "value"],
        [
            ["server model versions", stats.server_steps],
            ["client updates aggregated", stats.aggregated],
            ["client dropouts", stats.failed],
            ["mean staleness of aggregated updates", stats.mean_staleness],
            ["simulated wall-clock (h)", result.duration_s / 3600.0],
            ["final test loss", stats.final_loss],
        ],
        title="run summary",
    )

    # --- sample the trained model ---
    model.set_flat(state.current())
    vocab = Vocabulary(vocab_size)
    x, _ = corpus.generate_sequences(client_id=999, n_sequences=3, salt="demo")
    logits, _ = model.forward(x)
    print("sample next-word predictions:")
    for row, lg in zip(x, logits):
        context = vocab.decode(row[:5])
        predicted = vocab.word(int(lg[4].argmax()))
        print(f"  {context!r} -> {predicted!r}")


if __name__ == "__main__":
    main()
