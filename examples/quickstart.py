"""Quickstart: federated next-word prediction with buffered async aggregation.

Describes the whole deployment as a declarative ``repro.api.ScenarioSpec``
— population, task, trainer, execution knobs — and builds/runs it through
the ``Deployment`` façade: a real (NumPy) LSTM language model trained
across a simulated heterogeneous device fleet with PAPAYA's AsyncFL mode
(FedBuff + FedAdam).  Prints the training curve and a sample of model
completions.

The spec is plain data (``spec.to_dict()`` round-trips through JSON), so
the same scenario can be saved to a file, swept over
(``python -m repro.harness sweep scenario --spec quickstart.json
--grid tasks.0.concurrency=10,20,40``), or tweaked with
``spec.override("tasks.0.aggregation_goal", 10)``.

Run:
    python examples/quickstart.py
"""

from repro.api import Deployment, ExecutionSpec, PopulationSpec, ScenarioSpec, TaskSpec
from repro.data import Vocabulary
from repro.harness import print_series, print_table
from repro.nn import LSTMLanguageModel

VOCAB_SIZE = 32

# --- the whole deployment, declaratively -----------------------------------
# AsyncFL, 20 concurrent clients, a server step every 5 updates, training a
# real LSTM (the "real_lstm" trainer registered in repro.system.planes).
SPEC = ScenarioSpec(
    population=PopulationSpec(
        n_devices=500,
        seed=7,
        overrides={"mean_examples": 24, "max_examples": 80},
    ),
    tasks=(
        TaskSpec(
            name="quickstart",
            mode="async",
            concurrency=20,
            aggregation_goal=5,
            model_size_bytes=200_000,
            trainer="real_lstm",
            trainer_params={
                "vocab_size": VOCAB_SIZE,
                "embed_dim": 12,
                "hidden_dim": 24,
                "corpus_seed": 7,
                "model_seed": 1,
                "server_lr": 0.05,
                "client_lr": 1.0,
                "batch_size": 8,
                "n_eval_clients": 16,
                "eval_every": 5,
            },
        ),
    ),
    execution=ExecutionSpec(seed=7, t_end_s=3_000_000.0, max_server_steps=60),
)


def main() -> None:
    deployment = Deployment.from_spec(SPEC)
    print("Training an LSTM next-word model with AsyncFL (FedBuff)...")
    result = deployment.run()

    # --- report ---
    times, losses = result.trace.loss_curve("quickstart")
    print_series("test loss over simulated time", times, losses)
    stats = result.stats()
    print_table(
        ["metric", "value"],
        [
            ["server model versions", stats.server_steps],
            ["client updates aggregated", stats.aggregated],
            ["client dropouts", stats.failed],
            ["mean staleness of aggregated updates", stats.mean_staleness],
            ["simulated wall-clock (h)", result.duration_s / 3600.0],
            ["final test loss", stats.final_loss],
        ],
        title="run summary",
    )

    # --- sample the trained model ---
    adapter = deployment.adapter("quickstart")
    model = LSTMLanguageModel(adapter.trainer.model_config, seed=1)
    model.set_flat(adapter.state.current())
    vocab = Vocabulary(VOCAB_SIZE)
    corpus = adapter.dataset.corpus  # the exact corpus the fleet trained on
    x, _ = corpus.generate_sequences(client_id=999, n_sequences=3, salt="demo")
    logits, _ = model.forward(x)
    print("sample next-word predictions:")
    for row, lg in zip(x, logits):
        context = vocab.decode(row[:5])
        predicted = vocab.word(int(lg[4].argmax()))
        print(f"  {context!r} -> {predicted!r}")


if __name__ == "__main__":
    main()
