"""Parallel multi-seed experiment sweep with caching and aggregation.

Fans a small grid of sweep cells — (experiment × seed × operating point)
— out across worker processes via ``repro.harness.sweep``, then prints
the mean / stddev / min-max aggregate across seeds.  A second run (same
cache directory) completes almost instantly because every cell result is
stored content-addressed on disk.

The CLI front-end to the same machinery::

    python -m repro.harness sweep fig9 --seeds 0..4 --jobs 8

Run from the repository root::

    PYTHONPATH=src python examples/sweep_demo.py
"""

import tempfile

from repro.api import ExecutionSpec, PopulationSpec, ScenarioSpec, TaskSpec
from repro.harness import Scale
from repro.harness.cache import ResultCache
from repro.harness.report import print_aggregate
from repro.harness.sweep import build_cells, build_scenario_cells, run_sweep

# A deliberately tiny scale so the demo finishes in seconds.
TINY = Scale(
    name="demo-tiny",
    base_concurrency=12,
    base_goal=3,
    concurrency_sweep=(6, 12),
    goal_sweep=(3, 6, 12),
    population=3000,
    sim_hours=1.0,
    critical_goal=5.0,
)


def main() -> None:
    cache = ResultCache(tempfile.mkdtemp(prefix="sweep-demo-"))

    # fig9 across three seeds, and a one-axis operating-point grid over
    # the convergence target to show param grids riding along.
    cells = build_cells(
        ["fig9"], TINY, seeds=[0, 1, 2], grid={"target_loss": [2.7, 2.8]}
    )
    print(f"sweeping {len(cells)} cells on 2 worker processes...")
    sweep = run_sweep(cells, jobs=2, cache=cache, progress=print)
    print(f"\n[{sweep.misses} cells computed, {sweep.hits} from cache, "
          f"{sweep.duration_s:.1f}s]\n")

    for group in sweep.groups():
        print_aggregate(
            group.aggregate,
            title=f"{group.describe()} — mean/std/min/max over {len(group.cells)} seeds",
        )

    # Re-run the identical sweep: every cell is now a cache hit.
    again = run_sweep(cells, jobs=2, cache=cache)
    print(f"re-run: {again.hits}/{len(cells)} cells served from cache "
          f"in {again.duration_s:.2f}s")

    # --- declarative scenario sweeps -------------------------------------
    # Any deployment a repro.api.ScenarioSpec can describe is sweepable:
    # grid keys are dotted spec-override paths applied to the base spec
    # (the CLI equivalent is
    #   python -m repro.harness sweep scenario --spec demo.json \
    #       --grid tasks.0.concurrency=6,12).
    base = ScenarioSpec(
        population=PopulationSpec(n_devices=2000, seed=0),
        tasks=(
            TaskSpec(name="async", mode="async", concurrency=12,
                     aggregation_goal=3, model_size_bytes=1_000_000,
                     trainer="surrogate",
                     trainer_params={"critical_goal": 5.0}),
        ),
        execution=ExecutionSpec(seed=0, t_end_s=1800.0),
    )
    scenario_cells = build_scenario_cells(
        base, seeds=[0, 1], grid={"tasks.0.concurrency": [6, 12]}
    )
    print(f"\nsweeping {len(scenario_cells)} scenario cells "
          f"(grid over tasks.0.concurrency)...")
    scenario_sweep = run_sweep(scenario_cells, jobs=2, cache=cache)
    for group in scenario_sweep.groups():
        conc = dict(group.params)["tasks.0.concurrency"]
        steps = group.aggregate["tasks"][0]["server_steps"]
        print(f"  concurrency={conc}: server steps "
              f"mean={steps['mean']:.1f} (min {steps['min']}, max {steps['max']})")


if __name__ == "__main__":
    main()
