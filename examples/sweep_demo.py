"""Parallel multi-seed experiment sweep with caching and aggregation.

Fans a small grid of sweep cells — (experiment × seed × operating point)
— out across worker processes via ``repro.harness.sweep``, then prints
the mean / stddev / min-max aggregate across seeds.  A second run (same
cache directory) completes almost instantly because every cell result is
stored content-addressed on disk.

The CLI front-end to the same machinery::

    python -m repro.harness sweep fig9 --seeds 0..4 --jobs 8

Run from the repository root::

    PYTHONPATH=src python examples/sweep_demo.py
"""

import tempfile

from repro.harness import Scale
from repro.harness.cache import ResultCache
from repro.harness.report import print_aggregate
from repro.harness.sweep import build_cells, run_sweep

# A deliberately tiny scale so the demo finishes in seconds.
TINY = Scale(
    name="demo-tiny",
    base_concurrency=12,
    base_goal=3,
    concurrency_sweep=(6, 12),
    goal_sweep=(3, 6, 12),
    population=3000,
    sim_hours=1.0,
    critical_goal=5.0,
)


def main() -> None:
    cache = ResultCache(tempfile.mkdtemp(prefix="sweep-demo-"))

    # fig9 across three seeds, and a one-axis operating-point grid over
    # the convergence target to show param grids riding along.
    cells = build_cells(
        ["fig9"], TINY, seeds=[0, 1, 2], grid={"target_loss": [2.7, 2.8]}
    )
    print(f"sweeping {len(cells)} cells on 2 worker processes...")
    sweep = run_sweep(cells, jobs=2, cache=cache, progress=print)
    print(f"\n[{sweep.misses} cells computed, {sweep.hits} from cache, "
          f"{sweep.duration_s:.1f}s]\n")

    for group in sweep.groups():
        print_aggregate(
            group.aggregate,
            title=f"{group.describe()} — mean/std/min/max over {len(group.cells)} seeds",
        )

    # Re-run the identical sweep: every cell is now a cache hit.
    again = run_sweep(cells, jobs=2, cache=cache)
    print(f"re-run: {again.hits}/{len(cells)} cells served from cache "
          f"in {again.duration_s:.2f}s")


if __name__ == "__main__":
    main()
