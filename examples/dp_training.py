"""Differentially private AsyncFL — the paper's named future-work feature.

Trains the quickstart LSTM with :class:`DPFedBuffAggregator`: every client
delta is L2-clipped, calibrated Gaussian noise is added at each server
step, and a zCDP accountant reports the (ε, δ) guarantee as training
progresses.  Shows the privacy/utility trade-off across noise multipliers.

Run:
    python examples/dp_training.py
"""

import numpy as np

from repro.core import (
    DPConfig,
    DPFedBuffAggregator,
    FedAdam,
    GlobalModelState,
    LocalTrainer,
)
from repro.data import CorpusSpec, FederatedDataset, TopicMarkovCorpus
from repro.harness import print_table
from repro.nn import LSTMLanguageModel, ModelConfig


def train_with_dp(noise_multiplier: float, steps: int = 25, goal: int = 8):
    """One DP-FedBuff run; returns (final test loss, epsilon at delta=1e-6)."""
    vocab = 24
    model_cfg = ModelConfig(vocab_size=vocab, embed_dim=8, hidden_dim=16)
    corpus = TopicMarkovCorpus(CorpusSpec(vocab_size=vocab, seq_len=10), seed=5)
    dataset = FederatedDataset(corpus)
    model = LSTMLanguageModel(model_cfg, seed=0)
    trainer = LocalTrainer(model_cfg, lr=1.0, batch_size=8, seed=0)
    state = GlobalModelState(model.get_flat(), FedAdam(lr=0.05))

    dp = DPConfig(clip_norm=1.0, noise_multiplier=noise_multiplier, delta=1e-6)
    agg = DPFedBuffAggregator(state, goal=goal, dp=dp, seed=0)

    ex, ey = dataset.evaluation_batch(list(range(12)), [30] * 12)
    client = 100
    for step in range(steps):
        for _ in range(goal):
            version, vec = agg.register_download(client)
            ds = dataset.client_dataset(client, 30)
            agg.receive_update(trainer.train(vec, ds, version))
            client += 1
    loss = trainer.evaluate(state.current(), ex, ey)
    return loss, agg.epsilon_spent


def main() -> None:
    print("DP-FedBuff: privacy/utility trade-off (25 server steps, delta=1e-6)")
    rows = []
    for z in (0.0, 0.3, 1.0, 3.0):
        loss, eps = train_with_dp(z)
        rows.append([z, round(loss, 4), "inf" if np.isinf(eps) else round(eps, 2)])
    print_table(["noise multiplier z", "final test loss", "epsilon"], rows,
                title="privacy/utility frontier")
    print(
        "z=0 is non-private (epsilon=inf); larger z buys a tighter epsilon at "
        "the cost of model quality. The accountant composes one Gaussian "
        "release per server step under zCDP."
    )


if __name__ == "__main__":
    main()
