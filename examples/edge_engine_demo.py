"""The Edge Training Engine: one device, two ML tasks, one data policy.

Demonstrates Appendix E.5's client design: an Example Store that enforces
data retention/use policy, and an Executor that swaps between ML tasks —
the paper's LSTM next-word predictor and a structurally different topic
classifier — without changing the engine.

Run:
    python examples/edge_engine_demo.py
"""

import numpy as np

from repro.client import (
    ExampleStore,
    Executor,
    NextWordTask,
    RetentionPolicy,
    TopicClassificationTask,
)
from repro.data import CorpusSpec, TopicMarkovCorpus
from repro.harness import print_table
from repro.nn import ModelConfig

DAY = 24 * 3600.0


def main() -> None:
    vocab = 24
    corpus = TopicMarkovCorpus(
        CorpusSpec(vocab_size=vocab, n_topics=3, seq_len=10,
                   topic_concentration=0.1, topic_sharpness=8.0),
        seed=9,
    )

    # --- the device's Example Store: 30-day retention, LM + topic tasks only ---
    store = ExampleStore(
        RetentionPolicy(
            max_age_s=30 * DAY,
            max_examples=500,
            allowed_tasks=frozenset({"next-word", "topic"}),
        )
    )
    # The user "types" for 60 days; day-by-day ingestion.
    device_id = 17
    for day in range(60):
        x, y = corpus.generate_sequences(device_id, 4, salt=("day", day))
        store.ingest_batch(x, y, now=day * DAY)
    now = 60 * DAY
    live = store.count(now)
    print_table(
        ["store metric", "value"],
        [
            ["examples ingested over 60 days", store.total_ingested],
            ["expired by the 30-day policy", store.total_expired],
            ["live examples available to training", live],
        ],
        title="Example Store (retention policy at work)",
    )

    # --- task 1: the LM the paper trains ---
    lm_task = NextWordTask(ModelConfig(vocab_size=vocab, embed_dim=8, hidden_dim=16))
    lm_exec = Executor(lm_task, lr=1.0, batch_size=8, epochs=3, seed=0)
    flat = lm_task.init_params(seed=1)
    x, y = store.training_arrays(now, task="next-word")
    before = lm_task.evaluate(flat, x, y)
    res = lm_exec.run_from_store(flat, store, now, task_name="next-word",
                                 client_id=device_id)
    after = lm_task.evaluate(flat + res.delta, x, y)

    # --- task 2: swap in a different workload on the same engine ---
    clf_task = TopicClassificationTask(vocab_size=vocab, n_classes=3)
    clf_exec = Executor(clf_task, lr=2.0, batch_size=16, epochs=20, seed=0)
    label = int(np.argmax(corpus.client_topic_mixture(device_id)))
    labels = np.full(x.shape[0], label, dtype=np.int64)
    clf_flat = clf_task.init_params(seed=1)
    clf_res = clf_exec.run(clf_flat, x, labels, client_id=device_id)
    acc = clf_task.accuracy(clf_flat + clf_res.delta, x, labels)

    print_table(
        ["task", "result"],
        [
            ["next-word LM loss (before -> after)", f"{before:.3f} -> {after:.3f}"],
            ["topic classifier accuracy", f"{acc:.2f}"],
            ["same Executor engine?", "yes — task objects swapped"],
        ],
        title="Executor (two ML tasks, one engine)",
    )

    # --- the data-use policy denies unknown readers ---
    try:
        store.training_arrays(now, task="ads-ranking")
    except PermissionError as exc:
        print(f"policy enforcement: {exc}")


if __name__ == "__main__":
    main()
