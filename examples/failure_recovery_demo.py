"""Failure recovery in the PAPAYA control plane (paper Appendix E.4).

Injects the two failure modes the paper designs for, into a live AsyncFL
run, and shows training riding through both:

* an **Aggregator dies** mid-run — the Coordinator detects it via missed
  heartbeats, reassigns its task to another Aggregator (the in-memory
  buffer and in-flight sessions are lost; the model state survives);
* the **Coordinator goes down** — participating clients are unaffected
  and server steps continue; only *new* client assignment pauses until a
  leader is re-elected and the recovery period rebuilds the assignment
  view.

Run:
    python examples/failure_recovery_demo.py
"""


from repro.api import Deployment, ExecutionSpec, PopulationSpec, ScenarioSpec, TaskSpec
from repro.harness import print_series, print_table


def main() -> None:
    spec = ScenarioSpec(
        population=PopulationSpec(n_devices=20_000, seed=11),
        tasks=(
            TaskSpec(
                name="resilient",
                mode="async",
                concurrency=64,
                aggregation_goal=8,
                model_size_bytes=1_000_000,
                trainer="surrogate",
            ),
        ),
        system={"n_aggregators": 3, "heartbeat_interval_s": 5.0},
        execution=ExecutionSpec(seed=11, t_end_s=3600.0),
    )
    deployment = Deployment.from_spec(spec)
    sim = deployment.build()

    # Inject: aggregator 0 dies at t=10min; coordinator outage 25-27min.
    sim.inject_aggregator_failure(at_time=600.0, node_id=0)
    sim.inject_coordinator_outage(at_time=1500.0, duration_s=120.0)

    print("Running 1 simulated hour with injected failures ...")
    result = deployment.run()

    times, counts = result.trace.active_series()
    print_series("active clients (note the dips at 10min and 25min)", times, counts)

    reassigned = result.log.of_kind("tasks_reassigned")
    steps = result.trace.server_steps
    during_outage = sum(1 for s in steps if 1500.0 < s.time < 1620.0)
    print_table(
        ["event", "observation"],
        [
            ["aggregator failure detected at (s)",
             round(reassigned[0].time, 1) if reassigned else "never"],
            ["tasks reassigned", reassigned[0].detail["tasks"] if reassigned else []],
            ["sessions lost to the failure", result.stats().aborted],
            ["server steps during coordinator outage", during_outage],
            ["total server steps", result.stats().server_steps],
            ["final loss", round(result.stats().final_loss, 3)],
        ],
        title="failure-recovery transcript",
    )
    print(
        "Training progressed through both failures: the task moved to a "
        "healthy aggregator, and the coordinator outage only paused new "
        "client selection."
    )


if __name__ == "__main__":
    main()
