"""Asynchronous Secure Aggregation, end to end (paper Section 5, App. A–C).

Walks the full Figure 16 protocol with real cryptographic machinery:

1. a Trusted Secure Aggregator (simulated enclave) mints Diffie–Hellman
   key-exchange legs carried by attestation quotes, and its binary is
   registered in a verifiable (Merkle) log;
2. clients verify the quote + log inclusion proof, mask their model
   updates with a PRNG-expanded one-time pad, and seal the 16-byte seed
   to the TSA;
3. the untrusted server aggregates *masked* updates incrementally — it
   never sees an individual update in the clear;
4. at the aggregation goal, the TSA releases the summed mask exactly
   once, and the server decodes only the aggregate.

Also demonstrates the tamper-detection, the O(K+m) boundary traffic, and
the vectorized block data plane (``submit_block`` + check-in-time DH
completion), which is bit-identical to the per-client path.

Run:
    python examples/secure_aggregation_demo.py
"""

import time

import numpy as np

from repro.harness import print_table
from repro.secagg import (
    BoundaryCostModel,
    SecAggClient,
    build_deployment,
    run_secure_aggregation,
)
from repro.secagg.threat import flip_sealed_ciphertext_bit
from repro.utils import child_rng


def main() -> None:
    rng = child_rng(42, "secagg-demo")
    n_clients, dim = 8, 1024
    updates = [rng.uniform(-1, 1, dim) for _ in range(n_clients)]

    print(f"Securely aggregating {n_clients} model updates of {dim} floats ...")
    aggregate, dep = run_secure_aggregation(updates, threshold=n_clients, seed=42)
    err = float(np.abs(aggregate - np.sum(updates, axis=0)).max())

    masked = dep.server.accepted_submissions[0].masked_update
    print_table(
        ["check", "result"],
        [
            ["aggregate max abs error (fixed point)", f"{err:.2e}"],
            ["server saw plaintext updates?", "no — only masked group vectors"],
            ["first masked word (looks like noise)", hex(int(masked[0]))],
            ["TEE boundary bytes in (seeds etc.)", dep.tsa.boundary_bytes_in],
            ["TEE boundary bytes out (unmask)", dep.tsa.boundary_bytes_out],
            [f"naive TEE would have moved", f"{n_clients * dim * 4} bytes in"],
        ],
        title="protocol transcript",
    )

    # --- tamper with a sealed seed: the TSA must reject it ---
    dep2 = build_deployment(vector_length=dim, threshold=1, seed=43)
    client = SecAggClient(
        0, dep2.codec, dep2.authority, dep2.tsa.binary_hash,
        dep2.tsa.params_hash, child_rng(43, "client"),
    )
    sub = client.participate(updates[0], dep2.server.assign_leg(),
                             log_bundle=dep2.log_bundle)
    accepted = dep2.server.submit(flip_sealed_ciphertext_bit(sub))
    print(f"tampered sealed seed accepted by TSA? {accepted}  (must be False)")

    # --- the vectorized block data plane: bit-identical, faster ---
    t0 = time.perf_counter()
    agg_scalar, dep_s = run_secure_aggregation(updates, seed=44)
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    agg_block, dep_b = run_secure_aggregation(updates, seed=44, block_submissions=True)
    t_block = time.perf_counter() - t0
    print(
        f"block data plane bit-identical to scalar? "
        f"{np.array_equal(agg_scalar, agg_block)}  "
        f"(boundary bytes equal? "
        f"{dep_s.tsa.boundary_bytes_in == dep_b.tsa.boundary_bytes_in}; "
        f"end-to-end {t_scalar * 1e3:.1f} ms scalar vs {t_block * 1e3:.1f} ms block)"
    )

    # --- the Figure 6 cost model at the paper's operating points ---
    m = BoundaryCostModel()
    mb20 = 20 * 1024 * 1024
    print_table(
        ["K", "naive TSA (ms)", "AsyncSecAgg (ms)"],
        [[k, round(m.naive_transfer_ms(k, mb20), 1),
          round(m.async_transfer_ms(k, mb20), 2)] for k in (10, 100, 1000)],
        title="host<->TEE transfer time, 20MB model (paper Figure 6)",
    )


if __name__ == "__main__":
    main()
