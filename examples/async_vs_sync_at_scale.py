"""AsyncFL vs SyncFL at fleet scale — the paper's headline comparison.

Reproduces the Figure 9 experiment at a configurable scale: for each
concurrency level, run SyncFL (30 % over-selection, the paper's best
synchronous setup) and AsyncFL (FedBuff with K ≈ 10 % of concurrency) to
the same target loss, and report wall-clock speedup and communication
savings.  Uses the calibrated surrogate trainer so fleet-scale wall-clock
behaviour is simulated in seconds.

Run:
    python examples/async_vs_sync_at_scale.py            # smoke scale
    python examples/async_vs_sync_at_scale.py default    # 10x larger
"""

import sys

from repro.harness import DEFAULT, SMOKE, figure9
from repro.harness.figures import print_figure9


def main() -> None:
    scale = DEFAULT if len(sys.argv) > 1 and sys.argv[1] == "default" else SMOKE
    print(
        f"Running the Figure 9 sweep at {scale.name!r} scale "
        f"(concurrency {scale.concurrency_sweep[0]}..{scale.concurrency_sweep[-1]}, "
        f"population {scale.population}) ..."
    )
    res = figure9(scale=scale)
    print_figure9(res)

    rows = [r for r in res.rows if r.speedup is not None]
    if rows:
        top = rows[-1]
        print(
            f"At concurrency {top.concurrency}: AsyncFL is {top.speedup:.1f}x "
            f"faster and uses {top.trip_ratio:.1f}x fewer communication trips "
            f"(paper at full scale: ~5x and ~8x)."
        )


if __name__ == "__main__":
    main()
