"""Deterministic fault injection for simulated PAPAYA deployments.

PAPAYA's production claim is that async FL stays correct under constant
device churn, stragglers, and infrastructure failure.  This module makes
adverse conditions first-class *configuration*: a :class:`FaultInjector`
schedules declarative fault events on the simulation engine, seeded from
its own RNG stream so the same spec + seed + schedule replays
bit-identically — and a run with no fault events constructs nothing and
perturbs nothing (the byte-identity contract of the default path).

Fault kinds (the :data:`FAULT_KINDS` table is the single source of
truth; ``repro.api.FaultSpec`` validates against it):

========================  ====================================================
``aggregator_crash``      kill aggregator ``node`` (optional recovery)
``aggregator_flap``       repeated crash/recover cycles on one node
``coordinator_outage``    coordinator down for ``duration_s``
``dropout_storm``         kill a seeded fraction of active sessions per tick
``straggler_tier``        slow a stable device subset's network by ``factor``
``network_delay``         slow every transfer by ``factor`` for a window
``network_loss``          drop a seeded fraction of uploads in a window
``blackout``              a fraction of check-ins rejected for a window
``availability_wave``     diurnal sinusoidal check-in rejection
``flash_crowd``           bursts of extra device check-ins
``worker_kill``           terminate a shard worker process mid-epoch
========================  ====================================================

Interception hooks are installed lazily, only for the kinds actually
scheduled: the network proxy only exists when a delay/straggler window
was declared, the upload gate only for loss windows, the check-in gate
only for blackout/wave windows.  A lazily created injector with no
events (the deprecated ``inject_*`` shim path) therefore changes no
behaviour at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.sim.trace import Outcome
from repro.utils.rng import child_rng, stable_hash64

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.orchestrator import FederatedSimulation, RunResult

__all__ = [
    "FAULT_KINDS",
    "FaultKind",
    "FaultParamError",
    "FaultInjector",
    "validate_fault_params",
    "event_end_s",
    "recovery_report",
]


class FaultParamError(ValueError):
    """A fault event parameter failed validation (carries the param name)."""

    def __init__(self, param: str, message: str):
        super().__init__(f"{param}: {message}")
        self.param = param
        self.message = message


def _int_ge(n: int) -> Callable[[Any], int]:
    def check(value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError("must be an integer")
        if isinstance(value, float) and not value.is_integer():
            raise ValueError("must be an integer")
        value = int(value)
        if value < n:
            raise ValueError(f"must be >= {n}")
        return value

    return check


def _float_pos(value: Any) -> float:
    value = float(value)
    if not (math.isfinite(value) and value > 0):
        raise ValueError("must be a positive number")
    return value


def _fraction(value: Any) -> float:
    value = float(value)
    if not (0.0 < value <= 1.0):
        raise ValueError("must be in (0, 1]")
    return value


def _string(value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise ValueError("must be a non-empty string")
    return value


@dataclass(frozen=True)
class FaultKind:
    """Schema of one fault kind: required/optional params and validators."""

    name: str
    summary: str
    validators: Mapping[str, Callable[[Any], Any]]
    required: tuple[str, ...]
    defaults: Mapping[str, Any] = field(default_factory=dict)


FAULT_KINDS: dict[str, FaultKind] = {
    k.name: k
    for k in (
        FaultKind(
            "aggregator_crash",
            "kill aggregator `node` at `at_s`; recover after `recover_after_s`",
            {"node": _int_ge(0), "recover_after_s": _float_pos},
            required=("node",),
        ),
        FaultKind(
            "aggregator_flap",
            "`count` crash/recover cycles of `down_s`/`up_s` on `node`",
            {"node": _int_ge(0), "count": _int_ge(1),
             "down_s": _float_pos, "up_s": _float_pos},
            required=("node", "count", "down_s", "up_s"),
        ),
        FaultKind(
            "coordinator_outage",
            "coordinator down for `duration_s` (then leader election + recovery period)",
            {"duration_s": _float_pos},
            required=("duration_s",),
        ),
        FaultKind(
            "dropout_storm",
            "kill a seeded `fraction` of active sessions every `interval_s` "
            "for `duration_s`",
            {"fraction": _fraction, "duration_s": _float_pos,
             "interval_s": _float_pos},
            required=("fraction",),
            defaults={"duration_s": 0.0, "interval_s": 60.0},
        ),
        FaultKind(
            "straggler_tier",
            "a stable hashed `fraction` of devices gets `factor`x slower "
            "transfers for `duration_s`",
            {"factor": _float_pos, "fraction": _fraction, "duration_s": _float_pos},
            required=("factor", "fraction", "duration_s"),
        ),
        FaultKind(
            "network_delay",
            "every transfer `factor`x slower for `duration_s`",
            {"factor": _float_pos, "duration_s": _float_pos},
            required=("factor", "duration_s"),
        ),
        FaultKind(
            "network_loss",
            "a seeded `rate` of arriving uploads dropped for `duration_s`",
            {"rate": _fraction, "duration_s": _float_pos},
            required=("rate", "duration_s"),
        ),
        FaultKind(
            "blackout",
            "a seeded `fraction` of check-ins rejected for `duration_s`",
            {"fraction": _fraction, "duration_s": _float_pos},
            required=("fraction", "duration_s"),
        ),
        FaultKind(
            "availability_wave",
            "sinusoidal check-in rejection: peak `amplitude`, `period_s`, "
            "for `duration_s` (diurnal availability)",
            {"amplitude": _fraction, "period_s": _float_pos,
             "duration_s": _float_pos},
            required=("amplitude", "period_s", "duration_s"),
        ),
        FaultKind(
            "flash_crowd",
            "`burst` extra device check-ins every `interval_s` for `duration_s`",
            {"burst": _int_ge(1), "duration_s": _float_pos,
             "interval_s": _float_pos},
            required=("burst",),
            defaults={"duration_s": 0.0, "interval_s": 60.0},
        ),
        FaultKind(
            "worker_kill",
            "terminate the process-executor worker of `task`'s shard `shard`",
            {"task": _string, "shard": _int_ge(0)},
            required=("task", "shard"),
        ),
    )
}


def validate_fault_params(
    kind: str, params: Mapping[str, Any], fill_defaults: bool = False
) -> dict[str, Any]:
    """Validate + normalize one event's params against :data:`FAULT_KINDS`.

    Raises :class:`FaultParamError` naming the offending parameter.  With
    ``fill_defaults`` the optional params' defaults are merged in (the
    injector wants complete params; the spec layer stores only what the
    user wrote so round-tripped JSON stays minimal).
    """
    if kind not in FAULT_KINDS:
        raise FaultParamError(
            "kind", f"unknown fault kind {kind!r}; known: {', '.join(sorted(FAULT_KINDS))}"
        )
    schema = FAULT_KINDS[kind]
    out: dict[str, Any] = {}
    for name, value in params.items():
        if name not in schema.validators:
            raise FaultParamError(
                name,
                f"unknown parameter for {kind}; "
                f"accepts: {', '.join(sorted(schema.validators))}",
            )
        try:
            out[name] = schema.validators[name](value)
        except (TypeError, ValueError) as exc:
            raise FaultParamError(name, str(exc)) from None
    for name in schema.required:
        if name not in out:
            raise FaultParamError(name, f"required by {kind}")
    if fill_defaults:
        for name, value in schema.defaults.items():
            out.setdefault(name, value)
    return out


def event_end_s(kind: str, at_s: float, params: Mapping[str, Any]) -> float:
    """When the fault window of one event closes (recovery-time anchor)."""
    p = validate_fault_params(kind, params, fill_defaults=True)
    if kind == "aggregator_crash":
        return at_s + p.get("recover_after_s", 0.0)
    if kind == "aggregator_flap":
        return at_s + p["count"] * (p["down_s"] + p["up_s"])
    if kind in ("dropout_storm", "flash_crowd"):
        return at_s + p["duration_s"]
    return at_s + p.get("duration_s", 0.0)


# ---------------------------------------------------------------------------
# Interception proxies
# ---------------------------------------------------------------------------

class _FaultedNetworkModel:
    """Wraps a :class:`~repro.sim.network.NetworkModel`, stretching
    transfer times by the injector's active delay/straggler windows."""

    def __init__(self, base, injector: "FaultInjector"):
        self._base = base
        self._injector = injector

    def download_time(self, profile, nbytes: int) -> float:
        return self._base.download_time(profile, nbytes) * self._injector.network_factor(
            profile.device_id
        )

    def upload_time(self, profile, nbytes: int) -> float:
        return self._base.upload_time(profile, nbytes) * self._injector.network_factor(
            profile.device_id
        )

    def roundtrip(self) -> float:
        # No device in scope: only global (fraction == 1) windows apply.
        return self._base.roundtrip() * self._injector.network_factor(None)

    def __getattr__(self, name: str):
        return getattr(self._base, name)


# ---------------------------------------------------------------------------
# The injector
# ---------------------------------------------------------------------------

class FaultInjector:
    """Schedules declarative fault events on a built simulation.

    One injector per :class:`FederatedSimulation`; ``Deployment.build``
    creates it when the spec's ``FaultSpec`` has events, seeding its
    private RNG stream (``child_rng(seed, "fault-injector")``) so fault
    rolls never perturb the orchestrator's streams.
    """

    def __init__(self, fedsim: "FederatedSimulation", seed: int = 0):
        self.fedsim = fedsim
        self.sim = fedsim.sim
        self.log = fedsim.log
        self.rng = child_rng(seed, "fault-injector")
        self.fired: list[tuple[float, str]] = []
        self.uploads_lost = 0
        self.checkins_blocked = 0
        self.last_fault_end_s = 0.0
        # (start, end, factor, fraction, salt); fraction 1.0 = global
        self._delay_windows: list[tuple[float, float, float, float, int]] = []
        self._loss_windows: list[tuple[float, float, float]] = []
        # ("blackout", start, end, fraction) | ("wave", start, end, amp, period)
        self._gate_windows: list[tuple] = []
        self._network_wrapped = False
        self._upload_gated = False
        self._n_events = 0
        fedsim.fault_injector = self

    # -- scheduling ------------------------------------------------------------

    def schedule(self, kind: str, at_s: float, **params: Any) -> None:
        """Validate one fault event and put its actions on the calendar."""
        at_s = float(at_s)
        if not (math.isfinite(at_s) and at_s >= 0):
            raise FaultParamError("at_s", "must be a finite time >= 0")
        p = validate_fault_params(kind, params, fill_defaults=True)
        self._check_targets(kind, p)
        self.last_fault_end_s = max(self.last_fault_end_s, event_end_s(kind, at_s, p))
        self._n_events += 1
        salt = self._n_events

        if kind == "aggregator_crash":
            node = self.fedsim.aggregators[p["node"]]
            self.sim.schedule_at(at_s, lambda: self._crash(node))
            if "recover_after_s" in p:
                end = at_s + p["recover_after_s"]
                self.sim.schedule_at(end, lambda: self._recover(node))
        elif kind == "aggregator_flap":
            node = self.fedsim.aggregators[p["node"]]
            cycle = p["down_s"] + p["up_s"]
            for i in range(p["count"]):
                down_at = at_s + i * cycle
                self.sim.schedule_at(down_at, lambda: self._crash(node))
                self.sim.schedule_at(down_at + p["down_s"], lambda: self._recover(node))
        elif kind == "coordinator_outage":
            self.sim.schedule_at(at_s, self._coordinator_down)
            self.sim.schedule_at(at_s + p["duration_s"], self._coordinator_up)
        elif kind == "dropout_storm":
            t = at_s
            while t <= at_s + p["duration_s"]:
                self.sim.schedule_at(
                    t, lambda f=p["fraction"]: self._storm_tick(f)
                )
                t += p["interval_s"]
        elif kind in ("network_delay", "straggler_tier"):
            fraction = p.get("fraction", 1.0)
            self._delay_windows.append(
                (at_s, at_s + p["duration_s"], p["factor"], fraction, salt)
            )
            self._wrap_network()
        elif kind == "network_loss":
            self._loss_windows.append((at_s, at_s + p["duration_s"], p["rate"]))
            self._gate_uploads()
        elif kind == "blackout":
            self._gate_windows.append(
                ("blackout", at_s, at_s + p["duration_s"], p["fraction"])
            )
        elif kind == "availability_wave":
            self._gate_windows.append(
                ("wave", at_s, at_s + p["duration_s"], p["amplitude"], p["period_s"])
            )
        elif kind == "flash_crowd":
            t = at_s
            while t <= at_s + p["duration_s"]:
                self.sim.schedule_at(t, lambda b=p["burst"]: self._flash_tick(b))
                t += p["interval_s"]
        elif kind == "worker_kill":
            self.sim.schedule_at(
                at_s, lambda: self._kill_worker(p["task"], p["shard"])
            )

        if kind in ("network_delay", "straggler_tier", "network_loss",
                    "blackout", "availability_wave"):
            # Window faults act passively through their interception
            # hooks; note the window opening so the schedule is visible
            # in the event log (and in ``fired``) like every other kind.
            end = at_s + p["duration_s"]
            self.sim.schedule_at(at_s, lambda k=kind, e=end: self._note(k, until_s=e))

    def _check_targets(self, kind: str, p: Mapping[str, Any]) -> None:
        """Validate node/task/shard references against the live deployment."""
        if "node" in p and p["node"] >= len(self.fedsim.aggregators):
            raise FaultParamError(
                "node",
                f"no such aggregator (deployment has {len(self.fedsim.aggregators)})",
            )
        if "task" in p and p["task"] not in self.fedsim.task_runtimes:
            raise FaultParamError(
                "task",
                f"no such task; deployment has: "
                f"{', '.join(sorted(self.fedsim.task_runtimes))}",
            )

    # -- event actions ------------------------------------------------------------

    def _note(self, kind: str, **detail: Any) -> None:
        self.fired.append((self.sim.now, kind))
        self.log.emit(self.sim.now, "faults", f"fault_{kind}", **detail)

    def _crash(self, node) -> None:
        if node.alive:
            node.fail()
            self._note("aggregator_crash", node=node.node_id)

    def _recover(self, node) -> None:
        if not node.alive:
            node.recover()
            self._note("aggregator_recover", node=node.node_id)

    def _coordinator_down(self) -> None:
        self.fedsim.coordinator.fail()
        self._note("coordinator_outage")

    def _coordinator_up(self) -> None:
        self.fedsim.coordinator.recover()
        self._note("coordinator_recover")

    def _storm_tick(self, fraction: float) -> None:
        """Kill a seeded fraction of active sessions across every task."""
        killed = 0
        for name in sorted(self.fedsim.task_runtimes):
            rt = self.fedsim.task_runtimes[name]
            for device_id in sorted(rt.sessions):
                session = rt.sessions.get(device_id)
                if session is None or session.finished:
                    continue
                if float(self.rng.random()) < fraction:
                    rt.core.client_failed(device_id)
                    session.abort(Outcome.FAILED)
                    killed += 1
        self._note("dropout_storm", killed=killed)

    def _flash_tick(self, burst: int) -> None:
        """A crowd of extra devices checks in over the selection latency."""
        fedsim = self.fedsim
        for _ in range(burst):
            fedsim._outstanding_checkins += 1
            delay = fedsim.system.selection_latency_s * float(
                self.rng.uniform(0.5, 1.5)
            )
            self.sim.schedule(delay, fedsim._checkin)
        self._note("flash_crowd", burst=burst)

    def _kill_worker(self, task: str, shard: int) -> None:
        """Terminate one shard worker; the dispatch-log replay fallback
        fires at the core's next barrier (bit-identical recovery)."""
        core = self.fedsim.task_runtimes[task].core
        kill = getattr(core, "kill_worker", None)
        if kill is None:
            self._note("worker_kill_noop", task=task, shard=shard,
                       reason="no process executor")
            return
        killed = kill(shard)
        self._note("worker_kill", task=task, shard=shard, killed=killed)

    # -- interception ------------------------------------------------------------

    def _wrap_network(self) -> None:
        if not self._network_wrapped:
            self._network_wrapped = True
            self.fedsim.network = _FaultedNetworkModel(self.fedsim.network, self)

    def _gate_uploads(self) -> None:
        if not self._upload_gated:
            self._upload_gated = True
            for rt in self.fedsim.task_runtimes.values():
                rt.fault_gate = self

    def network_factor(self, device_id: int | None) -> float:
        """Multiplier on transfer times from the active delay windows."""
        now = self.sim.now
        factor = 1.0
        for start, end, f, fraction, salt in self._delay_windows:
            if start <= now < end:
                if fraction >= 1.0:
                    factor *= f
                elif device_id is not None and self._member(device_id, fraction, salt):
                    factor *= f
        return factor

    def _member(self, device_id: int, fraction: float, salt: int) -> bool:
        """Stable per-window device membership (same devices every time)."""
        return (stable_hash64("straggler", salt, device_id) % (1 << 32)) < (
            fraction * (1 << 32)
        )

    def intercept_upload(self, task_rt, session) -> bool:
        """Drop an arriving upload when inside an active loss window.

        Installed (as ``task_rt.fault_gate``) only when a ``network_loss``
        event was scheduled.  Mirrors the dead-node upload path: the core
        forgets the client, the session aborts.
        """
        now = self.sim.now
        for start, end, rate in self._loss_windows:
            if start <= now < end and float(self.rng.random()) < rate:
                self.uploads_lost += 1
                self.log.emit(
                    now, "faults", "upload_lost",
                    task=task_rt.config.name, device=session.device_id,
                )
                task_rt.core.client_failed(session.device_id)
                session.abort(Outcome.ABORTED)
                return True
        return False

    def allow_checkin(self, device_id: int) -> bool:
        """Check-in gate for blackout / availability-wave windows.

        Returns True (and draws nothing) outside every window, so an
        injector without gate events never perturbs the run.
        """
        now = self.sim.now
        for window in self._gate_windows:
            if window[0] == "blackout":
                _, start, end, fraction = window
                p = fraction if start <= now < end else 0.0
            else:
                _, start, end, amplitude, period = window
                if start <= now < end:
                    phase = 2.0 * math.pi * (now - start) / period
                    p = amplitude * 0.5 * (1.0 - math.cos(phase))
                else:
                    p = 0.0
            if p > 0.0 and float(self.rng.random()) < p:
                self.checkins_blocked += 1
                return False
        return True


# ---------------------------------------------------------------------------
# Recovery-invariant accounting
# ---------------------------------------------------------------------------

def recovery_report(fedsim: "FederatedSimulation", result: "RunResult") -> dict[str, Any]:
    """Audit a finished run against the recovery invariants.

    * **Device conservation** — the orchestrator's active-device set is
      exactly the union of the runtimes' live sessions, every live
      session is unfinished, and the outstanding check-in counter never
      went negative.
    * **Update conservation** (async tasks) — every admitted update
      (``aggregated + discarded`` outcomes) is either in a server step,
      explicitly lost to a node/shard failover (``task_reassigned`` /
      ``shard_failed`` events), or still buffered: nothing vanishes and
      nothing double-counts.
    """
    session_devices: set[int] = set()
    live_sessions_ok = True
    for rt in fedsim.task_runtimes.values():
        for device_id, session in rt.sessions.items():
            session_devices.add(device_id)
            if session.finished:
                live_sessions_ok = False
    device_conservation_ok = (
        set(fedsim._active_devices) == session_devices
        and live_sessions_ok
        and fedsim._outstanding_checkins >= 0
    )

    from repro.core.types import TrainingMode

    tasks: dict[str, dict[str, int]] = {}
    updates_ok = True
    for name, rt in fedsim.task_runtimes.items():
        if rt.config.mode is not TrainingMode.ASYNC:
            continue  # sync discards round stragglers without buffering them
        stats = result.task_stats[name]
        admitted = stats.aggregated + stats.discarded
        stepped = sum(
            s.num_updates for s in result.trace.server_steps if s.task == name
        )
        component = f"task:{name}"
        lost = sum(
            r.detail.get("lost_buffered", 0)
            for r in result.log
            if r.component == component
            and r.kind in ("task_reassigned", "shard_failed")
        )
        buffered = int(getattr(rt.core, "_count", 0))
        unaccounted = admitted - stepped - lost - buffered
        tasks[name] = {
            "admitted": admitted,
            "stepped": stepped,
            "lost_buffered": lost,
            "buffered_now": buffered,
            "unaccounted": unaccounted,
        }
        if unaccounted != 0:
            updates_ok = False

    return {
        "device_conservation_ok": device_conservation_ok,
        "updates_conservation_ok": updates_ok,
        "active_devices": len(fedsim._active_devices),
        "outstanding_checkins": fedsim._outstanding_checkins,
        "tasks": tasks,
    }
