"""Discrete-event simulation engine.

The substitute for the paper's live fleet: every latency in the system —
client training time, network transfers, selection, aggregation, heartbeat
intervals, failure-detection delays — is an event on one global virtual
clock, so experiments over "hours" of fleet time run in seconds and are
perfectly reproducible.

The engine is a classic priority-queue event loop with cancellable
handles (cancellation is how the system layer models aborting in-flight
clients when a synchronous round closes or staleness bounds trip).

:class:`DeferredQueue` is the engine's cohort-dispatch primitive: work
whose *result* is not needed at schedule time (client training compute,
whose simulated duration is already fixed by the device profile) is
parked in FIFO order and drained in batches when the first result is
demanded.  The system layer uses it to group concurrently-in-flight
client trainings into one vectorized call without moving any event or
timestamp.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generic, TypeVar

__all__ = ["EventHandle", "Simulator", "DeferredQueue"]

T = TypeVar("T")


class DeferredQueue(Generic[T]):
    """FIFO queue of deferred work items with batched, deterministic draining.

    Items are compared by identity; an item can be discarded (e.g. its
    session aborted) any time before it is drained.  ``drain`` returns a
    batch in submission order, which keeps cohort composition — and
    therefore everything downstream — independent of dictionary/hash
    order.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: list[T] = []

    def __len__(self) -> int:
        return len(self._items)

    def submit(self, item: T) -> T:
        """Park one work item; returns it for caller convenience."""
        self._items.append(item)
        return item

    def discard(self, item: T) -> bool:
        """Remove a parked item (no-op if already drained or discarded)."""
        for pos, queued in enumerate(self._items):
            if queued is item:
                del self._items[pos]
                return True
        return False

    def drain(self, required: T, limit: int | None = None) -> list[T]:
        """Take a FIFO batch of up to ``limit`` items including ``required``.

        ``required`` (the item whose result is being demanded right now)
        is always part of the batch even when it sits beyond the limit;
        the rest of the batch is the oldest parked work.
        """
        if limit is not None and limit < 1:
            raise ValueError("limit must be at least 1")
        batch: list[T] = []
        taken: list[int] = []
        for pos, item in enumerate(self._items):
            if limit is not None and len(batch) >= limit:
                break
            batch.append(item)
            taken.append(pos)
        if not any(item is required for item in batch):
            for pos, item in enumerate(self._items):
                if item is required:
                    batch[-1] = item
                    taken[-1] = pos
                    break
            else:
                raise ValueError("required item is not queued")
        for pos in reversed(taken):
            del self._items[pos]
        return batch


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "cancelled", "_sim")

    def __init__(self, time: float, sim: "Simulator | None" = None):
        self.time = time
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired).

        Decrements the owning simulator's live-event counter exactly
        once: repeat cancels are guarded by the ``cancelled`` flag, and
        the simulator detaches the handle (``_sim = None``) when the
        event fires.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1
            self._sim = None


class Simulator:
    """Single-clock discrete-event loop.

    Events scheduled for the same instant fire in scheduling order
    (stable FIFO tie-break), which makes runs deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._fired = 0
        self._live = 0  # scheduled, not yet fired or cancelled

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed (for instrumentation/tests)."""
        return self._fired

    @property
    def pending(self) -> int:
        """Events scheduled but not yet fired or cancelled.

        O(1): a live counter maintained by ``schedule``/``cancel``/the
        event-loop pops, instead of a scan over the heap (whose
        lazily-deleted cancelled entries made the scan O(n) per call).
        """
        return self._live

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule into the past ({time} < {self._now})")
        handle = EventHandle(time, self)
        heapq.heappush(self._queue, (time, next(self._seq), handle, action))
        self._live += 1
        return handle

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._queue:
            time, _, handle, action = heapq.heappop(self._queue)
            if handle.cancelled:
                continue  # cancel() already decremented the live counter
            handle._sim = None
            self._live -= 1
            self._now = time
            self._fired += 1
            action()
            return True
        return False

    def run_until(
        self,
        t_end: float,
        stop: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> float:
        """Run events up to ``t_end`` (inclusive).

        Parameters
        ----------
        t_end:
            Simulated-time horizon; events beyond it stay queued and the
            clock is advanced to exactly ``t_end``.
        stop:
            Optional predicate checked after every event; the run halts
            early when it returns True (e.g. "target loss reached").
        max_events:
            Safety valve for runaway simulations.

        Returns
        -------
        The simulated time when the run stopped.
        """
        fired = 0
        while self._queue:
            time, _, handle, action = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            if time > t_end:
                break
            heapq.heappop(self._queue)
            handle._sim = None
            self._live -= 1
            self._now = time
            self._fired += 1
            fired += 1
            action()
            if stop is not None and stop():
                return self._now
            if max_events is not None and fired >= max_events:
                return self._now
        self._now = max(self._now, t_end)
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Drain the queue entirely (bounded by ``max_events``)."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
        return self._now
