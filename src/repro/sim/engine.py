"""Discrete-event simulation engine.

The substitute for the paper's live fleet: every latency in the system —
client training time, network transfers, selection, aggregation, heartbeat
intervals, failure-detection delays — is an event on one global virtual
clock, so experiments over "hours" of fleet time run in seconds and are
perfectly reproducible.

The event queue is a bucketed *calendar queue* (Brown, CACM 1988): a
wheel of time buckets sized from the observed event-gap distribution, so
``schedule``/``pop`` stay O(1) amortized as the pending-event count
grows from thousands to millions.  A binary heap pays O(log n) per
operation and, worse, its cache behaviour degrades with n — per-event
cost visibly climbs between a 10k-client and a 1M-client fleet.  The
calendar queue keys on exactly the heap's old ``(time, seq)`` tuple, so
event order — including the FIFO tie-break for same-instant events — is
bit-identical to the previous implementation and every recorded trace is
unchanged.

The engine keeps cancellable handles (cancellation is how the system
layer models aborting in-flight clients when a synchronous round closes
or staleness bounds trip); cancelled entries are pruned lazily when
their bucket is drained, never paying an eager O(n) removal.

:class:`DeferredQueue` is the engine's cohort-dispatch primitive: work
whose *result* is not needed at schedule time (client training compute,
whose simulated duration is already fixed by the device profile) is
parked in FIFO order and drained in batches when the first result is
demanded.  The system layer uses it to group concurrently-in-flight
client trainings into one vectorized call without moving any event or
timestamp.
"""

from __future__ import annotations

import itertools
import math
from bisect import insort
from typing import Callable, Generic, TypeVar

__all__ = ["EventHandle", "Simulator", "DeferredQueue"]

T = TypeVar("T")


class DeferredQueue(Generic[T]):
    """FIFO queue of deferred work items with batched, deterministic draining.

    Items are compared by identity; an item can be discarded (e.g. its
    session aborted) any time before it is drained.  ``drain`` returns a
    batch in submission order, which keeps cohort composition — and
    therefore everything downstream — independent of dictionary/hash
    order.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: list[T] = []

    def __len__(self) -> int:
        return len(self._items)

    def submit(self, item: T) -> T:
        """Park one work item; returns it for caller convenience."""
        self._items.append(item)
        return item

    def discard(self, item: T) -> bool:
        """Remove a parked item (no-op if already drained or discarded)."""
        for pos, queued in enumerate(self._items):
            if queued is item:
                del self._items[pos]
                return True
        return False

    def drain(self, required: T, limit: int | None = None) -> list[T]:
        """Take a FIFO batch of up to ``limit`` items including ``required``.

        ``required`` (the item whose result is being demanded right now)
        is always part of the batch even when it sits beyond the limit;
        the rest of the batch is the oldest parked work.
        """
        if limit is not None and limit < 1:
            raise ValueError("limit must be at least 1")
        batch: list[T] = []
        taken: list[int] = []
        for pos, item in enumerate(self._items):
            if limit is not None and len(batch) >= limit:
                break
            batch.append(item)
            taken.append(pos)
        if not any(item is required for item in batch):
            for pos, item in enumerate(self._items):
                if item is required:
                    batch[-1] = item
                    taken[-1] = pos
                    break
            else:
                raise ValueError("required item is not queued")
        for pos in reversed(taken):
            del self._items[pos]
        return batch


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "cancelled", "_sim")

    def __init__(self, time: float, sim: "Simulator | None" = None):
        self.time = time
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired).

        Decrements the owning simulator's live-event counter exactly
        once: repeat cancels are guarded by the ``cancelled`` flag, and
        the simulator detaches the handle (``_sim = None``) when the
        event fires.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1
            self._sim = None


#: within a bucket, entries are kept sorted *descending* by (time, seq) so
#: the next event to fire is at the tail and ``list.pop()`` is O(1).  seq
#: is unique, so comparisons never reach the handle.
def _bucket_key(entry) -> tuple[float, int]:
    return (-entry[0], -entry[1])


class _CalendarQueue:
    """Calendar queue over ``(time, seq, handle, action)`` entries.

    A non-wrapping wheel of ``_n_buckets`` buckets of ``_width`` seconds
    starting at ``_start``; entries at or beyond the wheel's end go to an
    unsorted ``_overflow`` list.  When the wheel is exhausted (or grossly
    over-full) the queue rebuilds: it re-centres the wheel on the
    earliest live entry and re-sizes buckets from the observed event
    span, the classic Brown adaptation that keeps ~O(1) entries per
    bucket regardless of load.

    Total order is exactly ``(time, seq)`` ascending — identical to the
    binary heap this replaces — so simulation traces are byte-identical.
    Invariant: for live entries a < b, bucket(a) <= bucket(b); the
    floor-based index is monotone in time and both clamps (to the
    current scan bucket below, to overflow above) preserve monotonicity,
    while within-bucket order is exact.
    """

    __slots__ = ("_buckets", "_n_buckets", "_start", "_width", "_cur",
                 "_overflow", "_count")

    _MIN_BUCKETS = 64
    _MAX_BUCKETS = 1 << 16

    def __init__(self) -> None:
        self._init_wheel(start=0.0, width=1.0, n_buckets=self._MIN_BUCKETS)
        self._overflow: list = []
        self._count = 0  # entries physically stored (incl. not-yet-pruned cancels)

    def _init_wheel(self, start: float, width: float, n_buckets: int) -> None:
        self._buckets: list[list] = [[] for _ in range(n_buckets)]
        self._n_buckets = n_buckets
        self._start = start
        self._width = width
        self._cur = 0  # scan pointer: buckets before it are empty

    def push(self, entry) -> None:
        time = entry[0]
        if self._count == 0:
            # Empty queue: re-anchor the wheel at this event so bucket
            # indices stay small after long quiet stretches.
            self._start = time
            self._cur = 0
        idx = int((time - self._start) / self._width)
        if idx >= self._n_buckets:
            self._overflow.append(entry)
        else:
            # Clamp below to the scan pointer: guards float rounding at
            # bucket boundaries and events scheduled for instants the
            # scan already passed (always >= the last fired (time, seq),
            # so within-bucket exact ordering keeps them correct).
            if idx < self._cur:
                idx = self._cur
            insort(self._buckets[idx], entry, key=_bucket_key)
        self._count += 1
        if (self._count > 8 * self._n_buckets
                and self._n_buckets < self._MAX_BUCKETS):
            self._rebuild()

    def peek(self):
        """Next live entry (without removing it), or None when empty."""
        while True:
            while self._cur < self._n_buckets:
                bucket = self._buckets[self._cur]
                while bucket and bucket[-1][2].cancelled:
                    bucket.pop()  # lazy prune
                    self._count -= 1
                if bucket:
                    return bucket[-1]
                self._cur += 1
            # Wheel exhausted — everything live (if anything) is in
            # overflow; re-centre the wheel on it and keep scanning.
            if not self._rebuild():
                return None

    def pop(self):
        """Remove and return the next live entry, or None when empty."""
        entry = self.peek()
        if entry is not None:
            self._buckets[self._cur].pop()
            self._count -= 1
        return entry

    def _rebuild(self) -> bool:
        """Re-centre and re-size the wheel around the live entries.

        Returns False when no live entries remain.
        """
        live = [e for b in self._buckets[self._cur:] for e in b
                if not e[2].cancelled]
        live.extend(e for e in self._overflow if not e[2].cancelled)
        self._overflow = []
        self._count = len(live)
        if not live:
            self._init_wheel(start=self._start, width=self._width,
                             n_buckets=self._n_buckets)
            return False
        times = sorted(e[0] for e in live)
        n_buckets = self._MIN_BUCKETS
        while n_buckets < len(live) and n_buckets < self._MAX_BUCKETS:
            n_buckets *= 2
        span = times[-1] - times[0]
        if span <= 0.0:
            width = 1.0
        else:
            # Slightly over-wide so the latest entry lands inside the
            # wheel rather than bouncing straight back to overflow.
            width = max(span * 1.5 / n_buckets, 1e-9)
        self._init_wheel(start=times[0], width=width, n_buckets=n_buckets)
        for entry in live:
            idx = int((entry[0] - self._start) / self._width)
            if idx >= self._n_buckets:
                self._overflow.append(entry)
            else:
                insort(self._buckets[idx], entry, key=_bucket_key)
        return True


class Simulator:
    """Single-clock discrete-event loop.

    Events scheduled for the same instant fire in scheduling order
    (stable FIFO tie-break), which makes runs deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue = _CalendarQueue()
        self._seq = itertools.count()
        self._fired = 0
        self._live = 0  # scheduled, not yet fired or cancelled

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events executed (for instrumentation/tests)."""
        return self._fired

    @property
    def pending(self) -> int:
        """Events scheduled but not yet fired or cancelled.

        O(1): a live counter maintained by ``schedule``/``cancel``/the
        event-loop pops, instead of a scan over the heap (whose
        lazily-deleted cancelled entries made the scan O(n) per call).
        """
        return self._live

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule into the past ({time} < {self._now})")
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite (got {time})")
        handle = EventHandle(time, self)
        self._queue.push((time, next(self._seq), handle, action))
        self._live += 1
        return handle

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        entry = self._queue.pop()
        if entry is None:
            return False
        time, _, handle, action = entry
        handle._sim = None
        self._live -= 1
        self._now = time
        self._fired += 1
        action()
        return True

    def run_until(
        self,
        t_end: float,
        stop: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> float:
        """Run events up to ``t_end`` (inclusive).

        Parameters
        ----------
        t_end:
            Simulated-time horizon; events beyond it stay queued and the
            clock is advanced to exactly ``t_end``.
        stop:
            Optional predicate checked after every event; the run halts
            early when it returns True (e.g. "target loss reached").
        max_events:
            Safety valve for runaway simulations.

        Returns
        -------
        The simulated time when the run stopped.
        """
        fired = 0
        while True:
            head = self._queue.peek()
            if head is None or head[0] > t_end:
                break
            time, _, handle, action = self._queue.pop()
            handle._sim = None
            self._live -= 1
            self._now = time
            self._fired += 1
            fired += 1
            action()
            if stop is not None and stop():
                return self._now
            if max_events is not None and fired >= max_events:
                return self._now
        self._now = max(self._now, t_end)
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Drain the queue entirely (bounded by ``max_events``)."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
        return self._now
