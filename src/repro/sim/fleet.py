"""Million-client fleet dynamics: batched arrivals over the columnar population.

The paper's scale claim is a fleet of millions of phones checking in
against a server; what makes that simulable is keeping the per-*client*
cost out of the event loop.  This driver batches everything that scales
with the population into one vectorized pass per fixed-width tick —
which devices wake, their eligibility rolls, their session durations and
dropout points — and leaves only O(active sessions) scalar events for
the calendar queue, so cost per fired event stays flat from 10k to 1M
devices.

The pieces it composes:

* :class:`~repro.sim.population.ColumnarDevicePopulation` — the fleet's
  struct-of-arrays state (speed, data, payload, next-wake, availability);
* :class:`~repro.sim.engine.Simulator` — the calendar-queue event loop;
  one completion event per admitted session is the load that queue
  absorbs;
* :class:`~repro.sim.trace.BoundedMetricsTrace` — sampled participation
  records plus exact tallies, so a 1M-client run never holds its full
  trace in RAM.

Devices sleep exponentially-distributed intervals between check-ins;
wakes are bucketed by tick index so each tick pops exactly its arrivals
(no scan over the fleet).  A small ``deep_trace_fraction`` of admitted
sessions additionally materializes its :class:`DeviceProfile` via
``checkout``/``release``, exercising the lazy object path the system
layer uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.population import ColumnarDevicePopulation
from repro.sim.trace import (
    BoundedMetricsTrace,
    MetricsTrace,
    Outcome,
    ParticipationRecord,
)
from repro.utils.backoff import BackoffPolicy
from repro.utils.rng import child_rng

__all__ = ["FleetConfig", "FleetSimulation"]


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the batched fleet driver.

    Attributes
    ----------
    tick_s:
        Arrival-batching granularity; all devices waking within one tick
        are sampled in a single vectorized pass.
    demand:
        Server-side concurrent-session capacity (the paper's
        ``max_concurrency``); eligible arrivals beyond it are turned
        away to retry after a backoff.
    mean_sleep_s:
        Mean of the exponential sleep between a device's check-ins.
    backoff_s:
        Base retry delay for ineligible or turned-away devices (jittered
        ±50 % to avoid synchronized retry storms).
    backoff_policy:
        Backoff shape/jitter as a :class:`~repro.utils.backoff.BackoffPolicy`
        string, with ``backoff_s`` as its base delay.  The default
        (``"fixed,jitter=0.5"``) reproduces the historical jittered
        delays bit-identically.
    epochs:
        Local training epochs per session (scales execution time).
    deep_trace_fraction:
        Fraction of admitted sessions that materialize a full
        :class:`DeviceProfile` via ``checkout`` for the session's
        lifetime.
    """

    tick_s: float = 60.0
    demand: int = 128
    mean_sleep_s: float = 4 * 3600.0
    backoff_s: float = 900.0
    backoff_policy: str = "fixed,jitter=0.5"
    epochs: int = 1
    deep_trace_fraction: float = 0.001

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.demand < 0:
            raise ValueError("demand must be non-negative")
        if self.mean_sleep_s <= 0 or self.backoff_s <= 0:
            raise ValueError("sleep/backoff times must be positive")
        try:
            BackoffPolicy.parse(self.backoff_policy, default_base=self.backoff_s)
        except ValueError as exc:
            raise ValueError(f"backoff_policy: {exc}") from None
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if not (0.0 <= self.deep_trace_fraction <= 1.0):
            raise ValueError("deep_trace_fraction must be in [0, 1]")


class FleetSimulation:
    """Tick-batched check-in/train/report loop over a columnar fleet."""

    TASK = "fleet"

    def __init__(
        self,
        population: ColumnarDevicePopulation,
        config: FleetConfig | None = None,
        trace: MetricsTrace | None = None,
        seed: int = 0,
        sim: Simulator | None = None,
        observer=None,
    ) -> None:
        self.population = population
        self.config = config or FleetConfig()
        #: optional repro.obs.telemetry.RunTelemetry; None (the default)
        #: keeps the hot loops free of any observation cost.
        self.observer = observer
        self.trace = trace if trace is not None else BoundedMetricsTrace(seed=seed)
        self.sim = sim or Simulator()
        self.rng = child_rng(seed, "fleet")
        self._backoff_policy = BackoffPolicy.parse(
            self.config.backoff_policy, default_base=self.config.backoff_s
        )
        #: tick index -> device ids waking in that tick
        self._buckets: dict[int, list[int]] = {}
        #: index of the next tick that has not fired yet.  Re-bookings
        #: are clamped to it: booking into an already-popped bucket
        #: would silently lose the device forever (it leaks out of the
        #: wake calendar), and at 1M devices thousands of backoff wakes
        #: per day land inside the tick being processed.
        self._next_tick = 0
        #: whether a tick event is currently sitting in the queue (a
        #: re-entrant run() must not start a second tick chain).
        self._tick_pending = False
        self._checked_out: set[int] = set()
        self._horizon = 0.0
        self.in_flight = 0
        self.sessions_started = 0
        self.sessions_completed = 0
        self.turned_away = 0
        self.ineligible = 0
        self._seed_initial_wakes()

    # -- wake bookkeeping -------------------------------------------------------

    def _seed_initial_wakes(self) -> None:
        """Draw every device's first check-in in one vectorized pass."""
        n = self.population.config.n_devices
        wakes = self.rng.exponential(self.config.mean_sleep_s, n)
        self.population.next_wake_s[:] = wakes
        self._bucket_bulk(np.arange(n, dtype=np.int64), wakes)

    def _bucket_bulk(self, ids: np.ndarray, wakes: np.ndarray) -> None:
        """Group ``ids`` by wake tick and append each group to its bucket."""
        if len(ids) == 0:
            return
        ticks = (wakes / self.config.tick_s).astype(np.int64)
        np.maximum(ticks, self._next_tick, out=ticks)
        order = np.argsort(ticks, kind="stable")
        ticks, ids = ticks[order], ids[order]
        starts = np.flatnonzero(np.r_[True, ticks[1:] != ticks[:-1]])
        for s, e in zip(starts, np.r_[starts[1:], len(ticks)]):
            self._buckets.setdefault(int(ticks[s]), []).extend(
                ids[s:e].tolist()
            )

    def _bucket_one(self, device_id: int, wake: float) -> None:
        self.population.next_wake_s[device_id] = wake
        tick = max(int(wake / self.config.tick_s), self._next_tick)
        self._buckets.setdefault(tick, []).append(device_id)

    # -- event handlers ---------------------------------------------------------

    def _on_tick(self) -> None:
        cfg = self.config
        pop = self.population
        now = self.sim.now
        # Explicit tick indexing: float-derived indices (round(now /
        # tick_s)) skip buckets when a resumed chain fires off a tick
        # boundary (banker's rounding maps both 2.5 and 3.5 ticks to an
        # even index).  _next_tick advances before any arrival is
        # processed so re-bookings clamp past this (already-popped)
        # bucket.
        tick = self._next_tick
        self._next_tick = tick + 1
        self._tick_pending = False
        boundary = (tick + 1) * cfg.tick_s
        if boundary <= self._horizon:
            # A chain resumed after an out-of-horizon drain may be
            # catching up on stale buckets; never schedule in the past.
            self.sim.schedule_at(max(boundary, now), self._on_tick)
            self._tick_pending = True
        arrivals = self._buckets.pop(tick, None)
        if arrivals:
            ids = np.asarray(arrivals, dtype=np.int64)
            eligible_mask = pop.eligibility_mask(ids, now, self.rng)
            eligible = ids[eligible_mask]
            ineligible = ids[~eligible_mask]
            self.ineligible += len(ineligible)
            capacity = max(cfg.demand - self.in_flight, 0)
            admitted, rejected = eligible[:capacity], eligible[capacity:]
            self.turned_away += len(rejected)
            if self.observer is not None:
                self.observer.on_fleet_tick(
                    len(admitted), len(rejected), len(ineligible)
                )
            self._backoff(np.concatenate([ineligible, rejected]), now)
            if len(admitted):
                self._start_sessions(admitted, now)

    def _backoff(self, ids: np.ndarray, now: float) -> None:
        """Re-book ids after a policy-shaped backoff (vectorized).

        The default policy's block draw reproduces the historical
        ``backoff_s * (0.5 + random(n))`` wakes bit-identically.
        """
        if len(ids) == 0:
            return
        wakes = now + self._backoff_policy.delay_block(len(ids), self.rng)
        self.population.next_wake_s[ids] = wakes
        self._bucket_bulk(ids, wakes)

    def _start_sessions(self, ids: np.ndarray, now: float) -> None:
        """Vectorized session setup; one completion event per session."""
        cfg = self.config
        pop = self.population
        exec_times = pop.execution_times(ids, cfg.epochs)
        transfer = pop.transfer_times(ids)
        drop_frac = pop.dropout_fractions(ids, self.rng)
        failed = ~np.isnan(drop_frac)
        durations = transfer + np.where(failed, drop_frac * exec_times, exec_times)
        deep = self.rng.random(len(ids)) < cfg.deep_trace_fraction
        pop.available[ids] = False
        self.in_flight += len(ids)
        self.sessions_started += len(ids)
        n_examples = pop.n_examples[ids]
        for i in range(len(ids)):
            device_id = int(ids[i])
            if deep[i]:
                pop.checkout(device_id)
                self._checked_out.add(device_id)
            self.trace.record_active_delta(now, +1)
            self.sim.schedule(
                float(durations[i]),
                self._make_completion(
                    device_id, now, int(n_examples[i]),
                    float(exec_times[i]), bool(failed[i]),
                ),
            )

    def _make_completion(self, device_id, start, n_examples, exec_time, failed):
        def _complete() -> None:
            self._end_session(device_id, start, n_examples, exec_time, failed)

        return _complete

    def _end_session(
        self, device_id: int, start: float, n_examples: int,
        exec_time: float, failed: bool,
    ) -> None:
        now = self.sim.now
        pop = self.population
        self.in_flight -= 1
        self.sessions_completed += 1
        pop.available[device_id] = True
        payload = int(pop.payload_bytes[device_id])
        self.trace.record_download(payload)
        if not failed:
            self.trace.record_upload(payload)
        self.trace.record_participation(
            ParticipationRecord(
                device_id=device_id,
                task=self.TASK,
                start_time=start,
                end_time=now,
                n_examples=n_examples,
                execution_time=exec_time,
                outcome=Outcome.FAILED if failed else Outcome.AGGREGATED,
            )
        )
        self.trace.record_active_delta(now, -1)
        deep = device_id in self._checked_out
        if self.observer is not None:
            self.observer.on_fleet_session_end(device_id, start, now, failed, deep)
        if deep:
            self._checked_out.discard(device_id)
            pop.release(device_id)
        self._bucket_one(
            device_id, now + float(self.rng.exponential(self.config.mean_sleep_s))
        )

    # -- driving ----------------------------------------------------------------

    def run(self, horizon_s: float, max_events: int | None = None) -> float:
        """Run fleet dynamics to ``horizon_s``; returns the final sim time.

        Re-entrant: calling again with a later horizon resumes where the
        previous run stopped (pending sessions and wake buckets are
        preserved), and the tick chain restarts on the next unfired
        tick's boundary — never on a fractional-tick timestamp, and
        never as a second concurrent chain when a previous run (stopped
        early by ``max_events``) left its tick event queued.
        """
        if horizon_s < self.sim.now:
            raise ValueError("horizon is in the past")
        self._horizon = horizon_s
        if not self._tick_pending:
            boundary = self._next_tick * self.config.tick_s
            if boundary <= horizon_s:
                self.sim.schedule_at(max(boundary, self.sim.now), self._on_tick)
                self._tick_pending = True
        return self.sim.run_until(horizon_s, max_events=max_events)
