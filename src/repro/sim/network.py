"""Network latency model for the client participation protocol.

Models the four stages of Section 6.1: model download from a CDN, status
report, and chunked upload of the (possibly masked) update — each a
bandwidth-proportional delay plus a fixed round-trip, per device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.population import DeviceProfile

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Transfer-time model.

    Attributes
    ----------
    rtt_s:
        Fixed round-trip latency per request.
    chunk_bytes:
        Upload chunk size (Section 6.1 stage 4: "the client uploads the
        model in chunks"); each chunk pays one RTT.
    cdn_speedup:
        Downloads come from a CDN, typically faster than the upload path.
    """

    rtt_s: float = 0.15
    chunk_bytes: int = 4 * 1024 * 1024
    cdn_speedup: float = 2.0

    def __post_init__(self) -> None:
        if self.rtt_s < 0 or self.chunk_bytes <= 0 or self.cdn_speedup <= 0:
            raise ValueError("invalid network parameters")

    def download_time(self, profile: DeviceProfile, nbytes: int) -> float:
        """Seconds to fetch model parameters + code from the CDN."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.rtt_s + nbytes / (profile.download_bandwidth * self.cdn_speedup)

    def upload_time(self, profile: DeviceProfile, nbytes: int) -> float:
        """Seconds to report status and push the update in chunks."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        n_chunks = max(1, -(-nbytes // self.chunk_bytes))  # ceil
        return n_chunks * self.rtt_s + nbytes / profile.upload_bandwidth

    def roundtrip(self) -> float:
        """One control-plane round trip (check-in, report, heartbeat)."""
        return self.rtt_s
