"""Heterogeneous device population — the substitute for ~100 M phones.

Section 2 of the paper reports the heterogeneity this module reproduces:

* compute capability of mobile devices differs by an order of magnitude
  (Wu et al., 2019) and per-client training time spans **more than two
  orders of magnitude** (Figure 2) — we model per-example training cost
  as log-normal;
* example counts vary widely across users (Caldas et al., 2018) — also
  log-normal, heavy tailed;
* crucially for the fairness result (Figure 11), **slow devices tend to
  hold more data** ("We observe very high correlation between slow
  devices and devices with many training samples", Section 1).  The two
  log-normals share a latent factor with configurable correlation, and
  execution time additionally scales with the number of local examples —
  both mechanisms the paper describes;
* ~10 % of clients drop out mid-participation (Figure 1 caption: "We see
  up to 10 % of clients drop").

Profiles are derived deterministically from ``(seed, device_id)``, so a
population of millions costs nothing until a device is actually touched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import child_rng

__all__ = [
    "PopulationConfig",
    "DeviceProfile",
    "DevicePopulation",
    "ColumnarDevicePopulation",
]


@dataclass(frozen=True)
class PopulationConfig:
    """Distributional parameters of the simulated fleet.

    Attributes
    ----------
    n_devices:
        Population size (ids are ``0..n_devices-1``).
    mean_examples:
        Median of the per-client example-count log-normal.
    sigma_examples:
        Log-space spread of example counts.
    median_sec_per_example:
        Median per-example local training cost in seconds.
    sigma_speed:
        Log-space spread of per-example cost.  Together with
        ``sigma_examples`` and the correlation, the default gives a total
        log-spread of ≈1.13, which reproduces the paper's ~21× mean-round-
        duration-to-mean-client-time ratio at cohort size 1000 and a >2
        order-of-magnitude execution-time spread (Figure 2).
    speed_data_correlation:
        Correlation between the latent speed and data-volume factors
        (positive = slow devices hold more data).
    overhead_s:
        Fixed per-participation cost (model load, setup) in seconds.
    dropout_rate:
        Probability a participating client drops mid-training.
    eligibility_rate:
        Probability a checked-in device is currently eligible (idle,
        charging, unmetered network — Section 7.1's requirements).
    diurnal_amplitude:
        Day/night modulation of eligibility in [0, 1): the effective rate
        swings by ±amplitude over a 24-hour cycle (devices are mostly
        idle-and-charging at night).  This is why the paper repeats each
        experiment "at the same time of the day"; 0 disables it.
    max_examples:
        Hard cap on per-client examples (keeps real-training runs sane).
    """

    n_devices: int = 100_000
    mean_examples: float = 30.0
    sigma_examples: float = 0.65
    median_sec_per_example: float = 0.25
    sigma_speed: float = 0.75
    speed_data_correlation: float = 0.5
    overhead_s: float = 1.0
    dropout_rate: float = 0.1
    eligibility_rate: float = 0.8
    diurnal_amplitude: float = 0.0
    max_examples: int = 1000

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError("n_devices must be at least 1")
        if not (-1.0 <= self.speed_data_correlation <= 1.0):
            raise ValueError("speed_data_correlation must be in [-1, 1]")
        if not (0.0 <= self.dropout_rate <= 1.0):
            raise ValueError("dropout_rate must be in [0, 1]")
        if not (0.0 < self.eligibility_rate <= 1.0):
            raise ValueError("eligibility_rate must be in (0, 1]")
        if not (0.0 <= self.diurnal_amplitude < 1.0):
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        for f in ("mean_examples", "median_sec_per_example", "overhead_s"):
            if getattr(self, f) <= 0:
                raise ValueError(f"{f} must be positive")


@dataclass(frozen=True)
class DeviceProfile:
    """One device's static characteristics.

    ``sec_per_example`` captures compute capability; ``n_examples`` the
    local data volume; ``download_bandwidth``/``upload_bandwidth`` the
    network (bytes/s).
    """

    device_id: int
    sec_per_example: float
    n_examples: int
    download_bandwidth: float
    upload_bandwidth: float

    def execution_time(self, overhead_s: float, epochs: int = 1) -> float:
        """Local training time: overhead + examples × per-example cost.

        Both heterogeneity sources compound here — a slow device with a
        lot of data is the straggler archetype of Figure 11.
        """
        return overhead_s + epochs * self.n_examples * self.sec_per_example


class DevicePopulation:
    """Deterministic, lazily-sampled fleet of devices."""

    def __init__(self, config: PopulationConfig | None = None, seed: int = 0):
        self.config = config or PopulationConfig()
        self.seed = seed
        self._cache: dict[int, DeviceProfile] = {}

    def profile(self, device_id: int) -> DeviceProfile:
        """The device's profile (stable across calls and runs)."""
        cfg = self.config
        if not (0 <= device_id < cfg.n_devices):
            raise ValueError(f"device_id {device_id} outside population")
        cached = self._cache.get(device_id)
        if cached is not None:
            return cached
        rng = child_rng(self.seed, "device-profile", device_id)
        # Shared latent factor induces the slow-device/big-data correlation.
        z, e_speed, e_data = rng.standard_normal(3)
        rho = cfg.speed_data_correlation
        speed_factor = rho * z + np.sqrt(1.0 - rho * rho) * e_speed
        data_factor = z if rho != 0 else e_data

        sec_per_example = float(
            cfg.median_sec_per_example * np.exp(cfg.sigma_speed * speed_factor)
        )
        n_examples = int(
            np.clip(
                np.round(cfg.mean_examples * np.exp(cfg.sigma_examples * data_factor)),
                1,
                cfg.max_examples,
            )
        )
        # Mobile network bandwidths, log-normal around ~2 MB/s down, 1 MB/s up.
        bw = rng.lognormal(mean=0.0, sigma=0.5)
        prof = DeviceProfile(
            device_id=device_id,
            sec_per_example=sec_per_example,
            n_examples=n_examples,
            download_bandwidth=2e6 * float(bw),
            upload_bandwidth=1e6 * float(bw),
        )
        self._cache[device_id] = prof
        return prof

    # -- session-scoped materialization ----------------------------------------
    #
    # The orchestrator acquires a profile with ``checkout`` when a session
    # starts and calls ``release`` when it ends.  For this object-per-device
    # population both are trivial (profiles are cached forever), so the
    # default path is unchanged; :class:`ColumnarDevicePopulation` overrides
    # them to keep Python objects alive only while a session is active.

    def checkout(self, device_id: int) -> DeviceProfile:
        """Materialize a profile for the duration of an active session."""
        return self.profile(device_id)

    def release(self, device_id: int) -> None:
        """Session over — drop any session-scoped materialization (no-op)."""

    @property
    def active_profiles(self) -> int:
        """Profiles currently pinned by active sessions (all cached here)."""
        return len(self._cache)

    # -- stochastic per-participation behaviour --------------------------------

    def eligibility_rate_at(self, time_s: float) -> float:
        """Effective eligibility rate at a simulated time of day.

        The fleet's availability peaks at night (hour 3) when phones sit
        idle on chargers; with zero amplitude the rate is constant.
        """
        cfg = self.config
        if cfg.diurnal_amplitude == 0.0:
            return cfg.eligibility_rate
        day = 24 * 3600.0
        phase = 2.0 * np.pi * ((time_s % day) / day - 3.0 / 24.0)
        rate = cfg.eligibility_rate * (1.0 + cfg.diurnal_amplitude * np.cos(phase))
        return float(np.clip(rate, 0.0, 1.0))

    def is_eligible(
        self, device_id: int, checkin_count: int, time_s: float = 0.0
    ) -> bool:
        """Whether the device passes eligibility at this check-in.

        Eligibility (idle + charging + unmetered) fluctuates; it is
        re-rolled per check-in attempt, deterministically, against the
        (possibly diurnal) rate at ``time_s``.
        """
        rng = child_rng(self.seed, "eligibility", device_id, checkin_count)
        return bool(rng.random() < self.eligibility_rate_at(time_s))

    def dropout_point(self, device_id: int, participation: int) -> float | None:
        """If this participation drops out, the fraction of training done.

        Returns ``None`` for participations that run to completion, else
        a fraction in (0, 1) of the execution time at which the client
        silently dies (battery, app eviction, network loss).
        """
        rng = child_rng(self.seed, "dropout", device_id, participation)
        if rng.random() >= self.config.dropout_rate:
            return None
        return float(rng.uniform(0.05, 0.95))

    # -- population statistics ----------------------------------------------------

    def sample_profiles(self, n: int, rng: np.random.Generator) -> list[DeviceProfile]:
        """Profiles of ``n`` devices sampled uniformly without replacement."""
        ids = rng.choice(self.config.n_devices, size=min(n, self.config.n_devices),
                         replace=False)
        return [self.profile(int(i)) for i in ids]

    def execution_time_stats(self, sample_size: int = 2000) -> dict[str, float]:
        """Summary statistics of the execution-time distribution (Fig. 2)."""
        rng = child_rng(self.seed, "exec-stats")
        profs = self.sample_profiles(sample_size, rng)
        times = np.array([p.execution_time(self.config.overhead_s) for p in profs])
        return {
            "mean": float(times.mean()),
            "median": float(np.median(times)),
            "p95": float(np.percentile(times, 95)),
            "p99": float(np.percentile(times, 99)),
            "max": float(times.max()),
            # Bulk spread (p0.5–p99.5), robust to lone extremes — the
            # visible range of the paper's Figure 2 histogram.
            "spread_orders_of_magnitude": float(
                np.log10(
                    np.percentile(times, 99.5) / max(np.percentile(times, 0.5), 1e-9)
                )
            ),
        }


class ColumnarDevicePopulation(DevicePopulation):
    """Struct-of-arrays fleet: one numpy column per attribute, no objects.

    The object-per-device :class:`DevicePopulation` tops out around 10^5
    clients — each profile is a Python object plus a per-device SHA-256
    seed derivation, and a million of them is ~1 GB of interpreter heap.
    Here the whole fleet lives in eight numpy columns (~50 bytes/device,
    so a 1M fleet is ~50 MB) generated vectorized in fixed-size chunks,
    and :class:`DeviceProfile` objects exist only while a client is in an
    active session (``checkout``/``release``).

    Columns use the same distributional formulas as the scalar path (the
    shared latent factor, log-normal speed/data/bandwidth, Section 2's
    correlation) but draw them chunk-vectorized from
    ``child_rng(seed, "columnar-fleet", chunk)`` — a deliberate, separate
    deterministic realization.  Matching the scalar path bit-for-bit
    would require one SHA-256 seed derivation per device, which is
    exactly the per-device cost this class removes; the default
    (object) path is therefore byte-identical to before, and the
    columnar path is its own reproducible fleet.

    Extra fleet-dynamics columns beyond the scalar profile fields:

    * ``speed_tier`` — population speed quartile (0 fastest … 3
      slowest), the paper's Figure 2 banding, cheap to group by;
    * ``payload_bytes`` — per-device serialized-update size (log-normal
      around ``payload_base_bytes``);
    * ``next_wake_s`` — mutable: when each device next checks in;
    * ``available`` — mutable: whether the device is currently idle,
      charging and unmetered.
    """

    #: devices generated per vectorized RNG draw
    CHUNK = 262_144

    def __init__(
        self,
        config: PopulationConfig | None = None,
        seed: int = 0,
        payload_base_bytes: int = 2_000_000,
        payload_sigma: float = 0.25,
    ):
        super().__init__(config, seed)
        if payload_base_bytes < 1:
            raise ValueError("payload_base_bytes must be positive")
        if payload_sigma < 0:
            raise ValueError("payload_sigma must be non-negative")
        self.payload_base_bytes = payload_base_bytes
        self.payload_sigma = payload_sigma
        self._active: dict[int, DeviceProfile] = {}
        self._build_columns()

    def _build_columns(self) -> None:
        cfg = self.config
        n = cfg.n_devices
        rho = cfg.speed_data_correlation
        sec = np.empty(n, dtype=np.float64)
        n_ex = np.empty(n, dtype=np.int32)
        bw = np.empty(n, dtype=np.float64)
        payload = np.empty(n, dtype=np.int64)
        for chunk in range(0, n, self.CHUNK):
            stop = min(chunk + self.CHUNK, n)
            m = stop - chunk
            rng = child_rng(self.seed, "columnar-fleet", chunk // self.CHUNK)
            z, e_speed, e_data, e_pay = rng.standard_normal((4, m))
            speed_factor = rho * z + np.sqrt(1.0 - rho * rho) * e_speed
            data_factor = z if rho != 0 else e_data
            sec[chunk:stop] = cfg.median_sec_per_example * np.exp(
                cfg.sigma_speed * speed_factor
            )
            n_ex[chunk:stop] = np.clip(
                np.round(cfg.mean_examples * np.exp(cfg.sigma_examples * data_factor)),
                1,
                cfg.max_examples,
            ).astype(np.int32)
            bw[chunk:stop] = rng.lognormal(mean=0.0, sigma=0.5, size=m)
            payload[chunk:stop] = np.maximum(
                np.round(
                    self.payload_base_bytes * np.exp(self.payload_sigma * e_pay)
                ),
                1,
            ).astype(np.int64)
        self.sec_per_example = sec
        self.n_examples = n_ex
        self.download_bandwidth = 2e6 * bw
        self.upload_bandwidth = 1e6 * bw
        self.payload_bytes = payload
        # Quartile banding over the realized speed distribution.
        edges = np.quantile(sec, [0.25, 0.5, 0.75])
        self.speed_tier = np.searchsorted(edges, sec).astype(np.uint8)
        # Fleet-dynamics state, owned by the driver (FleetSimulation).
        self.next_wake_s = np.zeros(n, dtype=np.float64)
        self.available = np.ones(n, dtype=bool)

    def columns_nbytes(self) -> int:
        """Total bytes held by the fleet columns (the SoA footprint)."""
        return sum(
            arr.nbytes
            for arr in (
                self.sec_per_example, self.n_examples, self.download_bandwidth,
                self.upload_bandwidth, self.payload_bytes, self.speed_tier,
                self.next_wake_s, self.available,
            )
        )

    # -- lazy per-session materialization --------------------------------------

    def profile(self, device_id: int) -> DeviceProfile:
        """A transient :class:`DeviceProfile` view of one device's columns.

        Unlike the scalar population this does **not** cache: the object
        is garbage once the caller drops it.  Use ``checkout``/``release``
        to pin a profile for the lifetime of an active session.
        """
        if not (0 <= device_id < self.config.n_devices):
            raise ValueError(f"device_id {device_id} outside population")
        pinned = self._active.get(device_id)
        if pinned is not None:
            return pinned
        return DeviceProfile(
            device_id=device_id,
            sec_per_example=float(self.sec_per_example[device_id]),
            n_examples=int(self.n_examples[device_id]),
            download_bandwidth=float(self.download_bandwidth[device_id]),
            upload_bandwidth=float(self.upload_bandwidth[device_id]),
        )

    def checkout(self, device_id: int) -> DeviceProfile:
        """Materialize and pin a profile while its session is active."""
        pinned = self._active.get(device_id)
        if pinned is None:
            pinned = self.profile(device_id)
            self._active[device_id] = pinned
        return pinned

    def release(self, device_id: int) -> None:
        """Drop the pinned profile once the session ends."""
        self._active.pop(device_id, None)

    @property
    def active_profiles(self) -> int:
        """Profiles currently pinned by active sessions."""
        return len(self._active)

    # -- batched fleet sampling -------------------------------------------------
    #
    # These take a device-id array plus an *engine-owned* generator and
    # roll the whole batch in one vectorized draw.  The realization
    # differs from the scalar per-device ``is_eligible``/``dropout_point``
    # streams (which remain available and deterministic per device); the
    # batched driver owns one RNG for the whole fleet instead.

    def execution_times(self, ids: np.ndarray, epochs: int = 1) -> np.ndarray:
        """Vectorized ``DeviceProfile.execution_time`` over ``ids``."""
        return (
            self.config.overhead_s
            + epochs * self.n_examples[ids] * self.sec_per_example[ids]
        )

    def transfer_times(self, ids: np.ndarray) -> np.ndarray:
        """Payload download + upload seconds for each device in ``ids``."""
        payload = self.payload_bytes[ids]
        return (
            payload / self.download_bandwidth[ids]
            + payload / self.upload_bandwidth[ids]
        )

    def eligibility_mask(
        self, ids: np.ndarray, time_s: float, rng: np.random.Generator
    ) -> np.ndarray:
        """One eligibility roll per device at the (diurnal) rate for ``time_s``."""
        return rng.random(len(ids)) < self.eligibility_rate_at(time_s)

    def dropout_fractions(
        self, ids: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-device dropout point in (0, 1), or NaN for completed runs."""
        u = rng.random(len(ids))
        frac = rng.uniform(0.05, 0.95, len(ids))
        return np.where(u < self.config.dropout_rate, frac, np.nan)
