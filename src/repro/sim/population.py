"""Heterogeneous device population — the substitute for ~100 M phones.

Section 2 of the paper reports the heterogeneity this module reproduces:

* compute capability of mobile devices differs by an order of magnitude
  (Wu et al., 2019) and per-client training time spans **more than two
  orders of magnitude** (Figure 2) — we model per-example training cost
  as log-normal;
* example counts vary widely across users (Caldas et al., 2018) — also
  log-normal, heavy tailed;
* crucially for the fairness result (Figure 11), **slow devices tend to
  hold more data** ("We observe very high correlation between slow
  devices and devices with many training samples", Section 1).  The two
  log-normals share a latent factor with configurable correlation, and
  execution time additionally scales with the number of local examples —
  both mechanisms the paper describes;
* ~10 % of clients drop out mid-participation (Figure 1 caption: "We see
  up to 10 % of clients drop").

Profiles are derived deterministically from ``(seed, device_id)``, so a
population of millions costs nothing until a device is actually touched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import child_rng

__all__ = ["PopulationConfig", "DeviceProfile", "DevicePopulation"]


@dataclass(frozen=True)
class PopulationConfig:
    """Distributional parameters of the simulated fleet.

    Attributes
    ----------
    n_devices:
        Population size (ids are ``0..n_devices-1``).
    mean_examples:
        Median of the per-client example-count log-normal.
    sigma_examples:
        Log-space spread of example counts.
    median_sec_per_example:
        Median per-example local training cost in seconds.
    sigma_speed:
        Log-space spread of per-example cost.  Together with
        ``sigma_examples`` and the correlation, the default gives a total
        log-spread of ≈1.13, which reproduces the paper's ~21× mean-round-
        duration-to-mean-client-time ratio at cohort size 1000 and a >2
        order-of-magnitude execution-time spread (Figure 2).
    speed_data_correlation:
        Correlation between the latent speed and data-volume factors
        (positive = slow devices hold more data).
    overhead_s:
        Fixed per-participation cost (model load, setup) in seconds.
    dropout_rate:
        Probability a participating client drops mid-training.
    eligibility_rate:
        Probability a checked-in device is currently eligible (idle,
        charging, unmetered network — Section 7.1's requirements).
    diurnal_amplitude:
        Day/night modulation of eligibility in [0, 1): the effective rate
        swings by ±amplitude over a 24-hour cycle (devices are mostly
        idle-and-charging at night).  This is why the paper repeats each
        experiment "at the same time of the day"; 0 disables it.
    max_examples:
        Hard cap on per-client examples (keeps real-training runs sane).
    """

    n_devices: int = 100_000
    mean_examples: float = 30.0
    sigma_examples: float = 0.65
    median_sec_per_example: float = 0.25
    sigma_speed: float = 0.75
    speed_data_correlation: float = 0.5
    overhead_s: float = 1.0
    dropout_rate: float = 0.1
    eligibility_rate: float = 0.8
    diurnal_amplitude: float = 0.0
    max_examples: int = 1000

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError("n_devices must be at least 1")
        if not (-1.0 <= self.speed_data_correlation <= 1.0):
            raise ValueError("speed_data_correlation must be in [-1, 1]")
        if not (0.0 <= self.dropout_rate <= 1.0):
            raise ValueError("dropout_rate must be in [0, 1]")
        if not (0.0 < self.eligibility_rate <= 1.0):
            raise ValueError("eligibility_rate must be in (0, 1]")
        if not (0.0 <= self.diurnal_amplitude < 1.0):
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        for f in ("mean_examples", "median_sec_per_example", "overhead_s"):
            if getattr(self, f) <= 0:
                raise ValueError(f"{f} must be positive")


@dataclass(frozen=True)
class DeviceProfile:
    """One device's static characteristics.

    ``sec_per_example`` captures compute capability; ``n_examples`` the
    local data volume; ``download_bandwidth``/``upload_bandwidth`` the
    network (bytes/s).
    """

    device_id: int
    sec_per_example: float
    n_examples: int
    download_bandwidth: float
    upload_bandwidth: float

    def execution_time(self, overhead_s: float, epochs: int = 1) -> float:
        """Local training time: overhead + examples × per-example cost.

        Both heterogeneity sources compound here — a slow device with a
        lot of data is the straggler archetype of Figure 11.
        """
        return overhead_s + epochs * self.n_examples * self.sec_per_example


class DevicePopulation:
    """Deterministic, lazily-sampled fleet of devices."""

    def __init__(self, config: PopulationConfig | None = None, seed: int = 0):
        self.config = config or PopulationConfig()
        self.seed = seed
        self._cache: dict[int, DeviceProfile] = {}

    def profile(self, device_id: int) -> DeviceProfile:
        """The device's profile (stable across calls and runs)."""
        cfg = self.config
        if not (0 <= device_id < cfg.n_devices):
            raise ValueError(f"device_id {device_id} outside population")
        cached = self._cache.get(device_id)
        if cached is not None:
            return cached
        rng = child_rng(self.seed, "device-profile", device_id)
        # Shared latent factor induces the slow-device/big-data correlation.
        z, e_speed, e_data = rng.standard_normal(3)
        rho = cfg.speed_data_correlation
        speed_factor = rho * z + np.sqrt(1.0 - rho * rho) * e_speed
        data_factor = z if rho != 0 else e_data

        sec_per_example = float(
            cfg.median_sec_per_example * np.exp(cfg.sigma_speed * speed_factor)
        )
        n_examples = int(
            np.clip(
                np.round(cfg.mean_examples * np.exp(cfg.sigma_examples * data_factor)),
                1,
                cfg.max_examples,
            )
        )
        # Mobile network bandwidths, log-normal around ~2 MB/s down, 1 MB/s up.
        bw = rng.lognormal(mean=0.0, sigma=0.5)
        prof = DeviceProfile(
            device_id=device_id,
            sec_per_example=sec_per_example,
            n_examples=n_examples,
            download_bandwidth=2e6 * float(bw),
            upload_bandwidth=1e6 * float(bw),
        )
        self._cache[device_id] = prof
        return prof

    # -- stochastic per-participation behaviour --------------------------------

    def eligibility_rate_at(self, time_s: float) -> float:
        """Effective eligibility rate at a simulated time of day.

        The fleet's availability peaks at night (hour 3) when phones sit
        idle on chargers; with zero amplitude the rate is constant.
        """
        cfg = self.config
        if cfg.diurnal_amplitude == 0.0:
            return cfg.eligibility_rate
        day = 24 * 3600.0
        phase = 2.0 * np.pi * ((time_s % day) / day - 3.0 / 24.0)
        rate = cfg.eligibility_rate * (1.0 + cfg.diurnal_amplitude * np.cos(phase))
        return float(np.clip(rate, 0.0, 1.0))

    def is_eligible(
        self, device_id: int, checkin_count: int, time_s: float = 0.0
    ) -> bool:
        """Whether the device passes eligibility at this check-in.

        Eligibility (idle + charging + unmetered) fluctuates; it is
        re-rolled per check-in attempt, deterministically, against the
        (possibly diurnal) rate at ``time_s``.
        """
        rng = child_rng(self.seed, "eligibility", device_id, checkin_count)
        return bool(rng.random() < self.eligibility_rate_at(time_s))

    def dropout_point(self, device_id: int, participation: int) -> float | None:
        """If this participation drops out, the fraction of training done.

        Returns ``None`` for participations that run to completion, else
        a fraction in (0, 1) of the execution time at which the client
        silently dies (battery, app eviction, network loss).
        """
        rng = child_rng(self.seed, "dropout", device_id, participation)
        if rng.random() >= self.config.dropout_rate:
            return None
        return float(rng.uniform(0.05, 0.95))

    # -- population statistics ----------------------------------------------------

    def sample_profiles(self, n: int, rng: np.random.Generator) -> list[DeviceProfile]:
        """Profiles of ``n`` devices sampled uniformly without replacement."""
        ids = rng.choice(self.config.n_devices, size=min(n, self.config.n_devices),
                         replace=False)
        return [self.profile(int(i)) for i in ids]

    def execution_time_stats(self, sample_size: int = 2000) -> dict[str, float]:
        """Summary statistics of the execution-time distribution (Fig. 2)."""
        rng = child_rng(self.seed, "exec-stats")
        profs = self.sample_profiles(sample_size, rng)
        times = np.array([p.execution_time(self.config.overhead_s) for p in profs])
        return {
            "mean": float(times.mean()),
            "median": float(np.median(times)),
            "p95": float(np.percentile(times, 95)),
            "p99": float(np.percentile(times, 99)),
            "max": float(times.max()),
            # Bulk spread (p0.5–p99.5), robust to lone extremes — the
            # visible range of the paper's Figure 2 histogram.
            "spread_orders_of_magnitude": float(
                np.log10(
                    np.percentile(times, 99.5) / max(np.percentile(times, 0.5), 1e-9)
                )
            ),
        }
