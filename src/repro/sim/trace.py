"""Metrics collection for simulated runs.

Records everything the paper's figures are built from: the active-client
time series (Figure 7), server-step times and losses (Figures 9/10/12),
communication trips (Figures 3/9), and per-participation records — client,
example count, execution time, outcome — from which the sampling-bias
analysis (Figure 11, Table 1) is computed.

:class:`MetricsTrace` keeps every record — the right default for the
paper-figure experiments, whose traces are also the byte-level
equivalence contracts.  :class:`BoundedMetricsTrace` is the million-
client variant: per-participation records go through a reservoir or
ring-buffer policy and the active-client series is binned, so memory is
bounded no matter how long the run, while the scalar tallies (outcome
counts, trip/byte counters, peak concurrency) stay exact.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import child_rng

__all__ = [
    "Outcome",
    "ParticipationRecord",
    "ServerStepRecord",
    "MetricsTrace",
    "BoundedMetricsTrace",
]


class Outcome(enum.Enum):
    """How one client participation ended."""

    AGGREGATED = "aggregated"  # update contributed to a server step
    DISCARDED = "discarded"    # arrived/trained but thrown away (over-selection)
    FAILED = "failed"          # device dropped out mid-participation
    TIMEOUT = "timeout"        # exceeded the client execution timeout
    ABORTED = "aborted"        # server-side abort (stale / round closed)
    REJECTED = "rejected"      # never admitted (ineligible or no demand)


@dataclass(frozen=True)
class ParticipationRecord:
    """One client participation, as the bias analysis needs it."""

    device_id: int
    task: str
    start_time: float
    end_time: float
    n_examples: int
    execution_time: float
    outcome: Outcome
    staleness: int = 0


@dataclass(frozen=True)
class ServerStepRecord:
    """One server model update."""

    time: float
    task: str
    version: int
    num_updates: int
    mean_staleness: float
    loss: float


class MetricsTrace:
    """Append-only run telemetry with the queries the figures need."""

    def __init__(self) -> None:
        self.participations: list[ParticipationRecord] = []
        self.server_steps: list[ServerStepRecord] = []
        self._active_deltas: list[tuple[float, int]] = []
        self.uploads = 0
        self.downloads = 0
        self.upload_bytes = 0
        self.download_bytes = 0
        # O(1) views for stop predicates evaluated after every event.
        self.step_counts: dict[str, int] = {}
        self.last_loss: dict[str, float] = {}

    # -- recording ------------------------------------------------------------

    def record_participation(self, rec: ParticipationRecord) -> None:
        """Log a finished participation (any outcome)."""
        self.participations.append(rec)

    def record_server_step(self, rec: ServerStepRecord) -> None:
        """Log a server model update."""
        self.server_steps.append(rec)
        self.step_counts[rec.task] = self.step_counts.get(rec.task, 0) + 1
        self.last_loss[rec.task] = rec.loss

    def record_active_delta(self, time: float, delta: int) -> None:
        """Client became active (+1) or inactive (-1) at ``time``."""
        self._active_deltas.append((time, delta))

    def record_download(self, nbytes: int) -> None:
        """Count one model download (a communication trip)."""
        self.downloads += 1
        self.download_bytes += nbytes

    def record_upload(self, nbytes: int) -> None:
        """Count one update upload (the paper's "communication trip")."""
        self.uploads += 1
        self.upload_bytes += nbytes

    # -- queries ------------------------------------------------------------

    def active_series(self) -> tuple[np.ndarray, np.ndarray]:
        """Step function of concurrently active clients over time."""
        if not self._active_deltas:
            return np.array([0.0]), np.array([0])
        deltas = sorted(self._active_deltas)
        times = np.array([t for t, _ in deltas])
        counts = np.cumsum([d for _, d in deltas])
        return times, counts

    def mean_utilization(self, concurrency: int, t_start: float = 0.0,
                         t_end: float | None = None) -> float:
        """Time-averaged active clients / concurrency over a window."""
        times, counts = self.active_series()
        if times.size == 0 or concurrency <= 0:
            return 0.0
        t_end = float(times[-1]) if t_end is None else t_end
        if t_end <= t_start:
            return 0.0
        # Integrate the step function over [t_start, t_end].
        total = 0.0
        for i in range(len(times)):
            seg_start = max(float(times[i]), t_start)
            seg_end = min(float(times[i + 1]) if i + 1 < len(times) else t_end, t_end)
            if seg_end > seg_start:
                total += counts[i] * (seg_end - seg_start)
        return total / ((t_end - t_start) * concurrency)

    def loss_curve(self, task: str | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(times, losses) of server steps, optionally for one task."""
        steps = [s for s in self.server_steps if task is None or s.task == task]
        return (
            np.array([s.time for s in steps]),
            np.array([s.loss for s in steps]),
        )

    def time_to_loss(self, target: float, task: str | None = None) -> float | None:
        """First simulated time the loss reached ``target`` (None if never)."""
        for s in self.server_steps:
            if (task is None or s.task == task) and s.loss <= target:
                return s.time
        return None

    def steps_per_hour(self, task: str | None = None) -> float:
        """Server model updates per simulated hour."""
        steps = [s for s in self.server_steps if task is None or s.task == task]
        if len(steps) < 2:
            return 0.0
        span = steps[-1].time - steps[0].time
        if span <= 0:
            return 0.0
        return (len(steps) - 1) / span * 3600.0

    def outcome_counts(self) -> dict[Outcome, int]:
        """Participation tallies by outcome."""
        counts: dict[Outcome, int] = {o: 0 for o in Outcome}
        for rec in self.participations:
            counts[rec.outcome] += 1
        return counts

    def aggregated_participations(self) -> list[ParticipationRecord]:
        """Participations whose update actually entered a server step."""
        return [p for p in self.participations if p.outcome is Outcome.AGGREGATED]

    def staleness_values(self) -> np.ndarray:
        """Staleness of every aggregated update."""
        return np.array(
            [p.staleness for p in self.aggregated_participations()], dtype=float
        )

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data view of the whole trace (for JSON/dataframe export)."""
        return {
            "participations": [
                {
                    "device_id": p.device_id,
                    "task": p.task,
                    "start_time": p.start_time,
                    "end_time": p.end_time,
                    "n_examples": p.n_examples,
                    "execution_time": p.execution_time,
                    "outcome": p.outcome.value,
                    "staleness": p.staleness,
                }
                for p in self.participations
            ],
            "server_steps": [
                {
                    "time": s.time,
                    "task": s.task,
                    "version": s.version,
                    "num_updates": s.num_updates,
                    "mean_staleness": s.mean_staleness,
                    "loss": s.loss,
                }
                for s in self.server_steps
            ],
            "uploads": self.uploads,
            "downloads": self.downloads,
            "upload_bytes": self.upload_bytes,
            "download_bytes": self.download_bytes,
        }

    def export_json(self, path: str) -> None:
        """Write the trace to a JSON file."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)


class BoundedMetricsTrace(MetricsTrace):
    """A :class:`MetricsTrace` whose memory never grows past a fixed bound.

    A 1M-client day is ~10^7 participations; the full trace would hold
    ~1 GB of record objects that no analysis ever reads in full.  This
    variant stores at most ``max_records`` participation records:

    * ``policy="reservoir"`` — uniform sample over the whole run
      (algorithm R, deterministic via ``child_rng(seed,
      "trace-reservoir")``), the right choice for distributional queries
      (staleness histograms, bias analysis);
    * ``policy="ring"`` — the most recent ``max_records`` records, the
      right choice for "what just happened" debugging.

    Whatever the sample holds, the *scalar* telemetry stays exact:
    ``total_participations``, per-outcome tallies, upload/download trip
    and byte counters, and ``peak_active``.  The active-client series is
    accumulated into fixed-width time bins (``active_bin_s``) instead of
    one delta per transition; ``active_series`` reconstructs the step
    function at bin resolution.  Server-step records are kept exact —
    there is one per server model update, inherently bounded.
    """

    #: accepted sampling policies
    POLICIES = ("reservoir", "ring")

    def __init__(
        self,
        max_records: int = 100_000,
        policy: str = "reservoir",
        seed: int = 0,
        active_bin_s: float = 60.0,
    ) -> None:
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}")
        if active_bin_s <= 0:
            raise ValueError("active_bin_s must be positive")
        super().__init__()
        self.max_records = max_records
        self.policy = policy
        self.active_bin_s = active_bin_s
        self.total_participations = 0
        self.peak_active = 0
        self._active_now = 0
        self._active_bins: dict[int, int] = {}
        self._outcome_totals: dict[Outcome, int] = {o: 0 for o in Outcome}
        if policy == "ring":
            self.participations = deque(maxlen=max_records)  # type: ignore[assignment]
        else:
            self._reservoir_rng = child_rng(seed, "trace-reservoir")

    # -- bounded recording ------------------------------------------------------

    def record_participation(self, rec: ParticipationRecord) -> None:
        """Tally exactly; store through the sampling policy."""
        self.total_participations += 1
        self._outcome_totals[rec.outcome] += 1
        if self.policy == "ring":
            self.participations.append(rec)  # deque evicts the oldest
        elif len(self.participations) < self.max_records:
            self.participations.append(rec)
        else:
            # Algorithm R: keep each of the n records seen so far with
            # probability max_records / n.
            j = int(self._reservoir_rng.integers(self.total_participations))
            if j < self.max_records:
                self.participations[j] = rec

    def record_active_delta(self, time: float, delta: int) -> None:
        """Accumulate the transition into its time bin; track the peak."""
        self._active_now += delta
        if self._active_now > self.peak_active:
            self.peak_active = self._active_now
        idx = int(time / self.active_bin_s)
        self._active_bins[idx] = self._active_bins.get(idx, 0) + delta

    # -- exact queries over bounded state --------------------------------------

    def outcome_counts(self) -> dict[Outcome, int]:
        """Exact per-outcome tallies (counted, not sampled)."""
        return dict(self._outcome_totals)

    def active_series(self) -> tuple[np.ndarray, np.ndarray]:
        """Active-client step function at ``active_bin_s`` resolution."""
        if not self._active_bins:
            return np.array([0.0]), np.array([0])
        idxs = sorted(self._active_bins)
        times = np.array([i * self.active_bin_s for i in idxs])
        counts = np.cumsum([self._active_bins[i] for i in idxs])
        return times, counts

    def approx_bytes(self) -> int:
        """Rough upper bound on trace memory (records + bins + steps)."""
        # A ParticipationRecord is ~200 bytes of interpreter heap; bins
        # and server steps are the only other growable state.
        return (
            200 * min(self.total_participations, self.max_records)
            + 100 * len(self._active_bins)
            + 200 * len(self.server_steps)
        )

    def to_dict(self) -> dict:
        """Superset of the exact trace's export, flagged as sampled."""
        doc = super().to_dict()
        doc["trace_policy"] = self.policy
        doc["max_records"] = self.max_records
        doc["total_participations"] = self.total_participations
        doc["peak_active"] = self.peak_active
        doc["outcome_totals"] = {
            o.value: n for o, n in self._outcome_totals.items()
        }
        return doc
