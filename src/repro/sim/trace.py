"""Metrics collection for simulated runs.

Records everything the paper's figures are built from: the active-client
time series (Figure 7), server-step times and losses (Figures 9/10/12),
communication trips (Figures 3/9), and per-participation records — client,
example count, execution time, outcome — from which the sampling-bias
analysis (Figure 11, Table 1) is computed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["Outcome", "ParticipationRecord", "ServerStepRecord", "MetricsTrace"]


class Outcome(enum.Enum):
    """How one client participation ended."""

    AGGREGATED = "aggregated"  # update contributed to a server step
    DISCARDED = "discarded"    # arrived/trained but thrown away (over-selection)
    FAILED = "failed"          # device dropped out mid-participation
    TIMEOUT = "timeout"        # exceeded the client execution timeout
    ABORTED = "aborted"        # server-side abort (stale / round closed)
    REJECTED = "rejected"      # never admitted (ineligible or no demand)


@dataclass(frozen=True)
class ParticipationRecord:
    """One client participation, as the bias analysis needs it."""

    device_id: int
    task: str
    start_time: float
    end_time: float
    n_examples: int
    execution_time: float
    outcome: Outcome
    staleness: int = 0


@dataclass(frozen=True)
class ServerStepRecord:
    """One server model update."""

    time: float
    task: str
    version: int
    num_updates: int
    mean_staleness: float
    loss: float


class MetricsTrace:
    """Append-only run telemetry with the queries the figures need."""

    def __init__(self) -> None:
        self.participations: list[ParticipationRecord] = []
        self.server_steps: list[ServerStepRecord] = []
        self._active_deltas: list[tuple[float, int]] = []
        self.uploads = 0
        self.downloads = 0
        self.upload_bytes = 0
        self.download_bytes = 0
        # O(1) views for stop predicates evaluated after every event.
        self.step_counts: dict[str, int] = {}
        self.last_loss: dict[str, float] = {}

    # -- recording ------------------------------------------------------------

    def record_participation(self, rec: ParticipationRecord) -> None:
        """Log a finished participation (any outcome)."""
        self.participations.append(rec)

    def record_server_step(self, rec: ServerStepRecord) -> None:
        """Log a server model update."""
        self.server_steps.append(rec)
        self.step_counts[rec.task] = self.step_counts.get(rec.task, 0) + 1
        self.last_loss[rec.task] = rec.loss

    def record_active_delta(self, time: float, delta: int) -> None:
        """Client became active (+1) or inactive (-1) at ``time``."""
        self._active_deltas.append((time, delta))

    def record_download(self, nbytes: int) -> None:
        """Count one model download (a communication trip)."""
        self.downloads += 1
        self.download_bytes += nbytes

    def record_upload(self, nbytes: int) -> None:
        """Count one update upload (the paper's "communication trip")."""
        self.uploads += 1
        self.upload_bytes += nbytes

    # -- queries ------------------------------------------------------------

    def active_series(self) -> tuple[np.ndarray, np.ndarray]:
        """Step function of concurrently active clients over time."""
        if not self._active_deltas:
            return np.array([0.0]), np.array([0])
        deltas = sorted(self._active_deltas)
        times = np.array([t for t, _ in deltas])
        counts = np.cumsum([d for _, d in deltas])
        return times, counts

    def mean_utilization(self, concurrency: int, t_start: float = 0.0,
                         t_end: float | None = None) -> float:
        """Time-averaged active clients / concurrency over a window."""
        times, counts = self.active_series()
        if times.size == 0 or concurrency <= 0:
            return 0.0
        t_end = float(times[-1]) if t_end is None else t_end
        if t_end <= t_start:
            return 0.0
        # Integrate the step function over [t_start, t_end].
        total = 0.0
        for i in range(len(times)):
            seg_start = max(float(times[i]), t_start)
            seg_end = min(float(times[i + 1]) if i + 1 < len(times) else t_end, t_end)
            if seg_end > seg_start:
                total += counts[i] * (seg_end - seg_start)
        return total / ((t_end - t_start) * concurrency)

    def loss_curve(self, task: str | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(times, losses) of server steps, optionally for one task."""
        steps = [s for s in self.server_steps if task is None or s.task == task]
        return (
            np.array([s.time for s in steps]),
            np.array([s.loss for s in steps]),
        )

    def time_to_loss(self, target: float, task: str | None = None) -> float | None:
        """First simulated time the loss reached ``target`` (None if never)."""
        for s in self.server_steps:
            if (task is None or s.task == task) and s.loss <= target:
                return s.time
        return None

    def steps_per_hour(self, task: str | None = None) -> float:
        """Server model updates per simulated hour."""
        steps = [s for s in self.server_steps if task is None or s.task == task]
        if len(steps) < 2:
            return 0.0
        span = steps[-1].time - steps[0].time
        if span <= 0:
            return 0.0
        return (len(steps) - 1) / span * 3600.0

    def outcome_counts(self) -> dict[Outcome, int]:
        """Participation tallies by outcome."""
        counts: dict[Outcome, int] = {o: 0 for o in Outcome}
        for rec in self.participations:
            counts[rec.outcome] += 1
        return counts

    def aggregated_participations(self) -> list[ParticipationRecord]:
        """Participations whose update actually entered a server step."""
        return [p for p in self.participations if p.outcome is Outcome.AGGREGATED]

    def staleness_values(self) -> np.ndarray:
        """Staleness of every aggregated update."""
        return np.array(
            [p.staleness for p in self.aggregated_participations()], dtype=float
        )

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data view of the whole trace (for JSON/dataframe export)."""
        return {
            "participations": [
                {
                    "device_id": p.device_id,
                    "task": p.task,
                    "start_time": p.start_time,
                    "end_time": p.end_time,
                    "n_examples": p.n_examples,
                    "execution_time": p.execution_time,
                    "outcome": p.outcome.value,
                    "staleness": p.staleness,
                }
                for p in self.participations
            ],
            "server_steps": [
                {
                    "time": s.time,
                    "task": s.task,
                    "version": s.version,
                    "num_updates": s.num_updates,
                    "mean_staleness": s.mean_staleness,
                    "loss": s.loss,
                }
                for s in self.server_steps
            ],
            "uploads": self.uploads,
            "downloads": self.downloads,
            "upload_bytes": self.upload_bytes,
            "download_bytes": self.download_bytes,
        }

    def export_json(self, path: str) -> None:
        """Write the trace to a JSON file."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)
