"""Discrete-event substrate: simulator, device population, network, trace."""

from repro.sim.engine import DeferredQueue, EventHandle, Simulator
from repro.sim.network import NetworkModel
from repro.sim.population import DevicePopulation, DeviceProfile, PopulationConfig
from repro.sim.trace import (
    MetricsTrace,
    Outcome,
    ParticipationRecord,
    ServerStepRecord,
)

__all__ = [
    "DeferredQueue",
    "EventHandle",
    "Simulator",
    "NetworkModel",
    "DevicePopulation",
    "DeviceProfile",
    "PopulationConfig",
    "MetricsTrace",
    "Outcome",
    "ParticipationRecord",
    "ServerStepRecord",
]
