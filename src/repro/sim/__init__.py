"""Discrete-event substrate: simulator, device population, network, trace."""

from repro.sim.engine import DeferredQueue, EventHandle, Simulator
from repro.sim.fleet import FleetConfig, FleetSimulation
from repro.sim.network import NetworkModel
from repro.sim.population import (
    ColumnarDevicePopulation,
    DevicePopulation,
    DeviceProfile,
    PopulationConfig,
)
from repro.sim.trace import (
    BoundedMetricsTrace,
    MetricsTrace,
    Outcome,
    ParticipationRecord,
    ServerStepRecord,
)

__all__ = [
    "DeferredQueue",
    "EventHandle",
    "Simulator",
    "NetworkModel",
    "ColumnarDevicePopulation",
    "DevicePopulation",
    "DeviceProfile",
    "PopulationConfig",
    "FleetConfig",
    "FleetSimulation",
    "BoundedMetricsTrace",
    "MetricsTrace",
    "Outcome",
    "ParticipationRecord",
    "ServerStepRecord",
]
