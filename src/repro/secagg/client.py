"""Client side of Asynchronous SecAgg (Figure 16 steps 3–4, Figure 19/20).

A participating client:

1. receives a key-exchange leg (DH initial message + attestation quote)
   and the public parameters from the untrusted server;
2. **verifies the quote**: signature against the root of trust, binary
   measurement against the published hash, parameter hash against the
   server-claimed parameters — and, when a verifiable log is in use, the
   inclusion proof that the binary is logged (Figure 20);  aborting on
   any failure, exactly as the paper requires;
3. completes the DH exchange, obtaining the channel key shared with the
   TSA;
4. picks a random 16-byte seed, expands it into a model-sized mask,
   uploads ``v + m`` (fixed-point encoded) toward the server and the
   sealed seed toward the TSA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.secagg.attestation import AttestationError, SigningAuthority
from repro.secagg.dh import DHKeyPair, shared_key
from repro.secagg.fixedpoint import FixedPointCodec
from repro.secagg.merkle import verify_inclusion
from repro.secagg.prng import expand_mask, generate_seed
from repro.secagg.sealed import SealedBox, seal
from repro.secagg.tsa import KeyExchangeLeg

__all__ = ["LogBundle", "ClientSubmission", "SecAggClient"]


@dataclass(frozen=True)
class LogBundle:
    """What the server serves for verifiable-log validation (Figure 20).

    Attributes
    ----------
    entry:
        The logged record identifying the trusted binary (its manifest).
    index, size, root:
        Position and snapshot of the log the proof was generated against.
    proof:
        Merkle inclusion proof for ``entry`` at ``index`` in a log of
        ``size`` entries with head ``root``.
    """

    entry: bytes
    index: int
    size: int
    root: bytes
    proof: list[bytes]


@dataclass(frozen=True)
class ClientSubmission:
    """What a participating client uploads.

    ``masked_update`` goes to the untrusted server; ``completing_message``
    and ``sealed_seed`` are forwarded by the server to the TSA.
    """

    client_id: int
    leg_index: int
    masked_update: np.ndarray
    completing_message: int
    sealed_seed: SealedBox
    num_examples: int = 1


class SecAggClient:
    """A client capable of secure participation.

    Parameters
    ----------
    client_id:
        Identifier used by the outer FL protocol.
    codec:
        Fixed-point codec (its group/scale are part of the attested
        public parameters).
    authority:
        Verifier for attestation quotes (the root of trust).
    expected_binary_hash:
        The published hash of the trusted binary ("open sourced in
        advance along with the hash of the trusted binary").
    expected_params_hash:
        Hash of the public protocol parameters the client insists on.
    rng:
        Randomness for the DH key pair and mask seed.
    """

    def __init__(
        self,
        client_id: int,
        codec: FixedPointCodec,
        authority: SigningAuthority,
        expected_binary_hash: bytes,
        expected_params_hash: bytes,
        rng: np.random.Generator,
    ):
        self.client_id = client_id
        self.codec = codec
        self.authority = authority
        self.expected_binary_hash = expected_binary_hash
        self.expected_params_hash = expected_params_hash
        self.rng = rng
        self.last_seed: bytes | None = None  # retained for tests/auditing

    def participate(
        self,
        update: np.ndarray,
        leg: KeyExchangeLeg,
        log_bundle: LogBundle | None = None,
        num_examples: int = 1,
    ) -> ClientSubmission:
        """Validate the TSA and produce the masked submission.

        Raises
        ------
        AttestationError
            If the quote or the verifiable-log inclusion proof fails —
            the client refuses to hand over anything derived from its
            private data.
        """
        # Step 3 (Figure 19): verify quote — signature, binary, parameters.
        self.authority.verify(
            leg.quote, self.expected_binary_hash, self.expected_params_hash
        )
        # Figure 20: validate the inclusion proof when a log is in force.
        if log_bundle is not None:
            ok = verify_inclusion(
                log_bundle.entry,
                log_bundle.index,
                log_bundle.size,
                log_bundle.proof,
                log_bundle.root,
            )
            if not ok:
                raise AttestationError("trusted binary is not in the verifiable log")

        # Complete the DH exchange; derive the channel key with the TSA.
        pair = DHKeyPair.generate(self.rng)
        key = shared_key(pair.private, leg.initial_message)

        # Step 4: random seed -> mask; upload v+m and the sealed seed.
        seed = generate_seed(self.rng)
        self.last_seed = seed
        encoded = self.codec.encode(update)
        mask = expand_mask(seed, len(encoded), self.codec.group)
        masked = self.codec.group.add(encoded, mask)
        sealed = seal(key, seed, seq=leg.index)
        return ClientSubmission(
            client_id=self.client_id,
            leg_index=leg.index,
            masked_update=masked,
            completing_message=pair.public,
            sealed_seed=sealed,
            num_examples=num_examples,
        )
