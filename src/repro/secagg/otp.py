"""Additive one-time-pad encryption of model updates (paper Figure 14).

The scheme in Appendix A.2:

* ``Enc_k(v)``: expand ``k`` into a mask ``m`` in the group and output
  ``v + m`` element-wise;
* ciphertexts add homomorphically;
* an aggregated ciphertext ``Σ Enc_{k_i}(v_i)`` decrypts to ``Σ v_i`` by
  subtracting ``Σ PRNG(k_i)``.

The ciphertext lives in the same space as the plaintext — the property
that motivates the paper's choice over Paillier/ElGamal-style additive
homomorphic encryption, whose 1024–3072-bit group elements would inflate
mobile upload traffic.
"""

from __future__ import annotations

import numpy as np

from repro.secagg.groups import PowerOfTwoGroup
from repro.secagg.prng import expand_mask

__all__ = ["otp_encrypt", "otp_decrypt_sum", "otp_add"]


def otp_encrypt(values: np.ndarray, seed: bytes, group: PowerOfTwoGroup) -> np.ndarray:
    """``Enc_seed(v) = v + PRNG(seed)`` element-wise in the group."""
    mask = expand_mask(seed, len(values), group)
    return group.add(values, mask)


def otp_add(c1: np.ndarray, c2: np.ndarray, group: PowerOfTwoGroup) -> np.ndarray:
    """Homomorphic addition of two ciphertexts."""
    return group.add(c1, c2)


def otp_decrypt_sum(
    cipher_sum: np.ndarray, seeds: list[bytes], group: PowerOfTwoGroup
) -> np.ndarray:
    """Decrypt an aggregated ciphertext given every contributing seed.

    ``Σ v_i = (Σ (v_i + m_i)) − Σ m_i`` — this is exactly the unmasking
    the trusted party performs, and its cost scales with the number of
    additions (the trade-off Appendix A.2 accepts for compact
    ciphertexts: the server has the compute, the phones have the
    bandwidth constraint).
    """
    acc = group.zeros(len(cipher_sum))
    for seed in seeds:
        acc = group.add(acc, expand_mask(seed, len(cipher_sum), group))
    return group.sub(cipher_sum, acc)
