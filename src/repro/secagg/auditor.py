"""Log auditing and trusted-binary updates (paper Appendix C.2, Figure 20).

Remote attestation alone pins clients to a hardcoded binary hash; the
verifiable log decouples binary updates from client updates.  The paper's
auditing story has three actors, all implemented here:

* the **release process** appends each new trusted binary's identity and
  manifest to the log *before* it may serve clients
  (:class:`BinaryReleaseProcess`);
* **clients** receive an inclusion proof with each key-exchange leg and
  refuse to proceed unless the serving binary is logged (already in
  :class:`repro.secagg.client.SecAggClient`);
* **auditors** poll snapshots through the same API as clients, check
  *consistency* between successive snapshots (append-only: no history
  rewrite), and can fetch any logged entry to rebuild and inspect the
  binary (:class:`LogAuditor`).

"Due to the unforgeability of the underlying secure hashes, any logged
trusted binary cannot avoid audition without being noticed" — the tests
drive a malicious operator against these classes and watch them get
caught.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.secagg.attestation import hash_binary
from repro.secagg.client import LogBundle
from repro.secagg.merkle import VerifiableLog, verify_consistency, verify_inclusion

__all__ = ["LogSnapshot", "BinaryReleaseProcess", "LogAuditor", "AuditFailure"]


class AuditFailure(RuntimeError):
    """An auditor caught the log operator misbehaving."""


@dataclass(frozen=True)
class LogSnapshot:
    """A (size, root) pair — what the snapshot API returns to everyone."""

    size: int
    root: bytes


class BinaryReleaseProcess:
    """The honest release pipeline for trusted binaries.

    Owns the verifiable log; every release appends
    ``identity || manifest`` *before* the binary serves clients, and can
    mint the :class:`LogBundle` clients verify during participation.
    """

    def __init__(self) -> None:
        self.log = VerifiableLog()
        self._released: dict[bytes, int] = {}  # binary hash -> log index

    def release(self, binary: bytes, manifest: str = "") -> int:
        """Log a new trusted binary; returns its log index."""
        digest = hash_binary(binary)
        if digest in self._released:
            return self._released[digest]
        entry = b"binary:" + digest + b"|manifest:" + manifest.encode()
        index = self.log.append(entry)
        self._released[digest] = index
        return index

    def snapshot(self) -> LogSnapshot:
        """The latest log snapshot (same API for clients and auditors)."""
        return LogSnapshot(size=self.log.size, root=self.log.root())

    def bundle_for(self, binary: bytes) -> LogBundle:
        """Inclusion-proof bundle for a released binary (served to clients).

        Raises
        ------
        KeyError
            If the binary was never released — an unlogged binary cannot
            produce a bundle, which is exactly the point.
        """
        digest = hash_binary(binary)
        index = self._released[digest]
        snap = self.snapshot()
        return LogBundle(
            entry=self.log.entry(index),
            index=index,
            size=snap.size,
            root=snap.root,
            proof=self.log.inclusion_proof(index, snap.size),
        )

    def consistency_proof(self, old_size: int) -> list[bytes]:
        """Append-only proof from an older snapshot to the current one."""
        return self.log.consistency_proof(old_size, self.log.size)


class LogAuditor:
    """A public auditor watching log snapshots for history rewrites.

    Keeps the last verified snapshot; every new snapshot must come with a
    consistency proof extending it.  Also spot-checks that served bundles
    verify against the snapshot the auditor trusts.
    """

    def __init__(self, initial: LogSnapshot | None = None):
        self.trusted = initial or LogSnapshot(size=0, root=VerifiableLog().root(0))
        self.audits_performed = 0

    def observe(self, snapshot: LogSnapshot, proof: list[bytes]) -> None:
        """Verify that ``snapshot`` extends the trusted one; advance trust.

        Raises
        ------
        AuditFailure
            If the log shrank or the consistency proof fails (history was
            rewritten).
        """
        self.audits_performed += 1
        if snapshot.size < self.trusted.size:
            raise AuditFailure(
                f"log shrank from {self.trusted.size} to {snapshot.size}"
            )
        ok = verify_consistency(
            self.trusted.size, snapshot.size, self.trusted.root, snapshot.root, proof
        )
        if not ok:
            raise AuditFailure("consistency proof failed: history rewritten")
        self.trusted = snapshot

    def check_bundle(self, bundle: LogBundle) -> None:
        """Verify a served inclusion bundle against the trusted snapshot.

        The bundle may target an older snapshot; it is acceptable as long
        as it verifies against its own (size, root) — clients separately
        require that root via :meth:`observe`-style monitoring.

        Raises
        ------
        AuditFailure
            If the inclusion proof does not verify.
        """
        self.audits_performed += 1
        ok = verify_inclusion(
            bundle.entry, bundle.index, bundle.size, bundle.proof, bundle.root
        )
        if not ok:
            raise AuditFailure("served bundle's inclusion proof does not verify")
