"""Finite Abelian groups Z_{2^b} for vectors of masked model updates.

The secure-aggregation protocol (Appendix A.2) operates element-wise over
"any finite Abelian group (e.g. Z_{2^32})".  Powers of two are the natural
choice on binary hardware: addition is machine integer addition and the
modulo reduction is a bitmask, so the protocol's group math is exact and
fast over NumPy unsigned arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PowerOfTwoGroup"]


class PowerOfTwoGroup:
    """The group (Z_{2^bits}, +) acting element-wise on vectors.

    Parameters
    ----------
    bits:
        Group width; 1–64.  Widths ≤ 32 use uint32 storage, wider use
        uint64.  The paper's examples use Z_{2^32}.
    """

    def __init__(self, bits: int = 32):
        if not (1 <= bits <= 64):
            raise ValueError("bits must be in [1, 64]")
        self.bits = bits
        self.dtype = np.dtype(np.uint32) if bits <= 32 else np.dtype(np.uint64)
        self.order = 1 << bits
        # Mask as a NumPy scalar so &-reduction never up-casts to Python int.
        self._mask = self.dtype.type(self.order - 1) if bits < 64 else self.dtype.type(0xFFFFFFFFFFFFFFFF)

    # -- element construction -----------------------------------------------

    def zeros(self, n: int) -> np.ndarray:
        """The identity vector of length ``n``."""
        return np.zeros(n, dtype=self.dtype)

    def reduce(self, arr: np.ndarray) -> np.ndarray:
        """Map arbitrary unsigned ints into the group (mod 2^bits)."""
        return (arr.astype(self.dtype, copy=False) & self._mask).astype(self.dtype)

    def random(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """A uniformly random group vector (used for one-time-pad masks)."""
        raw = rng.integers(0, self.order, size=n, dtype=np.uint64, endpoint=False)
        return self.reduce(raw)

    # -- group operations ------------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise group addition with wraparound."""
        self._check(a), self._check(b)
        with np.errstate(over="ignore"):
            return self.reduce(a + b)

    def neg(self, a: np.ndarray) -> np.ndarray:
        """Element-wise group inverse."""
        self._check(a)
        with np.errstate(over="ignore"):
            return self.reduce(self.dtype.type(0) - a)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a + (-b)`` — computed as one wrapped subtraction.

        Machine subtraction wraps mod 2^width and ``a - b ≡ a + (2^w - b)``,
        so a single pass is bit-identical to negate-then-add.
        """
        self._check(a), self._check(b)
        with np.errstate(over="ignore"):
            return self.reduce(a - b)

    def scale(self, a: np.ndarray, k: int) -> np.ndarray:
        """Repeated addition ``k·a`` (k may exceed the group order).

        Used by the weighted-unmask extension: the server may ask the
        trusted party to scale each mask by the integer aggregation weight
        of its client.
        """
        self._check(a)
        k_red = int(k) % self.order
        # Wrapping multiplication mod 2^64 (or 2^32) is congruent to the
        # true product mod 2^bits because 2^bits divides the machine
        # modulus — so a single wrapped multiply is exact.
        with np.errstate(over="ignore"):
            prod = a.astype(np.uint64) * np.uint64(k_red)
            return self.reduce(prod)

    def sum(self, vectors: list[np.ndarray]) -> np.ndarray:
        """Group sum of several vectors (empty list -> identity of len 0)."""
        if not vectors:
            return self.zeros(0)
        acc = vectors[0].copy()
        for v in vectors[1:]:
            acc = self.add(acc, v)
        return acc

    # -- block (vectorized) operations -----------------------------------------
    #
    # The block data plane folds K vectors with single fused reductions
    # instead of K allocate-and-add passes.  All of these are bit-identical
    # to the sequential scalar folds: machine addition/multiplication wraps
    # mod 2^width, 2^bits divides 2^width, so reducing once at the end is
    # congruent to reducing after every step.

    @property
    def _width_bits(self) -> int:
        return self.dtype.itemsize * 8

    def _reduce_inplace(self, arr: np.ndarray) -> np.ndarray:
        if self.bits < self._width_bits:
            np.bitwise_and(arr, self._mask, out=arr)
        return arr

    def add_into(self, acc: np.ndarray, b: np.ndarray) -> np.ndarray:
        """In-place ``acc <- acc + b`` (no allocation); returns ``acc``.

        Bit-identical to ``add`` — the running sums of the block data
        plane use this to avoid reallocating a model-sized vector per
        contribution.
        """
        self._check(acc), self._check(b)
        with np.errstate(over="ignore"):
            np.add(acc, b, out=acc)
        return self._reduce_inplace(acc)

    def mac_into(
        self, acc: np.ndarray, v: np.ndarray, k: int, tmp: np.ndarray
    ) -> np.ndarray:
        """In-place ``acc <- acc + k·v`` using ``tmp`` as scratch.

        Bit-identical to ``add(acc, scale(v, k))`` but allocation-free:
        one wrapped multiply into ``tmp``, one in-place add, one modular
        reduction.  The weighted finalize folds K masked updates this way
        with a third of the memory traffic of copy-then-reduce.
        """
        self._check(acc), self._check(v), self._check(tmp)
        with np.errstate(over="ignore"):
            np.multiply(v, self.dtype.type(int(k) % self.order), out=tmp)
            np.add(acc, tmp, out=acc)
        return self._reduce_inplace(acc)

    def sum_block(self, block: np.ndarray) -> np.ndarray:
        """Fold the rows of a ``(K, l)`` block with one fused reduction.

        Equals ``sum([row for row in block])`` bit-for-bit: group addition
        is associative and exact under machine wraparound, so
        ``np.add.reduce`` over the leading axis followed by a single
        modular reduction reproduces the K sequential folds.
        """
        block = np.asarray(block)
        self._check_block(block)
        if block.shape[0] == 0:
            return self.zeros(block.shape[1])
        with np.errstate(over="ignore"):
            out = np.add.reduce(block, axis=0, dtype=self.dtype)
        return self._reduce_inplace(out)

    def weighted_sum_block(self, block: np.ndarray, weights) -> np.ndarray:
        """``sum_i  w_i · block[i]`` as one fused multiply-accumulate.

        Bit-identical to folding ``scale(block[i], w_i)`` sequentially:
        the einsum accumulates wrapped products in the group's machine
        dtype, and one final reduction maps the result into the group.
        Zero weights contribute the identity, exactly as in the scalar
        loop.
        """
        block = np.asarray(block)
        self._check_block(block)
        w = np.asarray(
            [int(k) % self.order for k in weights], dtype=self.dtype
        )
        if w.shape[0] != block.shape[0]:
            raise ValueError(
                f"need one weight per row: {w.shape[0]} weights, "
                f"{block.shape[0]} rows"
            )
        if block.shape[0] == 0:
            return self.zeros(block.shape[1])
        with np.errstate(over="ignore"):
            out = np.einsum("k,kl->l", w, block)
        return self._reduce_inplace(out)

    # -- helpers ------------------------------------------------------------

    def _check_block(self, block: np.ndarray) -> None:
        if block.ndim != 2:
            raise ValueError(f"expected a (K, l) block, got shape {block.shape}")
        self._check(block)

    def _check(self, arr: np.ndarray) -> None:
        if arr.dtype != self.dtype:
            raise TypeError(
                f"expected group dtype {self.dtype}, got {arr.dtype}; "
                "use reduce() to bring values into the group"
            )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PowerOfTwoGroup) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("PowerOfTwoGroup", self.bits))

    def __repr__(self) -> str:
        return f"PowerOfTwoGroup(bits={self.bits})"
