"""Finite Abelian groups Z_{2^b} for vectors of masked model updates.

The secure-aggregation protocol (Appendix A.2) operates element-wise over
"any finite Abelian group (e.g. Z_{2^32})".  Powers of two are the natural
choice on binary hardware: addition is machine integer addition and the
modulo reduction is a bitmask, so the protocol's group math is exact and
fast over NumPy unsigned arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PowerOfTwoGroup"]


class PowerOfTwoGroup:
    """The group (Z_{2^bits}, +) acting element-wise on vectors.

    Parameters
    ----------
    bits:
        Group width; 1–64.  Widths ≤ 32 use uint32 storage, wider use
        uint64.  The paper's examples use Z_{2^32}.
    """

    def __init__(self, bits: int = 32):
        if not (1 <= bits <= 64):
            raise ValueError("bits must be in [1, 64]")
        self.bits = bits
        self.dtype = np.dtype(np.uint32) if bits <= 32 else np.dtype(np.uint64)
        self.order = 1 << bits
        # Mask as a NumPy scalar so &-reduction never up-casts to Python int.
        self._mask = self.dtype.type(self.order - 1) if bits < 64 else self.dtype.type(0xFFFFFFFFFFFFFFFF)

    # -- element construction -----------------------------------------------

    def zeros(self, n: int) -> np.ndarray:
        """The identity vector of length ``n``."""
        return np.zeros(n, dtype=self.dtype)

    def reduce(self, arr: np.ndarray) -> np.ndarray:
        """Map arbitrary unsigned ints into the group (mod 2^bits)."""
        return (arr.astype(self.dtype, copy=False) & self._mask).astype(self.dtype)

    def random(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """A uniformly random group vector (used for one-time-pad masks)."""
        raw = rng.integers(0, self.order, size=n, dtype=np.uint64, endpoint=False)
        return self.reduce(raw)

    # -- group operations ------------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise group addition with wraparound."""
        self._check(a), self._check(b)
        with np.errstate(over="ignore"):
            return self.reduce(a + b)

    def neg(self, a: np.ndarray) -> np.ndarray:
        """Element-wise group inverse."""
        self._check(a)
        with np.errstate(over="ignore"):
            return self.reduce(self.dtype.type(0) - a)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a + (-b)``."""
        return self.add(a, self.neg(b))

    def scale(self, a: np.ndarray, k: int) -> np.ndarray:
        """Repeated addition ``k·a`` (k may exceed the group order).

        Used by the weighted-unmask extension: the server may ask the
        trusted party to scale each mask by the integer aggregation weight
        of its client.
        """
        self._check(a)
        k_red = int(k) % self.order
        # Wrapping multiplication mod 2^64 (or 2^32) is congruent to the
        # true product mod 2^bits because 2^bits divides the machine
        # modulus — so a single wrapped multiply is exact.
        with np.errstate(over="ignore"):
            prod = a.astype(np.uint64) * np.uint64(k_red)
            return self.reduce(prod)

    def sum(self, vectors: list[np.ndarray]) -> np.ndarray:
        """Group sum of several vectors (empty list -> identity of len 0)."""
        if not vectors:
            return self.zeros(0)
        acc = vectors[0].copy()
        for v in vectors[1:]:
            acc = self.add(acc, v)
        return acc

    # -- helpers ------------------------------------------------------------

    def _check(self, arr: np.ndarray) -> None:
        if arr.dtype != self.dtype:
            raise TypeError(
                f"expected group dtype {self.dtype}, got {arr.dtype}; "
                "use reduce() to bring values into the group"
            )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PowerOfTwoGroup) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("PowerOfTwoGroup", self.bits))

    def __repr__(self) -> str:
        return f"PowerOfTwoGroup(bits={self.bits})"
