"""Fixed-point conversion between real model updates and group elements.

Implements Appendix D of the paper: a real number ``a`` is scaled by a
scaling factor ``c``, rounded to the nearest integer ``[ca]``, and the
signed range ``[-⌊n/2⌋, ⌈n/2⌉)`` is mapped onto Z_n (two's-complement
style).  Plain integer addition and group addition then agree as long as
no aggregate wraps around, so parties must budget headroom for the number
of updates being summed — :meth:`FixedPointCodec.max_summands` makes that
budget explicit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.secagg.groups import PowerOfTwoGroup

__all__ = ["FixedPointCodec", "FixedPointOverflowError", "recommend_codec"]


class FixedPointOverflowError(ValueError):
    """A value (or an aggregate) falls outside the representable range."""


class FixedPointCodec:
    """Encode/decode real vectors to/from a finite group.

    Parameters
    ----------
    group:
        Target Abelian group.
    scale:
        The scaling factor ``c``: reals are represented at resolution
        ``1/c``.  Larger values mean more precision but less headroom.
    clip_value:
        Optional symmetric clipping applied before encoding (model-update
        norms are bounded in practice; clipping makes the overflow budget
        verifiable).
    """

    def __init__(
        self,
        group: PowerOfTwoGroup,
        scale: float = 2**16,
        clip_value: float | None = None,
    ):
        if scale <= 0:
            raise ValueError("scale must be positive")
        if clip_value is not None and clip_value <= 0:
            raise ValueError("clip_value must be positive")
        self.group = group
        self.scale = float(scale)
        self.clip_value = clip_value

    # -- range bookkeeping ------------------------------------------------------

    @property
    def half_low(self) -> int:
        """⌊n/2⌋ — magnitude of the most negative representable integer."""
        return self.group.order // 2

    @property
    def half_high(self) -> int:
        """⌈n/2⌉ — one past the most positive representable integer."""
        return self.group.order - self.group.order // 2

    @property
    def max_abs_value(self) -> float:
        """Largest real magnitude a *single* encoded value may take."""
        return (self.half_low - 1) / self.scale

    def max_summands(self, max_abs: float) -> int:
        """How many values of magnitude ≤ ``max_abs`` may be summed safely.

        The parties "need to estimate the scale of the model updates to
        aggregate ... to properly pick the parameters" (Appendix D); this
        is that estimate's contract.
        """
        if max_abs <= 0:
            raise ValueError("max_abs must be positive")
        per_item = int(np.ceil(max_abs * self.scale))
        return max(0, (self.half_low - 1) // max(per_item, 1))

    # -- encode / decode ------------------------------------------------------

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Real vector -> group vector.

        Raises
        ------
        FixedPointOverflowError
            If any scaled value falls outside the signed representable
            range (only possible when ``clip_value`` is unset or too big).
        """
        v = np.asarray(values, dtype=np.float64)
        if self.clip_value is not None:
            v = np.clip(v, -self.clip_value, self.clip_value)
        scaled = np.rint(v * self.scale)
        if scaled.size and (
            scaled.min() < -self.half_low or scaled.max() >= self.half_high
        ):
            raise FixedPointOverflowError(
                f"value out of fixed-point range ±{self.max_abs_value:.6g}; "
                "lower `scale`, set `clip_value`, or widen the group"
            )
        # Two's-complement mapping: negatives wrap to the top of the group.
        # int64 -> uint64 wraps mod 2^64, and 2^bits divides 2^64, so the
        # reduction is exact for every group width.
        as_int = scaled.astype(np.int64)
        with np.errstate(over="ignore"):
            return self.group.reduce(as_int.astype(np.uint64))

    def encode_block(self, values: np.ndarray) -> np.ndarray:
        """Encode K real vectors as one vectorized ``(K, l)`` call.

        Row ``i`` equals ``encode(values[i])`` bit-for-bit (clipping,
        rounding and the two's-complement mapping are all element-wise);
        the range check covers the whole block, so an out-of-range element
        raises exactly as its row's scalar encode would.
        """
        v = np.asarray(values, dtype=np.float64)
        if v.ndim != 2:
            raise ValueError(f"expected a (K, l) block, got shape {v.shape}")
        return self.encode(v)

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        """Group vector -> real vector (centered signed interpretation).

        Accepts any shape — in particular a ``(K, l)`` block decodes
        row-wise, each row identical to its scalar decode.
        """
        if self.group.bits == 64 and encoded.dtype == np.dtype(np.uint64):
            # uint64 -> int64 is exactly the two's-complement signed
            # reinterpretation, so a zero-copy view replaces two astype
            # passes on the hot decode path.
            return (encoded.view(np.int64) / self.scale).astype(np.float64)
        enc = encoded.astype(np.uint64)
        if self.group.bits == 64:
            # uint64 -> int64 is exactly the two's-complement signed view.
            with np.errstate(over="ignore"):
                signed = enc.astype(np.int64)
        elif self.group.bits == 63:
            raise NotImplementedError(
                "63-bit groups are not supported by the codec (the signed "
                "range does not fit int64); use 62 or 64 bits"
            )
        else:
            raw = enc.astype(np.int64)
            signed = np.where(raw >= self.half_high, raw - self.group.order, raw)
        return (signed / self.scale).astype(np.float64)

    def decode_sum(self, encoded_sum: np.ndarray, num_summands: int, max_abs: float) -> np.ndarray:
        """Decode an aggregate, first verifying the no-overflow contract.

        Parameters
        ----------
        encoded_sum:
            Group sum of ``num_summands`` encoded vectors.
        num_summands:
            How many vectors were added.
        max_abs:
            A priori bound on each summand's real magnitude.

        Raises
        ------
        FixedPointOverflowError
            If the stated workload could have wrapped around, i.e. the
            decode would be unsound.
        """
        if num_summands < 1:
            raise ValueError("num_summands must be at least 1")
        if num_summands > max(1, self.max_summands(max_abs)):
            raise FixedPointOverflowError(
                f"cannot soundly sum {num_summands} values of magnitude "
                f"<= {max_abs}: at most {self.max_summands(max_abs)} fit"
            )
        return self.decode(encoded_sum)

    def __repr__(self) -> str:
        return (
            f"FixedPointCodec(group={self.group!r}, scale={self.scale}, "
            f"clip_value={self.clip_value})"
        )


def recommend_codec(
    max_abs: float,
    max_summands: int,
    precision: float = 1e-4,
    max_weight: int = 1,
) -> FixedPointCodec:
    """Pick (group width, scale) for a workload — the Appendix D exercise.

    "The parties need to estimate the scale of the model updates to
    aggregate [and] the desired accuracy to properly pick the parameters
    including the scaling factor c and the finite group Z_n."  Given the
    workload bounds, this returns the smallest power-of-two group that
    sums ``max_summands`` values of magnitude ≤ ``max_abs`` (each scaled
    by an integer weight ≤ ``max_weight``) without wraparound at the
    requested ``precision``.

    Parameters
    ----------
    max_abs:
        A priori bound on each real value's magnitude (enforced by
        clipping).
    max_summands:
        Largest number of values ever added (e.g. the aggregation goal).
    precision:
        Worst acceptable quantization step (1/c).
    max_weight:
        Largest integer aggregation weight applied to any value.

    Raises
    ------
    ValueError
        If no group of at most 64 bits satisfies the bounds.
    """
    if max_abs <= 0 or max_summands < 1 or precision <= 0 or max_weight < 1:
        raise ValueError("all workload bounds must be positive")
    scale = 2.0 ** math.ceil(math.log2(1.0 / precision))
    per_item = math.ceil(max_abs * scale) * max_weight
    needed = per_item * max_summands
    bits = max(2, needed.bit_length() + 2)  # sign bit + one bit of slack
    if bits == 63:
        bits = 64  # codec does not support 63-bit groups
    if bits > 64:
        raise ValueError(
            f"workload needs a {bits}-bit group; reduce precision "
            f"({precision}), magnitude ({max_abs}), or summands ({max_summands})"
        )
    codec = FixedPointCodec(PowerOfTwoGroup(bits), scale=scale, clip_value=max_abs)
    assert codec.max_summands(max_abs * max_weight) >= max_summands
    return codec
