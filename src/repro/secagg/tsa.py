"""The Trusted Secure Aggregator — the protocol's trusted party.

In production this code runs inside an Intel SGX enclave (Appendix C);
here it is an in-process object whose *interface boundary* is explicit:
everything that crosses into it is metered (``boundary_bytes_in/out``), so
the Figure 6 boundary-traffic claim — ``O(K + m)`` for Asynchronous
SecAgg versus ``O(K·m)`` for naive TEE aggregation — is measured, not
assumed.

Responsibilities (Figure 16, trusted-party legs):

* mint ``N > n`` Diffie–Hellman key-exchange legs up front, each carried
  by an attestation quote binding the DH initial message to the enclave
  binary and the public protocol parameters (step 1);
* per client: recover the mask seed from the sealed box (rejecting any
  tampering), regenerate the mask, and fold it into a running sum — then
  never process that leg again (step 6);
* release the unmasking vector exactly once per round, and only if at
  least the threshold ``t`` of clients contributed (step 7), ignoring all
  further messages afterwards.

The data plane is vectorized: :meth:`process_client_block` authenticates
K submissions, expands their masks as one contiguous block
(:func:`repro.secagg.prng.expand_mask_block`) and folds them with a
single fused reduction; the weighted release computes ``Σ w_i·m_i`` as
one batched expansion plus one fused weighted reduction (or straight from
the cached mask rows).  Every vectorized path is bit-identical to the
sequential scalar protocol — group arithmetic mod 2^bits is exact under
machine wraparound, so reassociating the folds changes no output bit.

Two control-plane amortizations keep the expensive 2048-bit modexps off
the per-epoch aggregation path: :meth:`complete_leg` lets the server
forward a client's DH completing message at *check-in* time (the channel
key is derived once and cached until the leg is consumed), and
:meth:`begin_round` re-keys the aggregator for the next buffer epoch
without re-minting legs or re-standing-up the attestation state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.secagg.attestation import Quote, SigningAuthority, hash_binary, hash_params
from repro.secagg.dh import DHKeyPair, shared_key
from repro.secagg.groups import PowerOfTwoGroup
from repro.secagg.prng import SEED_BYTES, expand_mask, expand_mask_block
from repro.secagg.sealed import SealedBox, SealError, open_sealed

__all__ = [
    "KeyExchangeLeg",
    "ProtocolError",
    "TrustedSecureAggregator",
    "TrustedShardReducer",
]


class ProtocolError(RuntimeError):
    """A party violated the protocol state machine."""


@dataclass(frozen=True)
class KeyExchangeLeg:
    """One pre-minted DH leg: index + quote covering the initial message.

    The DH initial message (the TSA's public value) travels as the quote
    payload so the untrusted server cannot substitute its own key — doing
    so would break the quote signature.
    """

    index: int
    quote: Quote

    @property
    def initial_message(self) -> int:
        """The TSA's DH public value for this leg."""
        return int.from_bytes(self.quote.payload, "big")


class TrustedSecureAggregator:
    """The trusted party of Figure 16, with an explicit metered boundary.

    Parameters
    ----------
    group:
        The finite Abelian group G (public parameter).
    vector_length:
        ℓ — elements per client update (public parameter).
    threshold:
        t — minimum clients aggregated before the unmask may be released
        (public parameter).
    authority:
        Root of trust used to sign attestation quotes.
    trusted_binary:
        The "code of the trusted party" — hashed into every quote; in the
        simulation an arbitrary byte string published ahead of time.
    rng:
        Randomness stream for DH key generation.
    cache_masks:
        When True (default), masks recovered by the *block* data plane are
        kept as rows of a contiguous cache for the lifetime of the round,
        so a weighted release is a single fused reduction with no second
        seed expansion.  When False only the 16-byte seeds are retained
        (the memory-lean TEE configuration) and the weighted release
        re-expands them as one batched expansion.  Either way the released
        vector is bit-identical.
    """

    def __init__(
        self,
        group: PowerOfTwoGroup,
        vector_length: int,
        threshold: int,
        authority: SigningAuthority,
        trusted_binary: bytes = b"papaya-tsa-v1",
        rng: np.random.Generator | None = None,
        cache_masks: bool = True,
    ):
        if vector_length < 1:
            raise ValueError("vector_length must be at least 1")
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.group = group
        self.vector_length = vector_length
        self.threshold = threshold
        self._authority = authority
        self.binary_hash = hash_binary(trusted_binary)
        self.params_hash = hash_params(
            group_bits=group.bits, vector_length=vector_length, threshold=threshold
        )
        self._rng = rng if rng is not None else np.random.default_rng()

        self._legs: dict[int, DHKeyPair] = {}  # private halves, enclave-only
        self._used: set[int] = set()
        self._channel_keys: dict[int, bytes] = {}  # check-in-completed legs
        self._cache_masks = cache_masks
        # Mask-row cache: a growing (capacity, l) buffer whose first
        # _row_count rows are this round's block-recovered masks; the
        # capacity is retained across rounds so steady-state epochs never
        # reallocate a cohort-sized buffer.
        self._rows: np.ndarray | None = None
        self._row_count = 0
        self._row_legs: list[int] = []
        # Cached-row ranges not yet folded into _mask_sum (block-path
        # contributions defer the fold: a weighted release never needs
        # it, an unweighted release folds them all in one reduction).
        self._pending_fold: list[tuple[int, int]] = []
        self._mask_sum = group.zeros(vector_length)
        self._seeds: dict[int, bytes] = {}  # per-leg seeds (for weighted release)
        self._processed = 0
        self._released = False
        self.round_index = 0

        self.boundary_bytes_in = 0
        self.boundary_bytes_out = 0

    # -- step 1: mint key-exchange legs ---------------------------------------

    def prepare_legs(self, count: int) -> list[KeyExchangeLeg]:
        """Mint ``count`` fresh DH legs with attestation quotes.

        The paper has the trusted party run "N (N > n) DH key exchange
        protocol instances" before clients arrive; calling this again
        mints additional legs with new indices (elastic supply).  Legs
        survive :meth:`begin_round` — minting is control-plane work the
        leg pool amortizes across buffer epochs.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        if self._released:
            raise ProtocolError("TSA already released its unmask; it is finished")
        legs = []
        for _ in range(count):
            index = len(self._legs)
            pair = DHKeyPair.generate(self._rng)
            payload = pair.public.to_bytes(256, "big")
            quote = self._authority.issue(self.binary_hash, self.params_hash, payload)
            self._legs[index] = pair
            legs.append(KeyExchangeLeg(index=index, quote=quote))
            self.boundary_bytes_out += len(payload) + len(quote.signature) + 64
        return legs

    # -- control plane: check-in-time DH completion --------------------------------

    def complete_leg(self, leg_index: int, completing_message: int) -> bool:
        """Derive and cache a leg's channel key from the completing message.

        The DH completion is the expensive modexp of the per-client path;
        forwarding it when the client *checks in* (rather than when its
        masked update arrives) moves that cost off the aggregation data
        plane.  Only the first completing message for a leg is honoured —
        a second attempt returns False and the cached key stands, matching
        the paper's "the trusted party will not process any further
        completing messages to the i'th initial message".

        The completing message crosses the boundary here (256 bytes), so
        a later :meth:`process_client` for the same leg meters only the
        sealed seed — total boundary traffic per client is unchanged.
        """
        self.boundary_bytes_in += 256
        if self._released:
            return False
        if leg_index not in self._legs or leg_index in self._used:
            return False
        if leg_index in self._channel_keys:
            return False
        try:
            self._channel_keys[leg_index] = shared_key(
                self._legs[leg_index].private, completing_message
            )
        except ValueError:
            return False
        return True

    def _resolve_key(self, leg_index: int, completing_message: int) -> bytes | None:
        """Channel key for a leg: cached from check-in, or derived now."""
        key = self._channel_keys.get(leg_index)
        if key is not None:
            return key
        try:
            return shared_key(self._legs[leg_index].private, completing_message)
        except ValueError:
            return None

    # -- step 6: per-client seed recovery ----------------------------------------

    def _admit(
        self, leg_index: int, completing_message: int, sealed_seed: SealedBox
    ) -> bytes | None:
        """Authenticate one submission; returns the recovered seed or None.

        Meters the boundary crossing and, on acceptance, marks the leg
        used and records its seed — the shared state machine of the
        scalar and block paths.
        """
        self.boundary_bytes_in += (
            (0 if leg_index in self._channel_keys else 256)
            + len(sealed_seed.ciphertext)
            + len(sealed_seed.tag)
            + 8
        )
        if self._released:
            return None  # "The trusted party ignores any further messages"
        if leg_index not in self._legs or leg_index in self._used:
            return None
        key = self._resolve_key(leg_index, completing_message)
        if key is None:
            return None
        try:
            seed = open_sealed(key, sealed_seed)
        except SealError:
            return None  # tampered in transit — exactly what the MAC is for
        if len(seed) != SEED_BYTES:
            return None
        # Mark the leg used *before* aggregating: no second completing
        # message for this initial message will ever be processed.
        self._used.add(leg_index)
        self._channel_keys.pop(leg_index, None)
        self._seeds[leg_index] = seed
        return seed

    def process_client(
        self, leg_index: int, completing_message: int, sealed_seed: SealedBox
    ) -> bool:
        """Recover one client's mask seed and fold its mask into the sum.

        Returns True when the contribution was accepted.  Rejections
        (unknown leg, reused leg, failed authentication, wrong seed size)
        return False — the paper's trusted party silently "ignores the
        update"; the boolean lets the untrusted server keep its masked sum
        consistent with the mask sum.

        This is the scalar per-arrival path: one seed expands and folds
        at a time, exactly as the pre-vectorization protocol did (the
        ``secagg`` sweep times it as the baseline).  With ``cache_masks``
        the expanded mask is additionally parked in the row cache so the
        weighted release still needs no re-expansion.
        """
        seed = self._admit(leg_index, completing_message, sealed_seed)
        if seed is None:
            return False
        mask = expand_mask(seed, self.vector_length, self.group)
        self._mask_sum = self.group.add(self._mask_sum, mask)
        if self._cache_masks:
            self._reserve_rows(1)
            self._rows[self._row_count] = mask
            self._row_legs.append(leg_index)
            self._row_count += 1
        self._processed += 1
        return True

    def process_client_block(
        self, requests: list[tuple[int, int, SealedBox]]
    ) -> list[bool]:
        """Recover K clients' seeds and fold their masks as one block.

        ``requests`` is a sequence of ``(leg_index, completing_message,
        sealed_seed)`` triples.  Semantically identical to calling
        :meth:`process_client` once per triple, in order — including
        per-submission rejection (a duplicate leg inside the block is
        rejected on its second appearance, exactly as sequentially) and
        boundary metering — but the accepted seeds expand into one
        contiguous mask block folded with a single fused reduction.
        """
        flags = [False] * len(requests)
        legs: list[int] = []
        seeds: list[bytes] = []
        for j, (leg_index, completing_message, sealed_seed) in enumerate(requests):
            seed = self._admit(leg_index, completing_message, sealed_seed)
            if seed is None:
                continue
            legs.append(leg_index)
            seeds.append(seed)
            flags[j] = True
        if seeds:
            self._fold_masks(legs, seeds)
            self._processed += len(seeds)
        return flags

    def _reserve_rows(self, k: int) -> None:
        """Ensure the row cache can take ``k`` more rows (capacity is
        retained across rounds, so steady-state epochs never reallocate)."""
        need = self._row_count + k
        if self._rows is None or self._rows.shape[0] < need:
            capacity = max(
                need, 2 * (0 if self._rows is None else self._rows.shape[0]), 8
            )
            grown = np.empty((capacity, self.vector_length), dtype=self.group.dtype)
            if self._row_count:
                grown[: self._row_count] = self._rows[: self._row_count]
            self._rows = grown

    def _fold_masks(self, legs: list[int], seeds: list[bytes]) -> None:
        """Expand accepted seeds as one block and fold it into the mask sum.

        With ``cache_masks`` the expansion lands directly in the row
        cache (retained until release so the weighted unmask needs no
        second expansion); otherwise a throwaway block is expanded.  The
        running sum is always maintained eagerly, so the unweighted
        release is a copy regardless of configuration.
        """
        k = len(seeds)
        if self._cache_masks:
            self._reserve_rows(k)
            expand_mask_block(
                seeds,
                self.vector_length,
                self.group,
                out=self._rows[self._row_count : self._row_count + k],
            )
            self._row_legs.extend(legs)
            self._pending_fold.append((self._row_count, self._row_count + k))
            self._row_count += k
        else:
            block = expand_mask_block(seeds, self.vector_length, self.group)
            self.group.add_into(self._mask_sum, self.group.sum_block(block))

    # -- step 7: one-shot unmask release ----------------------------------------

    @property
    def processed_count(self) -> int:
        """Clients whose seeds have been recovered this round."""
        return self._processed

    @property
    def released(self) -> bool:
        """Whether this round's unmasking vector has already been released."""
        return self._released

    def release_unmask(self, weights: dict[int, int] | None = None) -> np.ndarray:
        """Release ``Σ m_i`` (or ``Σ w_i·m_i``) exactly once per round.

        Parameters
        ----------
        weights:
            Optional integer weight per leg index — the weighted-
            aggregation extension used by FedBuff's staleness weighting:
            the server only ever learns the *weighted* aggregate.  Weights
            for legs that were never processed are rejected.

        Raises
        ------
        ProtocolError
            If fewer than ``threshold`` clients contributed, if the
            unmask was already released, or if weights reference unknown
            legs.
        """
        if self._released:
            raise ProtocolError("unmask already released; TSA ignores further requests")
        if self._processed < self.threshold:
            raise ProtocolError(
                f"only {self._processed} clients aggregated; threshold is {self.threshold}"
            )
        if weights is None:
            # Fold any block contributions whose rows were parked lazily.
            for start, stop in self._pending_fold:
                self.group.add_into(
                    self._mask_sum, self.group.sum_block(self._rows[start:stop])
                )
            self._pending_fold = []
            out = self._mask_sum.copy()
        else:
            unknown = set(weights) - set(self._seeds)
            if unknown:
                raise ProtocolError(f"weights reference unprocessed legs {sorted(unknown)}")
            out = self._weighted_mask_sum(weights)
        self._released = True
        self.boundary_bytes_out += out.nbytes
        return out

    def _weighted_mask_sum(self, weights: dict[int, int]) -> np.ndarray:
        """``Σ w_i·m_i`` via fused reductions (cached rows and/or one
        batched re-expansion) — bit-identical to the sequential
        expand-scale-add loop of the scalar protocol."""
        out = self.group.zeros(self.vector_length)
        cached = set(self._row_legs)
        if self._row_count:
            row_weights = [weights.get(leg, 0) for leg in self._row_legs]
            if any(row_weights):
                self.group.add_into(
                    out,
                    self.group.weighted_sum_block(
                        self._rows[: self._row_count], row_weights
                    ),
                )
        missing = [leg for leg in weights if leg not in cached and weights[leg]]
        if missing:
            block = expand_mask_block(
                [self._seeds[leg] for leg in missing], self.vector_length, self.group
            )
            self.group.add_into(
                out,
                self.group.weighted_sum_block(
                    block, [weights[leg] for leg in missing]
                ),
            )
        return out

    def release_unmask_partial(self, weights: dict[int, int]) -> np.ndarray:
        """Release ``Σ w_i·m_i`` to a :class:`TrustedShardReducer`.

        The hierarchical variant of :meth:`release_unmask`: a shard-local
        TSA hands its weighted mask sum to the *root reducer* of the same
        trust domain, which merges the shard partials and performs the
        single release that actually crosses the boundary.  Consequently
        this path

        * skips the local threshold check — no shard sees ``t`` clients
          on its own; the reducer enforces the *global* threshold over
          the summed processed counts before any partial is computed;
        * meters nothing — the partial never leaves the trust domain
          (the reducer meters the one merged vector that does);
        * still burns the one-shot release latch: after contributing a
          partial this TSA ignores all further messages until
          :meth:`begin_round`, exactly as after a direct release.
        """
        if self._released:
            raise ProtocolError("unmask already released; TSA ignores further requests")
        unknown = set(weights) - set(self._seeds)
        if unknown:
            raise ProtocolError(f"weights reference unprocessed legs {sorted(unknown)}")
        out = self._weighted_mask_sum(weights)
        self._released = True
        return out

    # -- round management ------------------------------------------------------

    def begin_round(self) -> None:
        """Re-key the aggregator for the next buffer epoch.

        Resets everything round-scoped — the running mask sum, recovered
        seeds, cached mask rows, the processed count and the one-shot
        release latch — while keeping the minted legs (used ones stay
        burned forever), cached check-in channel keys, the attestation
        identity, the row-cache capacity, and the cumulative boundary
        meters.  This is what lets one trusted party serve a long
        sequence of FedBuff epochs without re-standing-up authority, log,
        or key-exchange supply.
        """
        self._mask_sum = self.group.zeros(self.vector_length)
        self._seeds = {}
        self._row_count = 0
        self._row_legs = []
        self._pending_fold = []
        self._processed = 0
        self._released = False
        self.round_index += 1


class TrustedShardReducer:
    """Root of the hierarchical trust domain (Section 6.3 × Figure 16).

    When secure aggregation is sharded, each shard runs its own
    :class:`TrustedSecureAggregator` over its arrival slice, and this
    reducer — conceptually the root enclave of the same trust domain —
    combines the shard-local weighted mask sums into the *one* unmask
    vector that crosses the boundary per buffer epoch:

    * it enforces the **global** threshold: the summed processed counts
      of the participating shards must reach ``t`` before any partial is
      released (no shard-local count can, or needs to, reach ``t``);
    * it pulls each shard's partial via
      :meth:`TrustedSecureAggregator.release_unmask_partial` and merges
      them in **deterministic ascending-shard order** — group math mod
      2^bits is exact under wraparound, so the merged vector is
      bit-identical to the single TSA's weighted release for the same
      clients and weights, for any shard count and any routing;
    * it meters exactly one boundary crossing (``merged.nbytes`` out),
      matching the single plane's release traffic byte for byte, and is
      one-shot per round like the TSAs it fronts.
    """

    def __init__(self, group: PowerOfTwoGroup, vector_length: int, threshold: int):
        if vector_length < 1:
            raise ValueError("vector_length must be at least 1")
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.group = group
        self.vector_length = vector_length
        self.threshold = threshold
        self._released = False
        self.round_index = 0
        self.boundary_bytes_out = 0

    @property
    def released(self) -> bool:
        """Whether this round's merged unmask has already been released."""
        return self._released

    def release_merged_unmask(
        self,
        shards: list[tuple[int, TrustedSecureAggregator, dict[int, int]]],
    ) -> np.ndarray:
        """Merge shard partial unmasks and release the result exactly once.

        Parameters
        ----------
        shards:
            ``(shard_id, tsa, weights)`` triples in strictly ascending
            ``shard_id`` order — the deterministic merge order is part of
            the equivalence contract, so a caller handing shards out of
            order is a protocol violation, not something to silently fix.

        Raises
        ------
        ProtocolError
            If already released this round, if the shard ids are not
            strictly ascending, or if the participating shards' summed
            processed counts fall short of the global threshold.
        """
        if self._released:
            raise ProtocolError(
                "merged unmask already released; reducer ignores further requests"
            )
        ids = [sid for sid, _, _ in shards]
        if any(b <= a for a, b in zip(ids, ids[1:])):
            raise ProtocolError(
                f"shard partials must arrive in ascending shard order, got {ids}"
            )
        processed = sum(tsa.processed_count for _, tsa, _ in shards)
        if processed < self.threshold:
            raise ProtocolError(
                f"only {processed} clients aggregated across shards; "
                f"threshold is {self.threshold}"
            )
        merged = self.group.zeros(self.vector_length)
        for _, tsa, weights in shards:
            self.group.add_into(merged, tsa.release_unmask_partial(weights))
        self._released = True
        self.boundary_bytes_out += merged.nbytes
        return merged

    def merge_released_partials(
        self, partials: list[tuple[int, np.ndarray]], processed: int
    ) -> np.ndarray:
        """Merge *already-released* shard partials (process-executor path).

        When each shard's TSA lives on its own worker process, the
        partial unmask vectors arrive as raw group rows (written to a
        shared slab inside the trust domain) rather than as live
        :class:`TrustedSecureAggregator` objects.  The contract is
        otherwise :meth:`release_merged_unmask`'s: strictly ascending
        shard ids, the **global** threshold enforced over the summed
        processed counts the workers attest, deterministic ascending
        merge order, one-shot latch, and exactly one metered boundary
        crossing for the merged vector.

        Parameters
        ----------
        partials:
            ``(shard_id, partial_unmask)`` pairs in strictly ascending
            ``shard_id`` order.
        processed:
            Total clients processed across the participating shards this
            round.
        """
        if self._released:
            raise ProtocolError(
                "merged unmask already released; reducer ignores further requests"
            )
        ids = [sid for sid, _ in partials]
        if any(b <= a for a, b in zip(ids, ids[1:])):
            raise ProtocolError(
                f"shard partials must arrive in ascending shard order, got {ids}"
            )
        if processed < self.threshold:
            raise ProtocolError(
                f"only {processed} clients aggregated across shards; "
                f"threshold is {self.threshold}"
            )
        merged = self.group.zeros(self.vector_length)
        for _, partial in partials:
            self.group.add_into(merged, partial)
        self._released = True
        self.boundary_bytes_out += merged.nbytes
        return merged

    def begin_round(self) -> None:
        """Re-arm the one-shot release for the next buffer epoch."""
        self._released = False
        self.round_index += 1
