"""The Trusted Secure Aggregator — the protocol's trusted party.

In production this code runs inside an Intel SGX enclave (Appendix C);
here it is an in-process object whose *interface boundary* is explicit:
everything that crosses into it is metered (``boundary_bytes_in/out``), so
the Figure 6 boundary-traffic claim — ``O(K + m)`` for Asynchronous
SecAgg versus ``O(K·m)`` for naive TEE aggregation — is measured, not
assumed.

Responsibilities (Figure 16, trusted-party legs):

* mint ``N > n`` Diffie–Hellman key-exchange legs up front, each carried
  by an attestation quote binding the DH initial message to the enclave
  binary and the public protocol parameters (step 1);
* per client: recover the mask seed from the sealed box (rejecting any
  tampering), regenerate the mask, and fold it into a running sum — then
  never process that leg again (step 6);
* release the unmasking vector exactly once, and only if at least the
  threshold ``t`` of clients contributed (step 7), ignoring all further
  messages afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.secagg.attestation import Quote, SigningAuthority, hash_binary, hash_params
from repro.secagg.dh import DHKeyPair, shared_key
from repro.secagg.groups import PowerOfTwoGroup
from repro.secagg.prng import SEED_BYTES, expand_mask
from repro.secagg.sealed import SealedBox, SealError, open_sealed

__all__ = ["KeyExchangeLeg", "ProtocolError", "TrustedSecureAggregator"]


class ProtocolError(RuntimeError):
    """A party violated the protocol state machine."""


@dataclass(frozen=True)
class KeyExchangeLeg:
    """One pre-minted DH leg: index + quote covering the initial message.

    The DH initial message (the TSA's public value) travels as the quote
    payload so the untrusted server cannot substitute its own key — doing
    so would break the quote signature.
    """

    index: int
    quote: Quote

    @property
    def initial_message(self) -> int:
        """The TSA's DH public value for this leg."""
        return int.from_bytes(self.quote.payload, "big")


class TrustedSecureAggregator:
    """The trusted party of Figure 16, with an explicit metered boundary.

    Parameters
    ----------
    group:
        The finite Abelian group G (public parameter).
    vector_length:
        ℓ — elements per client update (public parameter).
    threshold:
        t — minimum clients aggregated before the unmask may be released
        (public parameter).
    authority:
        Root of trust used to sign attestation quotes.
    trusted_binary:
        The "code of the trusted party" — hashed into every quote; in the
        simulation an arbitrary byte string published ahead of time.
    rng:
        Randomness stream for DH key generation.
    """

    def __init__(
        self,
        group: PowerOfTwoGroup,
        vector_length: int,
        threshold: int,
        authority: SigningAuthority,
        trusted_binary: bytes = b"papaya-tsa-v1",
        rng: np.random.Generator | None = None,
    ):
        if vector_length < 1:
            raise ValueError("vector_length must be at least 1")
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.group = group
        self.vector_length = vector_length
        self.threshold = threshold
        self._authority = authority
        self.binary_hash = hash_binary(trusted_binary)
        self.params_hash = hash_params(
            group_bits=group.bits, vector_length=vector_length, threshold=threshold
        )
        self._rng = rng if rng is not None else np.random.default_rng()

        self._legs: dict[int, DHKeyPair] = {}  # private halves, enclave-only
        self._used: set[int] = set()
        self._mask_sum = group.zeros(vector_length)
        self._seeds: dict[int, bytes] = {}  # per-leg seeds (for weighted release)
        self._processed = 0
        self._released = False

        self.boundary_bytes_in = 0
        self.boundary_bytes_out = 0

    # -- step 1: mint key-exchange legs ---------------------------------------

    def prepare_legs(self, count: int) -> list[KeyExchangeLeg]:
        """Mint ``count`` fresh DH legs with attestation quotes.

        The paper has the trusted party run "N (N > n) DH key exchange
        protocol instances" before clients arrive; calling this again
        mints additional legs with new indices (elastic supply).
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        if self._released:
            raise ProtocolError("TSA already released its unmask; it is finished")
        legs = []
        for _ in range(count):
            index = len(self._legs)
            pair = DHKeyPair.generate(self._rng)
            payload = pair.public.to_bytes(256, "big")
            quote = self._authority.issue(self.binary_hash, self.params_hash, payload)
            self._legs[index] = pair
            legs.append(KeyExchangeLeg(index=index, quote=quote))
            self.boundary_bytes_out += len(payload) + len(quote.signature) + 64
        return legs

    # -- step 6: per-client seed recovery ----------------------------------------

    def process_client(
        self, leg_index: int, completing_message: int, sealed_seed: SealedBox
    ) -> bool:
        """Recover one client's mask seed and fold its mask into the sum.

        Returns True when the contribution was accepted.  Rejections
        (unknown leg, reused leg, failed authentication, wrong seed size)
        return False — the paper's trusted party silently "ignores the
        update"; the boolean lets the untrusted server keep its masked sum
        consistent with the mask sum.
        """
        self.boundary_bytes_in += 256 + len(sealed_seed.ciphertext) + len(sealed_seed.tag) + 8
        if self._released:
            return False  # "The trusted party ignores any further messages"
        if leg_index not in self._legs or leg_index in self._used:
            return False
        try:
            key = shared_key(self._legs[leg_index].private, completing_message)
        except ValueError:
            return False
        try:
            seed = open_sealed(key, sealed_seed)
        except SealError:
            return False  # tampered in transit — exactly what the MAC is for
        if len(seed) != SEED_BYTES:
            return False
        # Mark the leg used *before* aggregating: no second completing
        # message for this initial message will ever be processed.
        self._used.add(leg_index)
        self._seeds[leg_index] = seed
        mask = expand_mask(seed, self.vector_length, self.group)
        self._mask_sum = self.group.add(self._mask_sum, mask)
        self._processed += 1
        return True

    # -- step 7: one-shot unmask release ----------------------------------------

    @property
    def processed_count(self) -> int:
        """Clients whose seeds have been recovered so far."""
        return self._processed

    @property
    def released(self) -> bool:
        """Whether the unmasking vector has already been released."""
        return self._released

    def release_unmask(self, weights: dict[int, int] | None = None) -> np.ndarray:
        """Release ``Σ m_i`` (or ``Σ w_i·m_i``) exactly once.

        Parameters
        ----------
        weights:
            Optional integer weight per leg index — the weighted-
            aggregation extension used by FedBuff's staleness weighting:
            the server only ever learns the *weighted* aggregate.  Weights
            for legs that were never processed are rejected.

        Raises
        ------
        ProtocolError
            If fewer than ``threshold`` clients contributed, if the
            unmask was already released, or if weights reference unknown
            legs.
        """
        if self._released:
            raise ProtocolError("unmask already released; TSA ignores further requests")
        if self._processed < self.threshold:
            raise ProtocolError(
                f"only {self._processed} clients aggregated; threshold is {self.threshold}"
            )
        if weights is None:
            out = self._mask_sum.copy()
        else:
            unknown = set(weights) - set(self._seeds)
            if unknown:
                raise ProtocolError(f"weights reference unprocessed legs {sorted(unknown)}")
            out = self.group.zeros(self.vector_length)
            for leg_index, w in weights.items():
                mask = expand_mask(self._seeds[leg_index], self.vector_length, self.group)
                out = self.group.add(out, self.group.scale(mask, w))
        self._released = True
        self.boundary_bytes_out += out.nbytes
        return out
