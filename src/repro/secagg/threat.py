"""Adversary harness for the secure-aggregation threat-model tests.

The paper's threat model (Appendix B.1): "A malicious adversary may
corrupt the server and [a] number of clients."  The helpers here implement
the attacks that the protocol must — and does — survive: tampering with
sealed seeds, replaying completing messages, substituting enclave keys,
and trying to read individual updates off the wire.  The tests in
``tests/test_secagg_threat.py`` assert every one of them fails.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.secagg.client import ClientSubmission
from repro.secagg.groups import PowerOfTwoGroup

__all__ = [
    "flip_sealed_ciphertext_bit",
    "flip_tag_bit",
    "bump_sequence_number",
    "masked_update_uniformity_pvalue",
]


def flip_sealed_ciphertext_bit(sub: ClientSubmission, bit: int = 0) -> ClientSubmission:
    """Server-side tampering: flip one bit of the sealed seed ciphertext."""
    ct = bytearray(sub.sealed_seed.ciphertext)
    ct[bit // 8] ^= 1 << (bit % 8)
    from dataclasses import replace

    return replace(sub, sealed_seed=sub.sealed_seed.tampered_with(ciphertext=bytes(ct)))


def flip_tag_bit(sub: ClientSubmission, bit: int = 0) -> ClientSubmission:
    """Server-side tampering: corrupt the MAC tag itself."""
    tag = bytearray(sub.sealed_seed.tag)
    tag[bit // 8] ^= 1 << (bit % 8)
    from dataclasses import replace

    return replace(sub, sealed_seed=sub.sealed_seed.tampered_with(tag=bytes(tag)))


def bump_sequence_number(sub: ClientSubmission) -> ClientSubmission:
    """Replay attempt: present the sealed box under a different sequence."""
    from dataclasses import replace

    return replace(sub, sealed_seed=sub.sealed_seed.tampered_with(seq=sub.sealed_seed.seq + 1))


def masked_update_uniformity_pvalue(
    masked: np.ndarray, group: PowerOfTwoGroup
) -> float:
    """KS-test p-value that a masked update is uniform over the group.

    The one-time-pad argument says ``v + m`` is *exactly* uniform for
    uniform ``m`` regardless of ``v`` — so an honest-but-curious server
    staring at a masked update sees noise.  A small p-value would indicate
    information leaking; the tests require this to stay comfortably high
    for structured (highly non-uniform) inputs.
    """
    u = masked.astype(np.float64) / float(group.order)
    return float(stats.kstest(u, "uniform").pvalue)
