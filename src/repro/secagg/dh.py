"""Diffie–Hellman key exchange between clients and the trusted party.

Appendix A.1: the protocol "consists of an initial message from one party
(server) and a completing message as a response from the other one
(client).  The server can prepare the initial messages in advance, without
knowing the identities of the clients."  That pre-computability is what
lets the TSA mint ``N > n`` key-exchange legs up front so clients can join
asynchronously, one round trip each.

This is real finite-field Diffie–Hellman over the RFC 3526 2048-bit MODP
group (group 14) with short 256-bit exponents and an SHA-256 KDF — the
textbook construction, not a mock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = ["DH_PRIME", "DH_GENERATOR", "DHKeyPair", "shared_key"]

# RFC 3526, 2048-bit MODP group (id 14).
DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
DH_GENERATOR = 2

_EXPONENT_BITS = 256  # short-exponent DH: 2x the 128-bit security target


def _random_exponent(rng: np.random.Generator) -> int:
    """A uniformly random private exponent of ``_EXPONENT_BITS`` bits."""
    words = rng.integers(0, 2**64, size=_EXPONENT_BITS // 64, dtype=np.uint64)
    # First-drawn word is most significant (the historical fold order);
    # the explicit little-endian dtype keeps the bytes platform-stable.
    value = int.from_bytes(words.astype("<u8")[::-1].tobytes(), "little")
    return value | (1 << (_EXPONENT_BITS - 1))  # force full bit length


@dataclass(frozen=True)
class DHKeyPair:
    """One party's DH key pair.

    ``public`` is what goes on the wire (the "initial message" when the
    TSA generates it; the "completing message" when a client responds).
    """

    private: int
    public: int

    @classmethod
    def generate(cls, rng: np.random.Generator) -> "DHKeyPair":
        """Generate a key pair from the given randomness stream."""
        priv = _random_exponent(rng)
        return cls(private=priv, public=pow(DH_GENERATOR, priv, DH_PRIME))

    def __repr__(self) -> str:  # never print the private exponent
        return f"DHKeyPair(public={hex(self.public)[:18]}…)"


def shared_key(private: int, peer_public: int) -> bytes:
    """Derive the 32-byte shared channel key: SHA-256(g^{ab} mod p).

    Raises
    ------
    ValueError
        If the peer's public value is outside (1, p-1) — the standard
        small-subgroup / degenerate-key check.
    """
    if not (1 < peer_public < DH_PRIME - 1):
        raise ValueError("invalid DH public value")
    secret = pow(peer_public, private, DH_PRIME)
    return hashlib.sha256(secret.to_bytes((DH_PRIME.bit_length() + 7) // 8, "big")).digest()
