"""Authenticated encryption of the mask seed under the DH channel key.

Protocol step 4 (Figure 16): the client sends ``d_i := Enc_{k_i}(s_i)``
where "Enc employs standard techniques like MAC and sequential number to
detect any tampered encryption."  This module provides exactly that —
encrypt-then-MAC with an HMAC-SHA256 keystream (CTR-style) and a sequence
number bound into the tag, built from the standard library.

The tamper-detection property is what Appendix C relies on: "the server
cannot successfully tamper with the data that is meant to be sent into the
enclave ... because the decryption fails if any of them is modified."
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

__all__ = ["SealedBox", "seal", "open_sealed", "SealError"]


class SealError(ValueError):
    """Raised when a sealed box fails authentication."""


@dataclass(frozen=True)
class SealedBox:
    """Ciphertext + authentication tag + anti-replay sequence number."""

    ciphertext: bytes
    tag: bytes
    seq: int

    def tampered_with(self, **changes) -> "SealedBox":
        """Return a modified copy — used by the adversary test harness."""
        from dataclasses import replace

        return replace(self, **changes)


def _keystream(key: bytes, seq: int, length: int) -> bytes:
    """HMAC-SHA256 in counter mode: block_i = HMAC(key, seq || i)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hmac.new(
            key, seq.to_bytes(8, "big") + counter.to_bytes(8, "big"), hashlib.sha256
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def _tag(key: bytes, ciphertext: bytes, seq: int) -> bytes:
    return hmac.new(
        key, b"tag" + seq.to_bytes(8, "big") + ciphertext, hashlib.sha256
    ).digest()


def seal(key: bytes, plaintext: bytes, seq: int = 0) -> SealedBox:
    """Encrypt-then-MAC ``plaintext`` under ``key``.

    Parameters
    ----------
    key:
        32-byte channel key from :func:`repro.secagg.dh.shared_key`.
    plaintext:
        The mask seed (or any payload).
    seq:
        Sequence number; bound into both keystream and tag so replays
        under a different sequence fail.
    """
    if len(key) < 16:
        raise ValueError("key too short")
    if seq < 0:
        raise ValueError("seq must be non-negative")
    stream = _keystream(key, seq, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    return SealedBox(ciphertext=ciphertext, tag=_tag(key, ciphertext, seq), seq=seq)


def open_sealed(key: bytes, box: SealedBox) -> bytes:
    """Authenticate and decrypt a sealed box.

    Raises
    ------
    SealError
        If the tag does not verify (wrong key, modified ciphertext, or
        altered sequence number).
    """
    expected = _tag(key, box.ciphertext, box.seq)
    if not hmac.compare_digest(expected, box.tag):
        raise SealError("sealed box failed authentication")
    stream = _keystream(key, box.seq, len(box.ciphertext))
    return bytes(c ^ s for c, s in zip(box.ciphertext, stream))
