"""Seed-to-mask expansion: a 16-byte seed becomes a model-sized pad.

This is the trick that makes the paper's Asynchronous SecAgg scale
(Section 5): "The random seed, usually 16 bytes shared between each client
and the TSA, allows the two parties to share an as-large-as-the-model mask
at a constant cost."  Client and trusted party run the same expansion, so
only the seed ever crosses the TEE boundary.

The expansion uses the Philox 4x64 counter-based generator keyed by the
seed — deterministic, platform-stable, and independent streams for
distinct seeds (a production system would use AES-CTR or ChaCha20; Philox
is the same counter-mode construction with a non-cryptographic round
function, which preserves every protocol behaviour we measure).
"""

from __future__ import annotations

import secrets

import numpy as np

from repro.secagg.groups import PowerOfTwoGroup

__all__ = ["SEED_BYTES", "generate_seed", "expand_mask"]

SEED_BYTES = 16  # the paper's "usually 16 bytes"


def generate_seed(rng: np.random.Generator | None = None) -> bytes:
    """Draw a fresh random mask seed.

    With ``rng`` the draw is deterministic (simulations/tests); without,
    it uses the OS CSPRNG as a real client would.
    """
    if rng is None:
        return secrets.token_bytes(SEED_BYTES)
    return bytes(rng.integers(0, 256, size=SEED_BYTES, dtype=np.uint8).tobytes())


def expand_mask(seed: bytes, length: int, group: PowerOfTwoGroup) -> np.ndarray:
    """Expand a seed into a uniformly random group vector of ``length``.

    The same ``(seed, length, group)`` always produces the same mask —
    this determinism is the entire correctness basis of the protocol: the
    TSA regenerates exactly the pad the client applied.
    """
    if len(seed) != SEED_BYTES:
        raise ValueError(f"seed must be {SEED_BYTES} bytes, got {len(seed)}")
    if length < 0:
        raise ValueError("length must be non-negative")
    key = int.from_bytes(seed, "little")
    gen = np.random.Generator(np.random.Philox(key=key))
    return group.random(gen, length)
