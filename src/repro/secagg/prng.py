"""Seed-to-mask expansion: a 16-byte seed becomes a model-sized pad.

This is the trick that makes the paper's Asynchronous SecAgg scale
(Section 5): "The random seed, usually 16 bytes shared between each client
and the TSA, allows the two parties to share an as-large-as-the-model mask
at a constant cost."  Client and trusted party run the same expansion, so
only the seed ever crosses the TEE boundary.

The expansion uses the Philox 4x64 counter-based generator keyed by the
seed — deterministic, platform-stable, and independent streams for
distinct seeds (a production system would use AES-CTR or ChaCha20; Philox
is the same counter-mode construction with a non-cryptographic round
function, which preserves every protocol behaviour we measure).
"""

from __future__ import annotations

import secrets

import numpy as np

from repro.secagg.groups import PowerOfTwoGroup

__all__ = ["SEED_BYTES", "generate_seed", "expand_mask", "expand_mask_block"]

SEED_BYTES = 16  # the paper's "usually 16 bytes"


def generate_seed(rng: np.random.Generator | None = None) -> bytes:
    """Draw a fresh random mask seed.

    With ``rng`` the draw is deterministic (simulations/tests); without,
    it uses the OS CSPRNG as a real client would.
    """
    if rng is None:
        return secrets.token_bytes(SEED_BYTES)
    return bytes(rng.integers(0, 256, size=SEED_BYTES, dtype=np.uint8).tobytes())


def expand_mask(seed: bytes, length: int, group: PowerOfTwoGroup) -> np.ndarray:
    """Expand a seed into a uniformly random group vector of ``length``.

    The same ``(seed, length, group)`` always produces the same mask —
    this determinism is the entire correctness basis of the protocol: the
    TSA regenerates exactly the pad the client applied.
    """
    if len(seed) != SEED_BYTES:
        raise ValueError(f"seed must be {SEED_BYTES} bytes, got {len(seed)}")
    if length < 0:
        raise ValueError("length must be non-negative")
    key = int.from_bytes(seed, "little")
    gen = np.random.Generator(np.random.Philox(key=key))
    return group.random(gen, length)


def expand_mask_block(
    seeds,
    length: int,
    group: PowerOfTwoGroup,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Expand K seeds into a stacked ``(K, length)`` mask block.

    Row ``i`` is bit-identical to ``expand_mask(seeds[i], length, group)``
    — each seed keys its own Philox stream, so the block is the same K
    independent masks, just materialized into one contiguous buffer that
    the server/TSA data plane can fold with single fused reductions.

    Parameters
    ----------
    seeds:
        Sequence of ``SEED_BYTES``-byte seeds.
    length:
        Elements per mask.
    group:
        Target group (fixes the output dtype).
    out:
        Optional preallocated ``(K, length)`` buffer of the group dtype
        (may be a view into a larger row cache); reusing it across calls
        avoids re-paging a model-sized allocation per block.
    """
    seeds = list(seeds)
    if length < 0:
        raise ValueError("length must be non-negative")
    for seed in seeds:
        if len(seed) != SEED_BYTES:
            raise ValueError(
                f"seed must be {SEED_BYTES} bytes, got {len(seed)}"
            )
    k = len(seeds)
    if out is None:
        out = np.empty((k, length), dtype=group.dtype)
    elif out.shape != (k, length) or out.dtype != group.dtype:
        raise ValueError(
            f"out must be a ({k}, {length}) array of {group.dtype}, "
            f"got shape {out.shape} dtype {out.dtype}"
        )
    full_width = group.bits == 64 and group.dtype == np.dtype(np.uint64)
    for i, seed in enumerate(seeds):
        key = int.from_bytes(seed, "little")
        if full_width:
            # Fast path: for the full-width group, ``group.random`` draws
            # the generator's raw 64-bit words verbatim
            # (``integers(0, 2**64)`` with a power-of-two range is the
            # identity bound), so ``random_raw`` yields the identical
            # stream without a Generator wrapper or a reduction pass.
            out[i] = np.random.Philox(key=key).random_raw(length)
        else:
            gen = np.random.Generator(np.random.Philox(key=key))
            out[i] = group.random(gen, length)
    return out
