"""Simulated remote attestation (Appendix C.1).

In production the trusted party is an Intel SGX enclave whose *attestation
quote* — signed by Intel and verifiable against Intel's collateral —
proves (a) the quote comes from a legitimate enclave, (b) the enclave runs
a specific binary (by hash), and (c) the enclave was launched with
specific public parameters (hash bound as custom payload).

We simulate the hardware root of trust with a :class:`SigningAuthority`
holding a secret MAC key (standing in for Intel's signing infrastructure):
forging a quote without the key is infeasible, which is precisely the SGX
assumption the paper lists ("It is infeasible to forge an attestation
quote ... that can be verified against Intel's collateral").  Everything
downstream — what clients check before trusting the TSA, and what happens
when a check fails — follows the paper's Figure 19 steps.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

__all__ = [
    "SigningAuthority",
    "Quote",
    "AttestationError",
    "hash_binary",
    "hash_params",
]


class AttestationError(ValueError):
    """A quote failed verification."""


def hash_binary(binary: bytes) -> bytes:
    """Measurement of a trusted binary (stands in for SGX MRENCLAVE)."""
    return hashlib.sha256(b"binary|" + binary).digest()


def hash_params(**params) -> bytes:
    """Hash of the public protocol parameters bound into a quote.

    Clients verify that "the hash of the public parameters provided by
    the server matches the hash included in the attestation quote"
    (Figure 19, step 3b) — this function defines that hash canonically.
    """
    h = hashlib.sha256()
    for key in sorted(params):
        h.update(key.encode())
        h.update(b"=")
        h.update(repr(params[key]).encode())
        h.update(b";")
    return h.digest()


@dataclass(frozen=True)
class Quote:
    """An attestation quote covering a payload.

    Attributes
    ----------
    binary_hash:
        Measurement of the code running in the enclave.
    params_hash:
        Hash of the protocol's public parameters.
    payload:
        Free bytes covered by the quote — the protocol puts the DH
        initial message here so it cannot be swapped by the server.
    signature:
        Authority MAC over everything above.
    """

    binary_hash: bytes
    params_hash: bytes
    payload: bytes
    signature: bytes


class SigningAuthority:
    """Root of trust: issues and verifies quote signatures.

    The private half (:meth:`sign`) lives with the hardware; verification
    (:meth:`verify`) is available to everyone.  A second authority with a
    different key cannot produce acceptable quotes — covered by the
    adversary tests.
    """

    def __init__(self, secret: bytes | None = None):
        self._secret = secret if secret is not None else b"intel-collateral-sim"

    def _mac(self, binary_hash: bytes, params_hash: bytes, payload: bytes) -> bytes:
        return hmac.new(
            self._secret, b"|".join((binary_hash, params_hash, payload)), hashlib.sha256
        ).digest()

    def issue(self, binary_hash: bytes, params_hash: bytes, payload: bytes) -> Quote:
        """Sign a quote (only the enclave's hardware can do this)."""
        return Quote(
            binary_hash=binary_hash,
            params_hash=params_hash,
            payload=payload,
            signature=self._mac(binary_hash, params_hash, payload),
        )

    def verify(
        self,
        quote: Quote,
        expected_binary_hash: bytes,
        expected_params_hash: bytes,
    ) -> None:
        """Run the client-side checks of Figure 19 step 3.

        Raises
        ------
        AttestationError
            If the signature is invalid, the binary measurement does not
            match the published hash, or the parameter hash differs from
            what the server claimed.
        """
        if not hmac.compare_digest(
            quote.signature, self._mac(quote.binary_hash, quote.params_hash, quote.payload)
        ):
            raise AttestationError("quote signature invalid")
        if not hmac.compare_digest(quote.binary_hash, expected_binary_hash):
            raise AttestationError("enclave binary hash does not match published hash")
        if not hmac.compare_digest(quote.params_hash, expected_params_hash):
            raise AttestationError("public parameter hash mismatch")
