"""Append-only verifiable log (Merkle tree) for trusted-binary updates.

Appendix C.2: remote attestation pins the client to a hardcoded binary
hash, which would make enclave updates require client updates.  The paper
instead logs every released trusted binary in a *verifiable log* — an
append-only Merkle tree à la Certificate Transparency — so clients check
an **inclusion proof** ("this binary is in the log") and auditors check
**consistency proofs** ("the log only ever grew") against shared
snapshots.

Hashing follows RFC 6962: leaves are ``H(0x00 || entry)``, interior nodes
``H(0x01 || left || right)``, and trees of non-power-of-two size split at
the largest power of two smaller than the size.  Proof verification is
self-contained — it needs only the proof, the root(s), and sizes — which
is what lets a client audit the server without trusting it.
"""

from __future__ import annotations

import hashlib

__all__ = ["VerifiableLog", "leaf_hash", "node_hash", "verify_inclusion", "verify_consistency"]


def leaf_hash(entry: bytes) -> bytes:
    """RFC 6962 leaf hash with domain separation byte 0x00."""
    return hashlib.sha256(b"\x00" + entry).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    """RFC 6962 interior-node hash with domain separation byte 0x01."""
    return hashlib.sha256(b"\x01" + left + right).digest()


def _largest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than ``n`` (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


class VerifiableLog:
    """Append-only Merkle log with inclusion and consistency proofs."""

    def __init__(self) -> None:
        self._leaves: list[bytes] = []  # leaf hashes
        self._entries: list[bytes] = []  # raw entries (the log is public)

    # -- mutation --------------------------------------------------------------

    def append(self, entry: bytes) -> int:
        """Append an entry; returns its index.  Entries are never removed."""
        self._entries.append(entry)
        self._leaves.append(leaf_hash(entry))
        return len(self._leaves) - 1

    # -- views --------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of entries logged so far."""
        return len(self._leaves)

    def entry(self, index: int) -> bytes:
        """Raw entry at ``index`` (auditors fetch these to rebuild binaries)."""
        return self._entries[index]

    def root(self, size: int | None = None) -> bytes:
        """Merkle tree head over the first ``size`` entries (default: all).

        The root over zero entries is the hash of the empty string, per
        RFC 6962.
        """
        size = self.size if size is None else size
        if not (0 <= size <= self.size):
            raise ValueError(f"size {size} out of range [0, {self.size}]")
        if size == 0:
            return hashlib.sha256(b"").digest()
        return self._subtree_root(0, size)

    def _subtree_root(self, start: int, size: int) -> bytes:
        if size == 1:
            return self._leaves[start]
        k = _largest_power_of_two_below(size)
        return node_hash(
            self._subtree_root(start, k), self._subtree_root(start + k, size - k)
        )

    # -- proofs --------------------------------------------------------------

    def inclusion_proof(self, index: int, size: int | None = None) -> list[bytes]:
        """Audit path proving entry ``index`` is in the first ``size`` entries."""
        size = self.size if size is None else size
        if not (0 <= index < size <= self.size):
            raise ValueError(f"need 0 <= index < size <= log size, got {index}, {size}")
        return self._path(index, 0, size)

    def _path(self, index: int, start: int, size: int) -> list[bytes]:
        if size == 1:
            return []
        k = _largest_power_of_two_below(size)
        if index < k:
            return self._path(index, start, k) + [self._subtree_root(start + k, size - k)]
        return self._path(index - k, start + k, size - k) + [self._subtree_root(start, k)]

    def consistency_proof(self, old_size: int, new_size: int | None = None) -> list[bytes]:
        """Proof that the first ``old_size`` entries are a prefix of the
        first ``new_size`` entries (RFC 6962 §2.1.2)."""
        new_size = self.size if new_size is None else new_size
        if not (0 <= old_size <= new_size <= self.size):
            raise ValueError("need 0 <= old_size <= new_size <= log size")
        if old_size == 0 or old_size == new_size:
            return []
        return self._subproof(old_size, 0, new_size, True)

    def _subproof(self, m: int, start: int, size: int, complete: bool) -> list[bytes]:
        if m == size:
            return [] if complete else [self._subtree_root(start, size)]
        k = _largest_power_of_two_below(size)
        if m <= k:
            return self._subproof(m, start, k, complete) + [
                self._subtree_root(start + k, size - k)
            ]
        return self._subproof(m - k, start + k, size - k, False) + [
            self._subtree_root(start, k)
        ]


def verify_inclusion(
    entry: bytes, index: int, size: int, proof: list[bytes], root: bytes
) -> bool:
    """Client-side inclusion check (RFC 9162 §2.1.3.2) — no log access.

    Returns True iff ``entry`` is provably the leaf at ``index`` of the
    tree with head ``root`` over ``size`` entries.
    """
    if not (0 <= index < size):
        return False
    fn, sn = index, size - 1
    r = leaf_hash(entry)
    for p in proof:
        if sn == 0:
            return False
        if (fn & 1) or (fn == sn):
            r = node_hash(p, r)
            if not (fn & 1):
                while True:
                    fn >>= 1
                    sn >>= 1
                    if (fn & 1) or fn == 0:
                        break
        else:
            r = node_hash(r, p)
        fn >>= 1
        sn >>= 1
    return sn == 0 and r == root


def verify_consistency(
    old_size: int,
    new_size: int,
    old_root: bytes,
    new_root: bytes,
    proof: list[bytes],
) -> bool:
    """Auditor-side append-only check (RFC 6962 §2.1.4.2) — no log access.

    Returns True iff the tree with head ``new_root`` over ``new_size``
    entries extends the tree with head ``old_root`` over ``old_size``.
    """
    if old_size > new_size:
        return False
    if old_size == new_size:
        return not proof and old_root == new_root
    if old_size == 0:
        # The empty tree is a prefix of everything; no proof required.
        return not proof
    node, last_node = old_size - 1, new_size - 1
    while node & 1:
        node >>= 1
        last_node >>= 1
    it = iter(proof)
    try:
        new_hash = old_hash = next(it) if node else old_root
        while node:
            if node & 1:
                p = next(it)
                old_hash = node_hash(p, old_hash)
                new_hash = node_hash(p, new_hash)
            elif node < last_node:
                new_hash = node_hash(new_hash, next(it))
            node >>= 1
            last_node >>= 1
        while last_node:
            new_hash = node_hash(new_hash, next(it))
            last_node >>= 1
    except StopIteration:
        return False
    if next(it, None) is not None:  # leftover proof elements
        return False
    return old_hash == old_root and new_hash == new_root
