"""The untrusted server side of Asynchronous SecAgg (Figure 16 steps 2, 5, 7–8).

The server is honest-but-curious: it follows the protocol but sees
everything that crosses it.  It therefore only ever handles *masked*
updates — the incremental aggregation property that makes the protocol
compatible with FedBuff: each arriving masked update is folded into a
running group sum immediately, no cohort required.

The data plane is vectorized alongside the TSA's: :meth:`submit_block`
forwards K submissions in one TSA round trip, and the finalize folds the
accepted masked updates with allocation-free in-place multiply-accumulate
passes instead of K allocate-scale-and-add round trips.  Both paths
produce bit-identical aggregates (group math is exact mod 2^bits).
"""

from __future__ import annotations

import numpy as np

from repro.secagg.client import ClientSubmission
from repro.secagg.fixedpoint import FixedPointCodec
from repro.secagg.tsa import KeyExchangeLeg, ProtocolError, TrustedSecureAggregator

__all__ = ["LegPool", "SecAggServer"]


class LegPool:
    """Pre-minted DH key-exchange legs, refillable in blocks.

    The paper's trusted party prepares "N (N > n) DH key exchange
    protocol instances" ahead of client arrivals; minting one costs a
    2048-bit modexp, so the pool mints ``block_size`` at a time against a
    TSA and hands legs out one by one.  A pool survives
    :meth:`~repro.secagg.tsa.TrustedSecureAggregator.begin_round`, so the
    system layer shares one across buffer epochs — a steady-state epoch
    consumes pre-minted supply, and a refill is one amortized block round
    trip, not K individual mints.  :class:`SecAggServer` also uses one
    internally for its local leg stock.

    Parameters
    ----------
    tsa:
        The trusted party that owns the legs' private halves.
    block_size:
        Legs minted per refill.
    prefill:
        Legs to mint immediately (default: one block).
    """

    def __init__(
        self,
        tsa: TrustedSecureAggregator,
        block_size: int = 64,
        prefill: int | None = None,
    ):
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.tsa = tsa
        self.block_size = block_size
        self.minted = 0
        self._legs: list[KeyExchangeLeg] = []
        prefill = block_size if prefill is None else prefill
        if prefill:
            self._legs = list(reversed(tsa.prepare_legs(prefill)))
            self.minted += prefill

    @property
    def available(self) -> int:
        """Pre-minted legs ready to hand out."""
        return len(self._legs)

    def take(self) -> KeyExchangeLeg:
        """Pop one fresh leg, refilling by one block when the pool is dry."""
        if not self._legs:
            self._legs = list(reversed(self.tsa.prepare_legs(self.block_size)))
            self.minted += self.block_size
        return self._legs.pop()


class SecAggServer:
    """Aggregates masked updates; orchestrates legs and the final unmask.

    Parameters
    ----------
    tsa:
        The trusted party (in production: reached over an attested
        channel; here: a direct reference whose boundary is metered).
    codec:
        Fixed-point codec shared by all parties.
    initial_legs:
        How many DH legs to pre-mint (the paper's ``N > n``).
    refill_size:
        How many legs to mint when the supply runs dry.  Defaults to
        ``initial_legs`` so a cohort of K clients pays one refill round
        trip, not ``ceil(K / 16)`` of them.
    leg_pool:
        Optional external :class:`LegPool` (shared across buffer epochs
        by the system layer).  When given, the server mints nothing
        itself; otherwise it runs a private pool sized by
        ``initial_legs``/``refill_size``.
    """

    def __init__(
        self,
        tsa: TrustedSecureAggregator,
        codec: FixedPointCodec,
        initial_legs: int = 16,
        refill_size: int | None = None,
        leg_pool: LegPool | None = None,
    ):
        if refill_size is not None and refill_size < 1:
            raise ValueError("refill_size must be at least 1")
        self.tsa = tsa
        self.codec = codec
        self.refill_size = refill_size if refill_size is not None else max(1, initial_legs)
        self._pool = (
            leg_pool
            if leg_pool is not None
            else LegPool(tsa, block_size=self.refill_size, prefill=initial_legs)
        )
        self._masked_sum = codec.group.zeros(tsa.vector_length)
        self._accepted: list[ClientSubmission] = []
        # Block submissions defer their fold to finalize time (one
        # in-place pass over the retained masked vectors); scalar
        # submissions stay on the eager running sum.
        self._block_accepted: list[ClientSubmission] = []
        self._finalized = False

    def begin_round(self) -> None:
        """Reset for the next buffer epoch, keeping warm state.

        Clears everything round-scoped — the running masked sum, accepted
        submissions, the finalized latch — while retaining the leg supply
        (pool or local stock), mirroring
        :meth:`TrustedSecureAggregator.begin_round` so a long-lived
        server pair serves a sequence of epochs.  The caller re-keys the
        TSA separately.
        """
        self._masked_sum = self.codec.group.zeros(self.tsa.vector_length)
        self._accepted = []
        self._block_accepted = []
        self._finalized = False

    # -- step 2: hand a leg to a checking-in client -------------------------------

    def assign_leg(self) -> KeyExchangeLeg:
        """Hand out a fresh, never-used key-exchange leg.

        The pool mints more on demand (``refill_size`` at a time) —
        clients check in asynchronously and the supply must never gate
        them.
        """
        return self._pool.take()

    def complete_checkin(self, submission: ClientSubmission) -> bool:
        """Forward a client's DH completing message at check-in time.

        Amortized-DH-leg control plane: the TSA derives and caches the
        channel key now, so the later :meth:`submit` /
        :meth:`submit_block` does no modexp on the aggregation path.
        """
        return self.tsa.complete_leg(
            submission.leg_index, submission.completing_message
        )

    # -- step 5: incremental aggregation ----------------------------------------

    def submit(self, submission: ClientSubmission) -> bool:
        """Forward demasking info to the TSA; on acceptance, aggregate.

        The masked update is added to the running sum only when the TSA
        accepted the matching seed — otherwise the masked sum and the
        mask sum would diverge and the final unmask would be garbage.
        Returns whether the contribution counted.
        """
        if self._finalized:
            return False
        if submission.masked_update.shape != (self.tsa.vector_length,):
            raise ValueError("masked update has wrong length")
        if submission.masked_update.dtype != self.codec.group.dtype:
            # Validate before the TSA burns the leg: a malformed update
            # must not leave the mask sum holding a mask whose masked
            # update was never aggregated.
            raise TypeError(
                f"expected group dtype {self.codec.group.dtype}, "
                f"got {submission.masked_update.dtype}"
            )
        accepted = self.tsa.process_client(
            submission.leg_index,
            submission.completing_message,
            submission.sealed_seed,
        )
        if accepted:
            self._masked_sum = self.codec.group.add(
                self._masked_sum, submission.masked_update
            )
            self._accepted.append(submission)
        return accepted

    def submit_block(self, submissions: list[ClientSubmission]) -> list[bool]:
        """Forward K submissions in one TSA round trip.

        Semantically identical to K sequential :meth:`submit` calls —
        per-submission acceptance flags, rejection behaviour, and the
        final aggregate are the same — but the TSA expands and folds the
        accepted masks as one block, and the server defers its own fold
        to finalize time, where the retained masked vectors are folded
        with allocation-free in-place passes.  Shape/dtype validation
        happens up front: a malformed submission raises before anything
        in the block is processed.
        """
        if self._finalized:
            return [False] * len(submissions)
        group = self.codec.group
        for submission in submissions:
            if submission.masked_update.shape != (self.tsa.vector_length,):
                raise ValueError("masked update has wrong length")
            if submission.masked_update.dtype != group.dtype:
                raise TypeError(
                    f"expected group dtype {group.dtype}, "
                    f"got {submission.masked_update.dtype}"
                )
        flags = self.tsa.process_client_block(
            [
                (s.leg_index, s.completing_message, s.sealed_seed)
                for s in submissions
            ]
        )
        accepted = [s for s, ok in zip(submissions, flags) if ok]
        self._accepted.extend(accepted)
        self._block_accepted.extend(accepted)
        return flags

    @property
    def accepted_count(self) -> int:
        """Contributions aggregated so far."""
        return len(self._accepted)

    @property
    def accepted_submissions(self) -> tuple[ClientSubmission, ...]:
        """The accepted submissions (masked — safe for the server to hold)."""
        return tuple(self._accepted)

    def masked_weighted_sum(
        self, weights: dict[int, int]
    ) -> tuple[np.ndarray, int]:
        """``Σ w_i·(masked update)_i`` over the accepted submissions.

        The shard-server half of hierarchical secure aggregation: a shard
        computes its weighted *masked* partial for the root merge without
        requesting any unmask and without burning the finalize latch —
        the root performs the single unmask + decode after merging the
        shard partials in ascending-shard order.  The fold is the exact
        multiply-accumulate sequence of :meth:`finalize`'s weighted
        branch (acceptance order, zero weights contribute the identity),
        so merging shard partials reassociates — never changes — the
        single server's group sum.

        Returns ``(masked partial, total |w|)``; pure read, callable at
        most once per epoch's finalize path but safe to recompute.
        """
        group = self.codec.group
        masked = group.zeros(self.tsa.vector_length)
        tmp = np.empty(self.tsa.vector_length, dtype=group.dtype)
        total_w = 0
        for sub in self._accepted:
            w = weights.get(sub.leg_index, 0)
            if w:
                group.mac_into(masked, sub.masked_update, w, tmp)
                total_w += abs(w)
        return masked, total_w

    # -- steps 7–8: unmask and decode ----------------------------------------

    def finalize(
        self, weights: dict[int, int] | None = None, max_abs: float = 1.0
    ) -> np.ndarray:
        """Request the unmask and return the aggregated *real* update sum.

        Parameters
        ----------
        weights:
            Optional per-leg integer weights.  When given, the server
            scales each masked update accordingly and asks the TSA for the
            identically weighted mask sum, so it learns only the weighted
            aggregate ``Σ w_i v_i``.
        max_abs:
            A priori bound on each real update's magnitude, used for the
            fixed-point overflow soundness check.

        Raises
        ------
        ProtocolError
            Propagated from the TSA when below threshold or already
            released.
        """
        if self._finalized:
            raise ProtocolError("aggregation already finalized")
        group = self.codec.group
        if weights is None:
            masked = self._masked_sum
            if self._block_accepted:
                # Deferred block folds: one in-place pass per retained
                # masked vector, no allocation.
                masked = masked.copy()
                for sub in self._block_accepted:
                    group.add_into(masked, sub.masked_update)
            unmask = self.tsa.release_unmask()
            summands = len(self._accepted)
            bound = max_abs
        else:
            # One allocation-free multiply-accumulate per weighted
            # submission — bit-identical to the sequential
            # scale-then-add folds, zero weights contribute the identity.
            masked = group.zeros(self.tsa.vector_length)
            tmp = np.empty(self.tsa.vector_length, dtype=group.dtype)
            total_w = 0
            for sub in self._accepted:
                w = weights.get(sub.leg_index, 0)
                if w:
                    group.mac_into(masked, sub.masked_update, w, tmp)
                    total_w += abs(w)
            unmask = self.tsa.release_unmask(
                {k: v for k, v in weights.items() if v}
            )
            summands = max(total_w, 1)
            bound = max_abs
        self._finalized = True
        encoded_sum = group.sub(masked, unmask)
        return self.codec.decode_sum(encoded_sum, summands, bound)
