"""The untrusted server side of Asynchronous SecAgg (Figure 16 steps 2, 5, 7–8).

The server is honest-but-curious: it follows the protocol but sees
everything that crosses it.  It therefore only ever handles *masked*
updates — the incremental aggregation property that makes the protocol
compatible with FedBuff: each arriving masked update is folded into a
running group sum immediately, no cohort required.
"""

from __future__ import annotations

import numpy as np

from repro.secagg.client import ClientSubmission
from repro.secagg.fixedpoint import FixedPointCodec
from repro.secagg.tsa import KeyExchangeLeg, ProtocolError, TrustedSecureAggregator

__all__ = ["SecAggServer"]


class SecAggServer:
    """Aggregates masked updates; orchestrates legs and the final unmask.

    Parameters
    ----------
    tsa:
        The trusted party (in production: reached over an attested
        channel; here: a direct reference whose boundary is metered).
    codec:
        Fixed-point codec shared by all parties.
    initial_legs:
        How many DH legs to pre-mint (the paper's ``N > n``).
    """

    def __init__(
        self,
        tsa: TrustedSecureAggregator,
        codec: FixedPointCodec,
        initial_legs: int = 16,
    ):
        self.tsa = tsa
        self.codec = codec
        self._available_legs: list[KeyExchangeLeg] = list(
            reversed(tsa.prepare_legs(initial_legs))
        )
        self._masked_sum = codec.group.zeros(tsa.vector_length)
        self._accepted: list[ClientSubmission] = []
        self._finalized = False

    # -- step 2: hand a leg to a checking-in client -------------------------------

    def assign_leg(self) -> KeyExchangeLeg:
        """Hand out a fresh, never-used key-exchange leg.

        Mints more legs on demand — clients check in asynchronously and
        the supply must never gate them.
        """
        if not self._available_legs:
            self._available_legs = list(reversed(self.tsa.prepare_legs(16)))
        return self._available_legs.pop()

    # -- step 5: incremental aggregation ----------------------------------------

    def submit(self, submission: ClientSubmission) -> bool:
        """Forward demasking info to the TSA; on acceptance, aggregate.

        The masked update is added to the running sum only when the TSA
        accepted the matching seed — otherwise the masked sum and the
        mask sum would diverge and the final unmask would be garbage.
        Returns whether the contribution counted.
        """
        if self._finalized:
            return False
        if submission.masked_update.shape != (self.tsa.vector_length,):
            raise ValueError("masked update has wrong length")
        accepted = self.tsa.process_client(
            submission.leg_index,
            submission.completing_message,
            submission.sealed_seed,
        )
        if accepted:
            self._masked_sum = self.codec.group.add(
                self._masked_sum, submission.masked_update
            )
            self._accepted.append(submission)
        return accepted

    @property
    def accepted_count(self) -> int:
        """Contributions aggregated so far."""
        return len(self._accepted)

    @property
    def accepted_submissions(self) -> tuple[ClientSubmission, ...]:
        """The accepted submissions (masked — safe for the server to hold)."""
        return tuple(self._accepted)

    # -- steps 7–8: unmask and decode ----------------------------------------

    def finalize(
        self, weights: dict[int, int] | None = None, max_abs: float = 1.0
    ) -> np.ndarray:
        """Request the unmask and return the aggregated *real* update sum.

        Parameters
        ----------
        weights:
            Optional per-leg integer weights.  When given, the server
            scales each masked update accordingly and asks the TSA for the
            identically weighted mask sum, so it learns only the weighted
            aggregate ``Σ w_i v_i``.
        max_abs:
            A priori bound on each real update's magnitude, used for the
            fixed-point overflow soundness check.

        Raises
        ------
        ProtocolError
            Propagated from the TSA when below threshold or already
            released.
        """
        if self._finalized:
            raise ProtocolError("aggregation already finalized")
        group = self.codec.group
        if weights is None:
            masked = self._masked_sum
            unmask = self.tsa.release_unmask()
            summands = len(self._accepted)
            bound = max_abs
        else:
            masked = group.zeros(self.tsa.vector_length)
            total_w = 0
            for sub in self._accepted:
                w = weights.get(sub.leg_index, 0)
                if w:
                    masked = group.add(masked, group.scale(sub.masked_update, w))
                    total_w += abs(w)
            unmask = self.tsa.release_unmask(
                {k: v for k, v in weights.items() if v}
            )
            summands = max(total_w, 1)
            bound = max_abs
        self._finalized = True
        encoded_sum = group.sub(masked, unmask)
        return self.codec.decode_sum(encoded_sum, summands, bound)
