"""End-to-end Asynchronous SecAgg orchestration + boundary cost model.

Two things live here:

* :func:`run_secure_aggregation` — a reference end-to-end execution of the
  Figure 16 protocol (authority → TSA → server → clients → unmask) used by
  the quickstart example, the integration tests, and the system layer.
* :class:`BoundaryCostModel` — the host↔TEE data-transfer time model
  behind Figure 6, calibrated to the paper's measurement ("nearly 650
  milliseconds for 100 clients, each with a 20 MB model" for naive TEE
  aggregation, which transfers ``O(K·m)``; Asynchronous SecAgg transfers
  ``O(K + m)``: a 16-byte seed per client plus one model-sized unmask).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.secagg.attestation import SigningAuthority
from repro.secagg.client import LogBundle, SecAggClient
from repro.secagg.fixedpoint import FixedPointCodec
from repro.secagg.groups import PowerOfTwoGroup
from repro.secagg.merkle import VerifiableLog
from repro.secagg.prng import SEED_BYTES
from repro.secagg.server import SecAggServer
from repro.secagg.tsa import TrustedSecureAggregator
from repro.utils.rng import child_rng

__all__ = [
    "BoundaryCostModel",
    "SecAggDeployment",
    "build_deployment",
    "run_secure_aggregation",
]


@dataclass(frozen=True)
class BoundaryCostModel:
    """Host↔TEE transfer-time model (Figure 6).

    Attributes
    ----------
    bytes_per_ms:
        Enclave boundary copy bandwidth.  Calibrated so that naive
        aggregation of 100 × 20 MB models takes ≈ 650 ms, matching the
        paper's benchmark.
    per_message_ms:
        Fixed per-crossing overhead (ECALL/OCALL dispatch).
    seed_blob_bytes:
        Bytes per client crossing into the TEE under Asynchronous SecAgg
        (the 16-byte seed; the DH completing message and MAC ride along
        in practice — configurable for the realistic-overhead ablation).
    """

    bytes_per_ms: float = (100 * 20 * 1024 * 1024) / 650.0
    per_message_ms: float = 0.002
    seed_blob_bytes: int = SEED_BYTES

    def naive_transfer_ms(self, aggregation_goal: int, model_bytes: int) -> float:
        """Naive TEE aggregation: every full model crosses the boundary."""
        k = aggregation_goal
        return (k * model_bytes) / self.bytes_per_ms + k * self.per_message_ms

    def async_transfer_ms(self, aggregation_goal: int, model_bytes: int) -> float:
        """Asynchronous SecAgg: K seeds in, one unmask vector out."""
        k = aggregation_goal
        payload = k * self.seed_blob_bytes + model_bytes
        return payload / self.bytes_per_ms + (k + 1) * self.per_message_ms


@dataclass
class SecAggDeployment:
    """All parties of one protocol instance, wired together."""

    authority: SigningAuthority
    tsa: TrustedSecureAggregator
    server: SecAggServer
    codec: FixedPointCodec
    log: VerifiableLog
    log_bundle: LogBundle


def build_deployment(
    vector_length: int,
    threshold: int,
    group_bits: int = 32,
    scale: float = 2**16,
    clip_value: float | None = 1.0,
    seed: int = 0,
    trusted_binary: bytes = b"papaya-tsa-v1",
) -> SecAggDeployment:
    """Stand up authority, verifiable log, TSA and server for one run."""
    group = PowerOfTwoGroup(group_bits)
    codec = FixedPointCodec(group, scale=scale, clip_value=clip_value)
    authority = SigningAuthority()
    tsa = TrustedSecureAggregator(
        group,
        vector_length,
        threshold,
        authority,
        trusted_binary=trusted_binary,
        rng=child_rng(seed, "tsa-dh"),
    )
    # Appendix C.2: the binary's identity and manifest are appended to the
    # verifiable log before release; clients get an inclusion proof.
    log = VerifiableLog()
    entry = b"manifest|" + tsa.binary_hash
    index = log.append(entry)
    bundle = LogBundle(
        entry=entry,
        index=index,
        size=log.size,
        root=log.root(),
        proof=log.inclusion_proof(index),
    )
    server = SecAggServer(tsa, codec, initial_legs=max(4, threshold))
    return SecAggDeployment(
        authority=authority,
        tsa=tsa,
        server=server,
        codec=codec,
        log=log,
        log_bundle=bundle,
    )


def run_secure_aggregation(
    updates: list[np.ndarray],
    threshold: int | None = None,
    weights: list[int] | None = None,
    group_bits: int = 32,
    scale: float = 2**16,
    clip_value: float | None = 1.0,
    seed: int = 0,
    block_submissions: bool = False,
) -> tuple[np.ndarray, SecAggDeployment]:
    """Run the full Figure 16 protocol over the given client updates.

    Parameters
    ----------
    updates:
        One real-valued vector per client (all the same length).
    threshold:
        Minimum contributions before unmasking (default: all clients).
    weights:
        Optional integer aggregation weights, one per client; when given
        the result is ``Σ w_i v_i`` via the weighted-unmask extension.
    group_bits, scale, clip_value, seed:
        Protocol public parameters / determinism control.
    block_submissions:
        Drive the server through the vectorized block data plane
        (:meth:`SecAggServer.submit_block` after check-in-time DH
        completion) instead of per-client ``submit`` calls.  The
        aggregate — and every masked intermediate — is bit-identical
        either way; the differential suite pins this.

    Returns
    -------
    aggregate:
        The decoded (weighted) sum of the updates.
    deployment:
        The parties, for inspecting boundary costs and transcripts.
    """
    if not updates:
        raise ValueError("need at least one update")
    length = len(updates[0])
    if any(len(u) != length for u in updates):
        raise ValueError("all updates must have the same length")
    if weights is not None and len(weights) != len(updates):
        raise ValueError("need one weight per update")
    t = len(updates) if threshold is None else threshold

    dep = build_deployment(
        length, t, group_bits=group_bits, scale=scale, clip_value=clip_value, seed=seed
    )
    weight_map: dict[int, int] = {}
    submissions = []
    for i, update in enumerate(updates):
        client = SecAggClient(
            client_id=i,
            codec=dep.codec,
            authority=dep.authority,
            expected_binary_hash=dep.tsa.binary_hash,
            expected_params_hash=dep.tsa.params_hash,
            rng=child_rng(seed, "secagg-client", i),
        )
        leg = dep.server.assign_leg()
        submission = client.participate(update, leg, log_bundle=dep.log_bundle)
        if block_submissions:
            # Amortized DH leg: the completing message is forwarded at
            # check-in, the masked update joins the next block.
            dep.server.complete_checkin(submission)
            submissions.append(submission)
        elif not dep.server.submit(submission):
            raise RuntimeError(f"client {i} submission rejected unexpectedly")
        if weights is not None:
            weight_map[leg.index] = int(weights[i])
    if block_submissions:
        flags = dep.server.submit_block(submissions)
        if not all(flags):
            bad = [i for i, ok in enumerate(flags) if not ok]
            raise RuntimeError(f"clients {bad} rejected unexpectedly")

    max_abs = clip_value if clip_value is not None else 1.0
    aggregate = dep.server.finalize(
        weights=weight_map if weights is not None else None, max_abs=max_abs
    )
    return aggregate, dep
