"""Asynchronous Secure Aggregation (paper Section 5, Appendices A–D).

Additive one-time-pad masking over a finite Abelian group, Diffie–Hellman
channels between clients and a Trusted Secure Aggregator (simulated TEE),
remote attestation, a verifiable (Merkle) log for trusted-binary updates,
and fixed-point conversion between real model updates and group elements.
"""

from repro.secagg.attestation import (
    AttestationError,
    Quote,
    SigningAuthority,
    hash_binary,
    hash_params,
)
from repro.secagg.auditor import (
    AuditFailure,
    BinaryReleaseProcess,
    LogAuditor,
    LogSnapshot,
)
from repro.secagg.client import ClientSubmission, LogBundle, SecAggClient
from repro.secagg.dh import DH_GENERATOR, DH_PRIME, DHKeyPair, shared_key
from repro.secagg.fixedpoint import (
    FixedPointCodec,
    FixedPointOverflowError,
    recommend_codec,
)
from repro.secagg.groups import PowerOfTwoGroup
from repro.secagg.merkle import (
    VerifiableLog,
    leaf_hash,
    node_hash,
    verify_consistency,
    verify_inclusion,
)
from repro.secagg.otp import otp_add, otp_decrypt_sum, otp_encrypt
from repro.secagg.prng import SEED_BYTES, expand_mask, expand_mask_block, generate_seed
from repro.secagg.protocol import (
    BoundaryCostModel,
    SecAggDeployment,
    build_deployment,
    run_secure_aggregation,
)
from repro.secagg.sealed import SealedBox, SealError, open_sealed, seal
from repro.secagg.server import LegPool, SecAggServer
from repro.secagg.tsa import KeyExchangeLeg, ProtocolError, TrustedSecureAggregator

__all__ = [
    "AttestationError",
    "AuditFailure",
    "BinaryReleaseProcess",
    "LogAuditor",
    "LogSnapshot",
    "Quote",
    "SigningAuthority",
    "hash_binary",
    "hash_params",
    "ClientSubmission",
    "LogBundle",
    "SecAggClient",
    "DH_GENERATOR",
    "DH_PRIME",
    "DHKeyPair",
    "shared_key",
    "FixedPointCodec",
    "FixedPointOverflowError",
    "recommend_codec",
    "PowerOfTwoGroup",
    "VerifiableLog",
    "leaf_hash",
    "node_hash",
    "verify_consistency",
    "verify_inclusion",
    "otp_add",
    "otp_decrypt_sum",
    "otp_encrypt",
    "SEED_BYTES",
    "expand_mask",
    "expand_mask_block",
    "generate_seed",
    "BoundaryCostModel",
    "SecAggDeployment",
    "build_deployment",
    "run_secure_aggregation",
    "SealedBox",
    "SealError",
    "open_sealed",
    "seal",
    "LegPool",
    "SecAggServer",
    "KeyExchangeLeg",
    "ProtocolError",
    "TrustedSecureAggregator",
]
