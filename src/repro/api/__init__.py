"""repro.api — the unified scenario API of the reproduction.

Describe a deployment declaratively, then build/run it through one
façade::

    from repro.api import (
        Deployment, ExecutionSpec, PopulationSpec, ScenarioSpec, TaskSpec,
    )

    spec = ScenarioSpec(
        population=PopulationSpec(n_devices=10_000),
        tasks=(TaskSpec(name="async", mode="async",
                        concurrency=64, aggregation_goal=8),),
        execution=ExecutionSpec(seed=0, t_end_s=3600.0),
    )
    result = Deployment.from_spec(spec).run()

Specs are frozen and serializable (``spec.to_dict()`` /
``ScenarioSpec.from_dict``), validate every combination at construction
with field-named errors, and support dotted-path overrides
(``spec.override("plane.num_shards", 4)``) — which is what lets
``repro.harness.sweep`` grid directly over scenario fields.  Planes,
shard routings, and trainer adapters are looked up by name in
:mod:`repro.system.planes`, so new ones plug in by registration.
"""

from repro.api.deployment import Deployment, build, build_population, run
from repro.api.spec import (
    ExecutionSpec,
    FaultEvent,
    FaultSpec,
    PlaneSpec,
    PopulationSpec,
    ScenarioSpec,
    SpecError,
    TaskSpec,
    TelemetrySpec,
)

__all__ = [
    "Deployment",
    "build",
    "run",
    "build_population",
    "ScenarioSpec",
    "PopulationSpec",
    "TaskSpec",
    "PlaneSpec",
    "ExecutionSpec",
    "FaultSpec",
    "FaultEvent",
    "TelemetrySpec",
    "SpecError",
]
