"""Declarative, serializable scenario descriptions.

A :class:`ScenarioSpec` is the frozen, JSON-round-trippable description
of one simulated PAPAYA deployment: the device population, the FL tasks
(each naming a registered trainer adapter), the aggregation plane, and
the execution knobs.  It is the single source of truth the
:class:`repro.api.Deployment` façade builds simulations from, and the
unit the sweep executor grids over (``tasks.0.concurrency=8,16,32``).

Every spec validates itself at construction: invalid combinations raise
:class:`SpecError` naming the offending field (``plane.num_shards:
the 'single' plane cannot be sharded ...``), so a mis-assembled scenario
fails at definition time with an actionable message, not deep inside the
orchestrator.  ``from_dict(spec.to_dict())`` reconstructs an *equal*
spec, which is what makes scenario files, sweep grids, and cache
fingerprints possible.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.types import TaskConfig, TrainingMode
from repro.sim.faults import FaultParamError, validate_fault_params
from repro.sim.population import PopulationConfig
from repro.system.orchestrator import SystemConfig

__all__ = [
    "SpecError",
    "PopulationSpec",
    "TaskSpec",
    "PlaneSpec",
    "ExecutionSpec",
    "FaultEvent",
    "FaultSpec",
    "TelemetrySpec",
    "ScenarioSpec",
]

#: plane names with dedicated ScenarioSpec semantics (anything else is
#: treated as a custom registered plane and pinned via SystemConfig.plane)
BUILTIN_PLANES = ("single", "sharded", "secure", "secure_sharded")

#: planes that fold across ``num_shards`` shard cores (and therefore
#: accept ``num_shards > 1``, a ``shard_routing`` policy, and the
#: ``process`` executor)
SHARDED_PLANES = ("sharded", "secure_sharded")

#: planes that run every task through Asynchronous SecAgg
SECURE_PLANES = ("secure", "secure_sharded")


class SpecError(ValueError):
    """A scenario spec is invalid; ``field`` names the offending field."""

    def __init__(self, field_name: str, message: str):
        self.field = field_name
        super().__init__(f"{field_name}: {message}")


def _freeze_value(value: Any, field_name: str) -> Any:
    """Normalize one parameter value to a hashable JSON-able form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v, field_name) for v in value)
    raise SpecError(
        field_name,
        f"values must be JSON scalars or lists of them, got {type(value).__name__}",
    )


def _freeze_items(
    items: Mapping[str, Any] | Sequence[tuple[str, Any]] | None, field_name: str
) -> tuple[tuple[str, Any], ...]:
    """Normalize a param mapping to a sorted tuple of (key, value) pairs."""
    if items is None:
        return ()
    pairs = items.items() if isinstance(items, Mapping) else items
    out = []
    for key, value in pairs:
        if not isinstance(key, str) or not key:
            raise SpecError(field_name, f"keys must be non-empty strings, got {key!r}")
        out.append((key, _freeze_value(value, f"{field_name}.{key}")))
    out.sort(key=lambda kv: kv[0])
    seen = [k for k, _ in out]
    for k in set(seen):
        if seen.count(k) > 1:
            raise SpecError(field_name, f"duplicate key {k!r}")
    return tuple(out)


def _thaw_value(value: Any) -> Any:
    return [_thaw_value(v) for v in value] if isinstance(value, tuple) else value


def _thaw_items(items: tuple[tuple[str, Any], ...]) -> dict[str, Any]:
    return {k: _thaw_value(v) for k, v in items}


def _expect_mapping(data: Any, field_name: str) -> dict:
    if not isinstance(data, Mapping):
        raise SpecError(field_name, f"expected a mapping, got {type(data).__name__}")
    return dict(data)


def _check_keys(data: Mapping, allowed: Sequence[str], field_name: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(
            field_name,
            f"unknown keys {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}",
        )


# ---------------------------------------------------------------------------
# Sub-specs
# ---------------------------------------------------------------------------

_POPULATION_OVERRIDE_FIELDS = tuple(
    f.name for f in dataclasses.fields(PopulationConfig) if f.name != "n_devices"
)


@dataclass(frozen=True)
class PopulationSpec:
    """The simulated device fleet.

    ``seed=None`` means "use the deployment seed"; ``overrides`` are
    :class:`~repro.sim.population.PopulationConfig` fields other than
    ``n_devices`` (e.g. ``mean_examples``, ``max_examples``).

    ``columnar=True`` builds the struct-of-arrays
    :class:`~repro.sim.population.ColumnarDevicePopulation` (the
    million-client fleet representation) instead of the object-per-device
    default.  The columnar fleet is its own deterministic realization, so
    the default stays ``False`` to keep existing scenario traces
    byte-identical.
    """

    n_devices: int = 100_000
    seed: int | None = None
    overrides: tuple[tuple[str, Any], ...] = ()
    columnar: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "n_devices", int(self.n_devices))
        object.__setattr__(self, "columnar", bool(self.columnar))
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(
            self, "overrides", _freeze_items(self.overrides, "population.overrides")
        )
        for key, _ in self.overrides:
            if key not in _POPULATION_OVERRIDE_FIELDS:
                raise SpecError(
                    f"population.overrides.{key}",
                    f"not a PopulationConfig field; known: "
                    f"{', '.join(_POPULATION_OVERRIDE_FIELDS)}",
                )
        try:
            self.population_config()
        except SpecError:
            raise
        except ValueError as exc:
            raise SpecError("population", str(exc)) from exc

    def population_config(self) -> PopulationConfig:
        """The validated :class:`PopulationConfig` this spec describes."""
        return PopulationConfig(n_devices=self.n_devices, **_thaw_items(self.overrides))

    @classmethod
    def from_population(cls, population) -> "PopulationSpec":
        """Describe an already-built :class:`DevicePopulation` faithfully."""
        from repro.sim.population import ColumnarDevicePopulation

        cfg = population.config
        overrides = {
            f.name: getattr(cfg, f.name)
            for f in dataclasses.fields(PopulationConfig)
            if f.name != "n_devices" and getattr(cfg, f.name) != f.default
        }
        return cls(
            n_devices=cfg.n_devices,
            seed=population.seed,
            overrides=overrides,
            columnar=isinstance(population, ColumnarDevicePopulation),
        )

    def to_dict(self) -> dict:
        doc = {
            "n_devices": self.n_devices,
            "seed": self.seed,
            "overrides": _thaw_items(self.overrides),
        }
        # Omitted when default so canonical JSON — and therefore every
        # existing sweep-cache fingerprint — is unchanged.
        if self.columnar:
            doc["columnar"] = True
        return doc

    @classmethod
    def from_dict(cls, data: Any) -> "PopulationSpec":
        data = _expect_mapping(data, "population")
        _check_keys(data, ("n_devices", "seed", "overrides", "columnar"), "population")
        return cls(
            n_devices=data.get("n_devices", 100_000),
            seed=data.get("seed"),
            overrides=_expect_mapping(data.get("overrides") or {}, "population.overrides"),
            columnar=data.get("columnar", False),
        )


@dataclass(frozen=True)
class TaskSpec:
    """One FL task: its :class:`TaskConfig` fields plus a named trainer.

    ``trainer`` names a factory registered in
    :mod:`repro.system.planes` (``"surrogate"``, ``"real_lstm"``, or
    ``"external"`` for adapters injected via ``Deployment(adapters=...)``);
    ``trainer_params`` are its JSON-able construction parameters.
    Whether the task runs through secure aggregation is a *plane*
    decision (``plane.name == "secure"``), not a per-task flag.
    """

    name: str = "task"
    mode: str = "async"
    concurrency: int = 100
    aggregation_goal: int = 10
    over_selection: float = 0.0
    max_staleness: int = 100
    client_timeout_s: float = 240.0
    local_epochs: int = 1
    batch_size: int = 32
    client_lr: float = 0.5
    model_size_bytes: int = 20 * 1024 * 1024
    trainer: str = "surrogate"
    trainer_params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError("tasks[].name", "must be a non-empty string")
        if self.mode not in ("async", "sync"):
            raise SpecError(
                f"tasks[{self.name}].mode",
                f"must be 'async' or 'sync', got {self.mode!r}",
            )
        if not self.trainer or not isinstance(self.trainer, str):
            raise SpecError(f"tasks[{self.name}].trainer", "must be a non-empty string")
        for attr in ("concurrency", "aggregation_goal", "max_staleness",
                     "local_epochs", "batch_size", "model_size_bytes"):
            object.__setattr__(self, attr, int(getattr(self, attr)))
        for attr in ("over_selection", "client_timeout_s", "client_lr"):
            object.__setattr__(self, attr, float(getattr(self, attr)))
        object.__setattr__(
            self,
            "trainer_params",
            _freeze_items(self.trainer_params, f"tasks[{self.name}].trainer_params"),
        )

    def task_config(self, secure: bool = False) -> TaskConfig:
        """The validated :class:`TaskConfig` this spec describes."""
        try:
            return TaskConfig(
                name=self.name,
                mode=TrainingMode(self.mode),
                concurrency=self.concurrency,
                aggregation_goal=self.aggregation_goal,
                over_selection=self.over_selection,
                max_staleness=self.max_staleness,
                client_timeout_s=self.client_timeout_s,
                local_epochs=self.local_epochs,
                batch_size=self.batch_size,
                client_lr=self.client_lr,
                secure_aggregation=secure,
                model_size_bytes=self.model_size_bytes,
            )
        except ValueError as exc:
            raise SpecError(f"tasks[{self.name}]", str(exc)) from exc

    def to_dict(self) -> dict:
        out = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "trainer_params"
        }
        out["trainer_params"] = _thaw_items(self.trainer_params)
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "TaskSpec":
        data = _expect_mapping(data, "tasks[]")
        _check_keys(data, [f.name for f in dataclasses.fields(cls)], "tasks[]")
        params = data.pop("trainer_params", None)
        return cls(
            **data,
            trainer_params=_expect_mapping(params or {}, "tasks[].trainer_params"),
        )


@dataclass(frozen=True)
class PlaneSpec:
    """Which aggregation plane hosts the deployment's tasks.

    ``"single"`` — one aggregation core per task on one node (default).
    ``"sharded"`` — ``num_shards`` shard cores + a root reducer, clients
    routed by the ``shard_routing`` policy (async tasks only; sync tasks
    in a mixed workload fall back to single with a logged
    ``plane_fallback`` event).  ``num_shards=1`` is the degenerate
    single-core point — bit-identical to ``"single"`` — so one sweep
    grid axis can span ``plane.num_shards=1,2,4``.
    ``"secure"`` — FedBuff through Asynchronous SecAgg (all tasks).
    ``"secure_sharded"`` — hierarchical secure aggregation:
    ``num_shards`` shard TSA+server pairs whose masked group sums merge
    under one trusted root reducer, bit-identical to ``"secure"`` for
    any shard count and routing (async tasks only, like both parents;
    its ``num_shards=1`` point is the degenerate single-TSA plane).
    Any other name must be a custom plane registered in
    :mod:`repro.system.planes`; it is pinned for every task.

    ``executor`` picks where a sharded plane's fold work runs:
    ``"inline"`` (default — folds on the simulation thread, speedup
    modeled by the plane clock) or ``"process"`` (folds on real
    ``multiprocessing`` shard workers over shared memory, bit-identical
    to inline; see :mod:`repro.core.parallel`).  Only the two sharded
    planes take a non-default executor.
    """

    name: str = "single"
    num_shards: int = 1
    shard_routing: str = "hash"
    executor: str = "inline"

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError("plane.name", "must be a non-empty string")
        object.__setattr__(self, "num_shards", int(self.num_shards))
        if self.num_shards < 1:
            raise SpecError("plane.num_shards", "must be at least 1")
        if self.name not in SHARDED_PLANES and self.num_shards != 1:
            hint = (
                "plane.name='secure_sharded' shards secure aggregation "
                "(shard TSAs merge masked group sums under a trusted root)"
                if self.name == "secure"
                else "plane.name='sharded' shards the float fold"
            )
            raise SpecError(
                "plane.num_shards",
                f"the {self.name!r} plane cannot be sharded — "
                f"{hint}; a sharded plane's num_shards=1 point is the "
                "degenerate single-core plane, so a shard-count sweep "
                "axis can span 1,2,4",
            )
        if not self.shard_routing or not isinstance(self.shard_routing, str):
            raise SpecError(
                "plane.shard_routing", "must be a non-empty string"
            )
        if self.executor not in ("inline", "process"):
            raise SpecError(
                "plane.executor", "must be 'inline' or 'process'"
            )
        if self.executor != "inline" and self.name not in SHARDED_PLANES:
            raise SpecError(
                "plane.executor",
                f"the {self.name!r} plane has no worker backend — only "
                f"{' or '.join(f'plane.name={p!r}' for p in SHARDED_PLANES)} "
                "takes executor='process'",
            )

    def to_dict(self) -> dict:
        doc = {
            "name": self.name,
            "num_shards": self.num_shards,
            "shard_routing": self.shard_routing,
        }
        # Omitted when default so canonical JSON — and therefore every
        # existing sweep-cache fingerprint — is unchanged.
        if self.executor != "inline":
            doc["executor"] = self.executor
        return doc

    @classmethod
    def from_dict(cls, data: Any) -> "PlaneSpec":
        data = _expect_mapping(data, "plane")
        _check_keys(
            data, ("name", "num_shards", "shard_routing", "executor"), "plane"
        )
        return cls(**data)


@dataclass(frozen=True)
class ExecutionSpec:
    """How the deployment runs: seed, horizon, and stop conditions."""

    seed: int = 0
    t_end_s: float | None = None
    target_loss: float | None = None
    max_server_steps: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "seed", int(self.seed))
        if self.t_end_s is not None:
            object.__setattr__(self, "t_end_s", float(self.t_end_s))
            if self.t_end_s <= 0:
                raise SpecError("execution.t_end_s", "must be positive")
        if self.target_loss is not None:
            object.__setattr__(self, "target_loss", float(self.target_loss))
        if self.max_server_steps is not None:
            object.__setattr__(self, "max_server_steps", int(self.max_server_steps))
            if self.max_server_steps < 1:
                raise SpecError("execution.max_server_steps", "must be at least 1")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Any) -> "ExecutionSpec":
        data = _expect_mapping(data, "execution")
        _check_keys(data, [f.name for f in dataclasses.fields(cls)], "execution")
        return cls(**data)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: a kind, a fire time, and its parameters.

    ``kind`` names an entry of :data:`repro.sim.faults.FAULT_KINDS` and
    ``params`` are that kind's parameters, validated here at definition
    time (unknown/missing/out-of-range parameters raise field-named
    :class:`SpecError`\\ s).  Optional parameters left unset stay unset —
    the injector fills their defaults at schedule time — so the
    canonical JSON stays minimal.  Serialization is *flat*:
    ``{"kind": ..., "at_s": ..., <params...>}``, a fault table row.
    """

    kind: str
    at_s: float = 0.0
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise SpecError("faults.events[].kind", "must be a non-empty string")
        try:
            at_s = float(self.at_s)
        except (TypeError, ValueError):
            raise SpecError(
                "faults.events[].at_s", f"must be a number, got {self.at_s!r}"
            ) from None
        if not math.isfinite(at_s) or at_s < 0:
            raise SpecError("faults.events[].at_s", "must be finite and non-negative")
        object.__setattr__(self, "at_s", at_s)
        frozen = _freeze_items(self.params, "faults.events[].params")
        try:
            normalized = validate_fault_params(self.kind, dict(frozen))
        except FaultParamError as exc:
            raise SpecError(f"faults.events[].{exc.param}", exc.message) from None
        object.__setattr__(
            self, "params", _freeze_items(normalized, "faults.events[].params")
        )

    def to_dict(self) -> dict:
        doc: dict[str, Any] = {"kind": self.kind, "at_s": self.at_s}
        doc.update(_thaw_items(self.params))
        return doc

    @classmethod
    def from_dict(cls, data: Any) -> "FaultEvent":
        data = _expect_mapping(data, "faults.events[]")
        if "kind" not in data:
            raise SpecError("faults.events[].kind", "required key is missing")
        kind = data.pop("kind")
        at_s = data.pop("at_s", 0.0)
        return cls(kind=kind, at_s=at_s, params=data)


@dataclass(frozen=True)
class FaultSpec:
    """The deployment's declarative fault schedule (default: none).

    ``seed=None`` means "use the deployment seed" for the injector's
    private RNG stream; a fixed ``seed`` pins the fault realization
    independently of the scenario seed (the same storm kills the same
    sessions while the workload seed sweeps).  An empty ``events`` tuple
    constructs no injector at all — the byte-identity contract of the
    default path.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for i, event in enumerate(self.events):
            if not isinstance(event, FaultEvent):
                raise SpecError(f"faults.events[{i}]", "must be a FaultEvent")
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))

    def __bool__(self) -> bool:
        return bool(self.events) or self.seed is not None

    def to_dict(self) -> dict:
        return {
            "events": [e.to_dict() for e in self.events],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "FaultSpec":
        data = _expect_mapping(data, "faults")
        _check_keys(data, ("events", "seed"), "faults")
        events_data = data.get("events") or []
        if not isinstance(events_data, Sequence) or isinstance(events_data, (str, bytes)):
            raise SpecError("faults.events", "must be a list of fault-event mappings")
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in events_data),
            seed=data.get("seed"),
        )


@dataclass(frozen=True)
class TelemetrySpec:
    """The run's observability plane (default: off, constructing nothing).

    ``enabled=True`` makes ``Deployment.build`` attach a
    :class:`~repro.obs.telemetry.RunTelemetry` observer to the built
    simulation: metrics, round-trip span tracing, and (with
    ``profiling``) wall-clock phase profiling of the real hot paths.
    The observer is strictly read-only — a telemetry-on run produces
    the same traces, losses, and event order as a telemetry-off run —
    and the default (falsy) spec is omitted from the canonical JSON so
    existing sweep-cache fingerprints are unchanged.

    ``max_spans`` bounds the tracer's completed-span ring (exact
    per-name tallies survive eviction).
    """

    enabled: bool = False
    max_spans: int = 100_000
    profiling: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "enabled", bool(self.enabled))
        object.__setattr__(self, "max_spans", int(self.max_spans))
        object.__setattr__(self, "profiling", bool(self.profiling))
        if self.max_spans < 1:
            raise SpecError("telemetry.max_spans", "must be at least 1")

    def __bool__(self) -> bool:
        return self.enabled

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "max_spans": self.max_spans,
            "profiling": self.profiling,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "TelemetrySpec":
        data = _expect_mapping(data, "telemetry")
        _check_keys(data, ("enabled", "max_spans", "profiling"), "telemetry")
        return cls(
            enabled=data.get("enabled", False),
            max_spans=data.get("max_spans", 100_000),
            profiling=data.get("profiling", True),
        )


# ---------------------------------------------------------------------------
# The scenario spec
# ---------------------------------------------------------------------------

def _apply_override(doc: dict, path: str, value: Any) -> None:
    """Write one dotted override path into a ``ScenarioSpec.to_dict`` doc."""
    head, _, rest = path.partition(".")
    if head == "seed" and not rest:
        doc["execution"]["seed"] = value
        return
    if head == "population":
        if rest in ("n_devices", "seed", "columnar"):
            doc["population"][rest] = value
        elif rest in _POPULATION_OVERRIDE_FIELDS:
            doc["population"]["overrides"][rest] = value
        else:
            raise SpecError(path, "unknown population field")
        return
    if head == "tasks":
        which, _, task_field = rest.partition(".")
        if not task_field:
            raise SpecError(path, "expected tasks.<index-or-name>.<field>")
        names = [t["name"] for t in doc["tasks"]]
        if which.isdigit():
            idx = int(which)
            if idx >= len(names):
                raise SpecError(path, f"no task at index {idx} ({len(names)} tasks)")
        elif which in names:
            idx = names.index(which)
        else:
            raise SpecError(path, f"no task {which!r}; tasks: {', '.join(names)}")
        if task_field.startswith("trainer_params."):
            doc["tasks"][idx]["trainer_params"][
                task_field[len("trainer_params."):]
            ] = value
        elif task_field in {f.name for f in dataclasses.fields(TaskSpec)}:
            doc["tasks"][idx][task_field] = value
        else:
            raise SpecError(path, f"unknown TaskSpec field {task_field!r}")
        return
    if head in ("plane", "execution"):
        # Check field names, not doc keys: fields omitted from to_dict()
        # when at their default (e.g. plane.executor) are still
        # overridable.
        cls = PlaneSpec if head == "plane" else ExecutionSpec
        if rest not in {f.name for f in dataclasses.fields(cls)}:
            raise SpecError(path, f"unknown {head} field {rest!r}")
        doc[head][rest] = value
        return
    if head == "system":
        if not rest:
            raise SpecError(path, "expected system.<field>")
        doc["system"][rest] = value
        return
    if head == "faults":
        # Only the injector seed is sweepable; the event schedule is
        # structured (a list of kind/at_s/params rows), not a scalar a
        # dotted path can address — build a new FaultSpec instead.
        if rest != "seed":
            raise SpecError(
                path,
                "only faults.seed is overridable; edit the events list "
                "via FaultSpec directly",
            )
        doc.setdefault("faults", {"events": [], "seed": None})["seed"] = value
        return
    if head == "telemetry":
        if rest not in {f.name for f in dataclasses.fields(TelemetrySpec)}:
            raise SpecError(path, f"unknown telemetry field {rest!r}")
        doc.setdefault(
            "telemetry", {"enabled": False, "max_spans": 100_000, "profiling": True}
        )[rest] = value
        return
    raise SpecError(
        path,
        "unknown section; use population/tasks/plane/system/execution/"
        "faults/telemetry/seed",
    )


_SYSTEM_FIELDS = tuple(f.name for f in dataclasses.fields(SystemConfig))
#: SystemConfig fields owned by PlaneSpec — setting them via ``system``
#: would silently fight the plane section, so they are rejected by name.
_PLANE_OWNED = ("num_shards", "shard_routing", "shard_executor", "plane")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarative description of one simulated deployment.

    ``system`` holds :class:`~repro.system.orchestrator.SystemConfig`
    overrides by field name (``n_aggregators``, ``cohort_batch_size``,
    ``drain_threads``, ...); the plane-owned fields (``num_shards``,
    ``shard_routing``, ``plane``) live in the ``plane`` section instead
    and are rejected here with a pointer.
    """

    population: PopulationSpec
    tasks: tuple[TaskSpec, ...] = ()
    plane: PlaneSpec = field(default_factory=PlaneSpec)
    system: tuple[tuple[str, Any], ...] = ()
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)

    def __post_init__(self) -> None:
        if not isinstance(self.population, PopulationSpec):
            raise SpecError("population", "must be a PopulationSpec")
        if not isinstance(self.plane, PlaneSpec):
            raise SpecError("plane", "must be a PlaneSpec")
        if not isinstance(self.execution, ExecutionSpec):
            raise SpecError("execution", "must be an ExecutionSpec")
        if not isinstance(self.faults, FaultSpec):
            raise SpecError("faults", "must be a FaultSpec")
        if not isinstance(self.telemetry, TelemetrySpec):
            raise SpecError("telemetry", "must be a TelemetrySpec")
        object.__setattr__(self, "tasks", tuple(self.tasks))
        for i, task in enumerate(self.tasks):
            if not isinstance(task, TaskSpec):
                raise SpecError(f"tasks[{i}]", "must be a TaskSpec")
        object.__setattr__(self, "system", _freeze_items(self.system, "system"))
        self._validate()

    # -- validation ---------------------------------------------------------

    def _validate(self) -> None:
        if not self.tasks:
            raise SpecError("tasks", "a scenario needs at least one task")
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SpecError("tasks", f"duplicate task names: {', '.join(dupes)}")

        secure = self.plane.name in SECURE_PLANES
        for i, task in enumerate(self.tasks):
            if secure and task.mode != "async":
                raise SpecError(
                    f"tasks[{i}].mode",
                    f"task {task.name!r} is sync but plane.name="
                    f"{self.plane.name!r} requires async tasks "
                    "(Asynchronous SecAgg has no synchronous round "
                    "protocol)",
                )
            task.task_config(secure=secure)  # raises SpecError on bad combos

        if (
            self.plane.name == "sharded"
            and self.plane.num_shards > 1
            and not any(t.mode == "async" for t in self.tasks)
        ):
            raise SpecError(
                "plane.name",
                "the sharded plane requires at least one async task "
                "(FedBuff's buffered fold is what the shards partially "
                "evaluate); every task here is sync",
            )

        for key, _ in self.system:
            if key == "n_shards":
                raise SpecError(
                    "system.n_shards",
                    "renamed to drain_threads (per-node queue-drain thread "
                    "count); aggregation-plane shards are plane.num_shards",
                )
            if key in _PLANE_OWNED:
                target = {
                    "plane": "plane.name",
                    "shard_executor": "plane.executor",
                }.get(key, f"plane.{key}")
                raise SpecError(
                    f"system.{key}", f"owned by the plane section; set {target}"
                )
            if key not in _SYSTEM_FIELDS:
                raise SpecError(
                    f"system.{key}",
                    f"not a SystemConfig field; known: "
                    f"{', '.join(n for n in _SYSTEM_FIELDS if n not in _PLANE_OWNED)}",
                )
        try:
            system = self.system_config()
        except SpecError:
            raise
        except (ValueError, KeyError) as exc:
            raise SpecError("system", str(exc)) from exc
        self._validate_faults(system)

    def _validate_faults(self, system: SystemConfig) -> None:
        """Cross-check fault-event targets against the rest of the spec."""
        if not self.faults.events:
            return
        names = {t.name for t in self.tasks}
        for event in self.faults.events:
            params = dict(event.params)
            node = params.get("node")
            if node is not None and node >= system.n_aggregators:
                raise SpecError(
                    "faults.events[].node",
                    f"node {node} out of range; "
                    f"system.n_aggregators={system.n_aggregators}",
                )
            task = params.get("task")
            if task is not None and task not in names:
                raise SpecError(
                    "faults.events[].task",
                    f"no task {task!r}; tasks: {', '.join(sorted(names))}",
                )
            if event.kind == "worker_kill":
                if (
                    self.plane.name not in SHARDED_PLANES
                    or self.plane.executor != "process"
                ):
                    raise SpecError(
                        "faults.events[].kind",
                        "worker_kill needs a sharded plane "
                        "(plane.name='sharded' or 'secure_sharded') with "
                        "executor='process' — the inline executor has no "
                        "worker process to terminate",
                    )
                shard = params.get("shard")
                if shard is not None and shard >= self.plane.num_shards:
                    raise SpecError(
                        "faults.events[].shard",
                        f"shard {shard} out of range; "
                        f"plane.num_shards={self.plane.num_shards}",
                    )

    # -- derived configs ----------------------------------------------------

    def system_config(self) -> SystemConfig:
        """The :class:`SystemConfig` the deployment is built with."""
        kwargs = _thaw_items(self.system)
        if self.plane.name in SHARDED_PLANES:
            kwargs["num_shards"] = self.plane.num_shards
            kwargs["shard_routing"] = self.plane.shard_routing
            kwargs["shard_executor"] = self.plane.executor
        elif self.plane.name not in BUILTIN_PLANES:
            kwargs["plane"] = self.plane.name
        return SystemConfig(**kwargs)

    def task_configs(self) -> list[TaskConfig]:
        """Validated :class:`TaskConfig` objects, in task order."""
        secure = self.plane.name in SECURE_PLANES
        return [t.task_config(secure=secure) for t in self.tasks]

    def population_seed(self) -> int:
        """The population's seed (defaults to the deployment seed)."""
        seed = self.population.seed
        return self.execution.seed if seed is None else seed

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able document; ``from_dict`` reconstructs an equal spec."""
        doc = {
            "population": self.population.to_dict(),
            "tasks": [t.to_dict() for t in self.tasks],
            "plane": self.plane.to_dict(),
            "system": _thaw_items(self.system),
            "execution": self.execution.to_dict(),
        }
        # Omitted when default so canonical JSON — and therefore every
        # existing sweep-cache fingerprint — is unchanged.
        if self.faults:
            doc["faults"] = self.faults.to_dict()
        if self.telemetry:
            doc["telemetry"] = self.telemetry.to_dict()
        return doc

    @classmethod
    def from_dict(cls, data: Any) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (tolerant of omitted sections)."""
        data = _expect_mapping(data, "scenario")
        _check_keys(
            data,
            ("population", "tasks", "plane", "system", "execution", "faults",
             "telemetry"),
            "scenario",
        )
        if "population" not in data:
            raise SpecError("population", "required section is missing")
        tasks_data = data.get("tasks", [])
        if not isinstance(tasks_data, Sequence) or isinstance(tasks_data, (str, bytes)):
            raise SpecError("tasks", "must be a list of task mappings")
        return cls(
            population=PopulationSpec.from_dict(data["population"]),
            tasks=tuple(TaskSpec.from_dict(t) for t in tasks_data),
            plane=PlaneSpec.from_dict(data.get("plane") or {"name": "single"}),
            system=_expect_mapping(data.get("system") or {}, "system"),
            execution=ExecutionSpec.from_dict(data.get("execution") or {}),
            faults=FaultSpec.from_dict(data.get("faults") or {}),
            telemetry=TelemetrySpec.from_dict(data.get("telemetry") or {}),
        )

    # -- declarative overrides (what sweeps grid over) ----------------------

    def override(self, path: str, value: Any) -> "ScenarioSpec":
        """A copy with one dotted field path replaced (and revalidated).

        Paths address every declarative knob::

            population.n_devices      population.mean_examples
            population.columnar       tasks.async.aggregation_goal
            tasks.0.concurrency
            tasks.0.trainer_params.critical_goal
            plane.num_shards          system.cohort_batch_size
            execution.target_loss     seed   (alias of execution.seed)
        """
        return self.with_overrides({path: value})

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """Apply several dotted override paths *atomically*.

        All paths are written into the spec document first and the result
        is validated once, so interdependent changes — e.g.
        ``{"plane.name": "sharded", "plane.num_shards": 4}`` — never trip
        over an invalid intermediate state.
        """
        doc = self.to_dict()
        for path in sorted(overrides):
            _apply_override(doc, path, overrides[path])
        return ScenarioSpec.from_dict(doc)
