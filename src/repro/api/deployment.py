"""The ``Deployment`` façade: one construction path for every simulation.

``Deployment.from_spec(spec).build()`` turns a declarative
:class:`~repro.api.spec.ScenarioSpec` into a runnable
:class:`~repro.system.orchestrator.FederatedSimulation`; ``.run()``
executes it with the spec's execution knobs.  Every simulation in the
repo — harness runners, figure regenerators, examples — is constructed
here, so plane selection, trainer-adapter wiring, and population
construction have exactly one implementation (a CI check forbids direct
``FederatedSimulation(...)`` construction elsewhere).

Escape hatches for callers that already hold live objects:

* ``population=`` reuses a built :class:`DevicePopulation` (the spec's
  population section should still describe it —
  :meth:`PopulationSpec.from_population` derives a faithful spec);
* ``adapters=`` injects prebuilt trainer adapters by task name (pair
  with ``trainer="external"`` in the task spec);
* ``network=`` substitutes a custom :class:`NetworkModel`.
"""

from __future__ import annotations

from typing import Mapping

from repro.api.spec import ScenarioSpec, SpecError
from repro.sim.network import NetworkModel
from repro.sim.population import ColumnarDevicePopulation, DevicePopulation
from repro.system import planes
from repro.system.adapters import TrainerAdapter
from repro.system.orchestrator import FederatedSimulation, RunResult

__all__ = ["Deployment", "build", "run", "build_population"]


def build_population(spec) -> DevicePopulation:
    """Build the device fleet a :class:`PopulationSpec` describes.

    ``spec.seed=None`` (deployment-seed deferral) resolves to 0 here;
    deployments resolve it against their execution seed instead.
    ``spec.columnar`` selects the struct-of-arrays fleet representation.
    """
    cls = ColumnarDevicePopulation if spec.columnar else DevicePopulation
    return cls(spec.population_config(), seed=spec.seed or 0)


class Deployment:
    """A scenario bound to (lazily) built runtime objects."""

    def __init__(
        self,
        spec: ScenarioSpec,
        population: DevicePopulation | None = None,
        adapters: Mapping[str, TrainerAdapter] | None = None,
        network: NetworkModel | None = None,
    ):
        if not isinstance(spec, ScenarioSpec):
            raise SpecError("spec", f"expected a ScenarioSpec, got {type(spec).__name__}")
        self.spec = spec
        self._population = population
        self._network = network
        self.adapters: dict[str, TrainerAdapter] = dict(adapters or {})
        unknown = sorted(set(self.adapters) - {t.name for t in spec.tasks})
        if unknown:
            raise SpecError(
                "adapters",
                f"no such task(s): {', '.join(unknown)}; "
                f"tasks: {', '.join(t.name for t in spec.tasks)}",
            )
        for task in spec.tasks:
            if task.name in self.adapters and task.trainer != "external":
                # An injected adapter would silently supersede the declared
                # trainer and its params — the serialized spec would then
                # misdescribe what ran.
                raise SpecError(
                    f"tasks[{task.name}].trainer",
                    f"declared {task.trainer!r} but an adapter was injected "
                    "for this task; declare trainer='external' so the spec "
                    "says what runs",
                )
        self._simulation: FederatedSimulation | None = None

    @classmethod
    def from_spec(cls, spec: ScenarioSpec, **overrides) -> "Deployment":
        """The canonical constructor (reads as ``Deployment.from_spec(spec)``)."""
        return cls(spec, **overrides)

    # -- lazily built pieces ------------------------------------------------

    @property
    def population(self) -> DevicePopulation:
        """The device fleet (built once per deployment)."""
        if self._population is None:
            pop_spec = self.spec.population
            cls = ColumnarDevicePopulation if pop_spec.columnar else DevicePopulation
            self._population = cls(
                pop_spec.population_config(),
                seed=self.spec.population_seed(),
            )
        return self._population

    def adapter(self, task_name: str) -> TrainerAdapter:
        """The (built) trainer adapter of one task."""
        if task_name not in {t.name for t in self.spec.tasks}:
            raise SpecError(
                "adapters",
                f"no such task {task_name!r}; tasks: "
                f"{', '.join(t.name for t in self.spec.tasks)}",
            )
        if task_name not in self.adapters:
            self.build()
        return self.adapters[task_name]

    def build(self) -> FederatedSimulation:
        """Construct the simulation (idempotent; returns the same object)."""
        if self._simulation is not None:
            return self._simulation
        spec = self.spec
        population = self.population
        tasks = []
        for task_spec, config in zip(spec.tasks, spec.task_configs()):
            adapter = self.adapters.get(task_spec.name)
            if adapter is None:
                if task_spec.trainer == "external":
                    raise SpecError(
                        f"tasks[{task_spec.name}].trainer",
                        "declared 'external' but no adapter was passed via "
                        "Deployment.from_spec(spec, adapters={...})",
                    )
                adapter = planes.build_trainer(
                    task_spec.trainer,
                    dict(task_spec.trainer_params),
                    seed=spec.execution.seed,
                    population=population,
                )
                self.adapters[task_spec.name] = adapter
            tasks.append((config, adapter))
        self._simulation = FederatedSimulation(
            tasks,
            population,
            network=self._network,
            system=spec.system_config(),
            seed=spec.execution.seed,
            target_loss=spec.execution.target_loss,
        )
        if spec.faults.events:
            # Constructed only when a schedule exists: a FaultSpec with
            # no events perturbs nothing (byte-identity of the default).
            from repro.sim.faults import FaultInjector

            fault_seed = (
                spec.faults.seed
                if spec.faults.seed is not None
                else spec.execution.seed
            )
            injector = FaultInjector(self._simulation, seed=fault_seed)
            for event in spec.faults.events:
                injector.schedule(event.kind, event.at_s, **dict(event.params))
        if spec.telemetry:
            # Attached only when enabled: a default TelemetrySpec builds
            # no observer and the run stays byte-identical to pre-
            # telemetry code.
            from repro.obs.telemetry import RunTelemetry

            RunTelemetry(
                max_spans=spec.telemetry.max_spans,
                profiling=spec.telemetry.profiling,
            ).attach(self._simulation)
        return self._simulation

    @property
    def simulation(self) -> FederatedSimulation:
        """The built simulation (building it on first access)."""
        return self.build()

    # -- execution ----------------------------------------------------------

    def run(
        self,
        t_end: float | None = None,
        target_loss: float | None = None,
        max_server_steps: int | None = None,
        max_events: int | None = None,
    ) -> RunResult:
        """Build and execute; arguments default to the spec's execution knobs."""
        execution = self.spec.execution
        horizon = t_end if t_end is not None else execution.t_end_s
        if horizon is None:
            raise SpecError(
                "execution.t_end_s",
                "no time horizon: set it in the spec or pass run(t_end=...)",
            )
        return self.build().run(
            t_end=horizon,
            target_loss=(
                target_loss if target_loss is not None else execution.target_loss
            ),
            max_server_steps=(
                max_server_steps
                if max_server_steps is not None
                else execution.max_server_steps
            ),
            max_events=max_events,
        )


def build(spec: ScenarioSpec, **overrides) -> FederatedSimulation:
    """``Deployment.from_spec(spec, **overrides).build()`` in one call."""
    return Deployment.from_spec(spec, **overrides).build()


def run(spec: ScenarioSpec, **run_kwargs) -> RunResult:
    """``Deployment.from_spec(spec).run(**run_kwargs)`` in one call."""
    return Deployment.from_spec(spec).run(**run_kwargs)
