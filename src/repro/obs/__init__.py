"""Unified observability plane: metrics, tracing, profiling, export.

Everything here is an *observer* of the simulation — deterministic where
it reads simulated time (metrics, spans), explicitly wall-clock where it
profiles real hot paths — and strictly read-only: attaching telemetry
never perturbs a run's RNG draws, event order, traces, or losses.
"""

from repro.obs.export import (
    events_to_jsonl,
    merged_jsonl,
    spans_to_jsonl,
    to_prometheus,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.profiling import PhaseProfiler
from repro.obs.telemetry import (
    METRIC_CATALOG,
    PHASE_CATALOG,
    SPAN_CATALOG,
    RunTelemetry,
    TelemetryReport,
)
from repro.obs.tracing import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Span",
    "SpanTracer",
    "PhaseProfiler",
    "RunTelemetry",
    "TelemetryReport",
    "METRIC_CATALOG",
    "SPAN_CATALOG",
    "PHASE_CATALOG",
    "events_to_jsonl",
    "spans_to_jsonl",
    "merged_jsonl",
    "to_prometheus",
]
