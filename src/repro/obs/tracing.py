"""Simulated-time span tracing: causal round-trip and round trees.

A :class:`Span` is one timed operation on the *simulated* clock — a
client round-trip, one of its stages (download / train / upload /
queue / admit), or one task round (the window between consecutive
server steps).  Spans form trees through ``parent_id``, so an exported
trace reconstructs exactly the causal chain the paper describes:

    check-in → selection → download → train → upload → admit → step

Span ids are sequence numbers (no randomness — tracing must never
perturb the run it observes) and timestamps are simulated seconds, so
the same run traces identically everywhere.

Memory is bounded the same way :class:`~repro.sim.trace.BoundedMetricsTrace`
bounds participation records: completed spans beyond ``max_spans`` are
retained in a ring (newest win) while exact per-name tallies survive
eviction.  Open spans are bounded by the system's own concurrency — a
span opens when a session starts and closes when it terminates, so at
most the in-flight session count is ever open.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Span", "SpanTracer"]


@dataclass(slots=True)
class Span:
    """One timed operation in the simulated run.

    Slotted, and the annotation list is lazily allocated (most spans are
    never annotated): a tracer retains up to ``max_spans`` of these, so
    per-span footprint is what bounds telemetry memory — and allocation
    count is what bounds telemetry overhead on the hot session path.
    """

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float | None = None
    #: terminal status: "ok", a terminal outcome name, or "in_flight"
    status: str = "in_flight"
    attrs: dict[str, Any] = field(default_factory=dict)
    #: free-form timed annotations; None until the first one lands
    annotations: list[dict[str, Any]] | None = None

    @property
    def duration_s(self) -> float | None:
        """Span duration in simulated seconds (None while open)."""
        return None if self.end_s is None else self.end_s - self.start_s

    def annotate(self, annotation: dict[str, Any]) -> None:
        """Attach one annotation (e.g. an overlapping fault window)."""
        if self.annotations is None:
            self.annotations = []
        self.annotations.append(annotation)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able document of this span."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "status": self.status,
            "attrs": dict(self.attrs),
            "annotations": list(self.annotations or ()),
        }


class SpanTracer:
    """Collects spans with ring-bounded retention and exact tallies.

    >>> tracer = SpanTracer()
    >>> root = tracer.start("round_trip", 0.0, task="train", device=7)
    >>> child = tracer.start("download", 0.0, parent=root)
    >>> tracer.end(child, 3.5)
    >>> tracer.end(root, 9.0, status="aggregated")
    >>> [s.name for s in tracer.completed()]
    ['download', 'round_trip']
    >>> tracer.open_count
    0
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be at least 1")
        self.max_spans = max_spans
        self._open: dict[int, Span] = {}
        self._done: deque[Span] = deque()
        self._next_id = 1
        #: exact per-name counts of completed spans (eviction-proof)
        self._name_totals: dict[str, int] = {}
        self.evicted = 0

    # -- recording ----------------------------------------------------------

    def start(
        self, name: str, at_s: float, parent: int | None = None, **attrs: Any
    ) -> int:
        """Open a span; returns its id (use as ``parent`` for children)."""
        span_id = self._next_id
        self._next_id += 1
        self._open[span_id] = Span(
            span_id=span_id, parent_id=parent, name=name, start_s=at_s,
            attrs=attrs,
        )
        return span_id

    def end(self, span_id: int, at_s: float, status: str = "ok", **attrs: Any) -> None:
        """Close an open span (idempotent: a second end is ignored)."""
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end_s = at_s
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self._done.append(span)
        self._name_totals[span.name] = self._name_totals.get(span.name, 0) + 1
        if len(self._done) > self.max_spans:
            self._done.popleft()
            self.evicted += 1

    def annotate(self, span_id: int, **annotation: Any) -> bool:
        """Attach one annotation to an *open* span; False when not open."""
        span = self._open.get(span_id)
        if span is None:
            return False
        span.annotate(annotation)
        return True

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: int | None = None,
        status: str = "ok",
        **attrs: Any,
    ) -> int:
        """Record an already-finished span in one call; returns its id."""
        span_id = self.start(name, start_s, parent=parent, **attrs)
        self.end(span_id, end_s, status=status)
        return span_id

    # -- reading ------------------------------------------------------------

    @property
    def open_count(self) -> int:
        """Number of spans still open."""
        return len(self._open)

    def open_spans(self) -> list[Span]:
        """Still-open spans, in start order."""
        return [self._open[k] for k in sorted(self._open)]

    def completed(self) -> Iterator[Span]:
        """Retained completed spans, in completion order."""
        return iter(self._done)

    def completed_of(self, name: str) -> list[Span]:
        """Retained completed spans with the given name."""
        return [s for s in self._done if s.name == name]

    def count(self, name: str) -> int:
        """Exact number of completed spans of ``name`` (eviction-proof)."""
        return self._name_totals.get(name, 0)

    def name_totals(self) -> dict[str, int]:
        """Exact completed-span totals per name, sorted."""
        return {k: self._name_totals[k] for k in sorted(self._name_totals)}

    def tree(self) -> dict[int | None, list[Span]]:
        """Retained completed spans grouped by parent id (the span tree)."""
        children: dict[int | None, list[Span]] = {}
        for span in self._done:
            children.setdefault(span.parent_id, []).append(span)
        for group in children.values():
            group.sort(key=lambda s: (s.start_s, s.span_id))
        return children

    def orphans(self) -> list[Span]:
        """Completed child spans whose parent was neither completed nor open.

        A non-empty result means a span closed against a parent id that
        never existed — the trace-completeness contract violation the
        chaos suite asserts against.  (A parent *evicted* from the
        bounded ring is not an orphan: eviction is accounted separately.)
        """
        if self.evicted:
            return []  # parentage can no longer be decided exactly
        known = {s.span_id for s in self._done} | set(self._open)
        return [
            s for s in self._done
            if s.parent_id is not None and s.parent_id not in known
        ]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Retained completed spans (then open ones) as JSON-able dicts."""
        docs = [s.to_dict() for s in self._done]
        docs.extend(s.to_dict() for s in self.open_spans())
        return docs

    def approx_bytes(self) -> int:
        """Rough memory footprint of retained + open spans."""
        return 160 * (len(self._done) + len(self._open))
