"""The run-level observer: wires metrics, tracing, and profiling into a run.

:class:`RunTelemetry` is the single object the system layer sees.  Every
emission point in the orchestrator, aggregators, client runtime,
coordinator, fleet driver, and secure boundary is a one-line
``observer is None`` check (the same pattern as
:attr:`~repro.system.aggregator.FLTaskRuntime.fault_gate`), so a run
without telemetry pays one attribute load per site and nothing else —
the byte-identity contract of the default path.

The observer is strictly **read-only**: hooks never draw randomness,
never schedule events, and never mutate simulation state, so a
telemetry-on run produces the same trace, losses, and event order as a
telemetry-off run of the same spec.

The :data:`METRIC_CATALOG` / :data:`SPAN_CATALOG` / :data:`PHASE_CATALOG`
tables are the single source of truth for what the plane emits;
``tools/check_docs.py`` keeps ``docs/OBSERVABILITY.md`` in lockstep with
them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.export import merged_jsonl, to_prometheus
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.profiling import PhaseProfiler
from repro.obs.tracing import SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.client_runtime import ClientSession
    from repro.system.orchestrator import FederatedSimulation, RunResult

__all__ = [
    "METRIC_CATALOG",
    "SPAN_CATALOG",
    "PHASE_CATALOG",
    "RunTelemetry",
    "TelemetryReport",
]


#: every metric family the plane declares: name -> (kind, help, labels)
METRIC_CATALOG: dict[str, tuple[str, str, tuple[str, ...]]] = {
    "checkins_total": (
        "counter", "client check-ins by admission status", ("status",)),
    "sessions_total": (
        "counter", "finished client sessions by task and outcome",
        ("task", "outcome")),
    "updates_admitted_total": (
        "counter", "uploads the aggregation core accepted", ("task", "outcome")),
    "server_steps_total": (
        "counter", "server model steps", ("task",)),
    "task_failovers_total": (
        "counter", "task/shard re-placements after node death", ("reason",)),
    "assignments_total": (
        "counter", "coordinator client-assignment decisions", ("result",)),
    "stale_map_retries_total": (
        "counter", "check-ins retried through a stale selector map", ()),
    "fault_events_total": (
        "counter", "fault-injector events observed", ("kind",)),
    "secagg_boundary_bytes_total": (
        "counter", "bytes crossing the secure-aggregation trust boundary",
        ("direction",)),
    "secagg_shard_folds_total": (
        "counter", "masked updates folded per secure-sharded shard TSA",
        ("task", "shard")),
    "fleet_arrivals_total": (
        "counter", "fleet tick arrivals by admission status", ("status",)),
    "fleet_sessions_total": (
        "counter", "completed fleet sessions by outcome", ("outcome",)),
    "round_trip_seconds": (
        "histogram", "client round-trip duration, simulated", ("task",)),
    "queue_wait_seconds": (
        "histogram", "aggregator queue wait before processing, simulated",
        ("task",)),
    "update_staleness": (
        "histogram", "staleness of admitted updates, in versions behind",
        ("task",)),
    "inflight_sessions": (
        "gauge", "active client sessions, sampled each heartbeat", ("task",)),
    "queue_depth_seconds": (
        "gauge", "aggregator drain backlog, sampled each heartbeat", ("node",)),
}

#: per-metric histogram bucket overrides (others use DEFAULT_BUCKETS)
_BUCKETS: dict[str, tuple[float, ...]] = {
    "update_staleness": (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
}

#: every span name the tracer emits: name -> what it covers
SPAN_CATALOG: dict[str, str] = {
    "round_trip": "one client participation, selection to terminal outcome",
    "download": "model download stage of a round-trip",
    "train": "local training stage of a round-trip",
    "upload": "report + upload stage of a round-trip",
    "admit": "server-side aggregation of one dequeued upload",
    "round": "one task round: the window between consecutive server steps",
    "secagg_epoch": "one secure-sharded buffer epoch, closed at its unmask release",
    "fleet_session": "deep-traced session of the columnar fleet driver",
}

#: every wall-clock profiling phase: name -> the hot path it times
PHASE_CATALOG: dict[str, str] = {
    "shard_fold": "sharded-core fold of one arrival (or grouped block)",
    "root_merge": "root reducer merging shard partials at a server step",
    "pool_dispatch": "process-pool slab write + task dispatch",
    "pool_barrier": "process-pool ack wait at epoch barriers",
    "secagg_submit": "secure client participation + masked submission",
    "secagg_finalize": "secure epoch unmask + model step",
}


class TelemetryReport:
    """Everything a telemetry-on run exports, bundled for the harness.

    Surfaced as ``RunResult.telemetry``; holds live references to the
    registry, tracer, profiler, and the run's event log.
    """

    def __init__(self, metrics, tracer, profiler, log) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.profiler = profiler
        self.log = log

    def summary(self) -> dict[str, Any]:
        """JSON-able digest: metric values, span tallies, phase profile."""
        snap = self.metrics.snapshot()
        metrics: dict[str, Any] = {}
        for name, family in snap.items():
            series = {
                "|".join(k): (v if not isinstance(v, dict) else
                              {"count": v["count"], "sum": v["sum"]})
                for k, v in family["series"].items()
            }
            metrics[name] = {"kind": family["kind"], "series": series}
        return {
            "metrics": metrics,
            "spans": {
                "totals": self.tracer.name_totals(),
                "open": self.tracer.open_count,
                "evicted": self.tracer.evicted,
            },
            "events": self.log.kind_totals(),
            "profile": self.profiler.summary() if self.profiler else {},
        }

    def to_jsonl(self) -> str:
        """Spans and structured events merged into one JSONL trace."""
        return merged_jsonl(self.tracer, self.log)

    def prometheus(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        return to_prometheus(self.metrics)


class _SessionSpans:
    __slots__ = ("root", "stage")

    def __init__(self, root: int, stage: int) -> None:
        self.root = root
        self.stage = stage


class RunTelemetry:
    """Observer attached to a simulation when the spec enables telemetry."""

    def __init__(self, max_spans: int = 100_000, profiling: bool = True) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer(max_spans=max_spans)
        self.profiler = PhaseProfiler() if profiling else None
        self._sessions: dict[int, _SessionSpans] = {}
        self._last_step: dict[str, float] = {}
        self._sim: "FederatedSimulation | None" = None
        self._secure_cores: dict[str, Any] = {}
        self._swept: dict[tuple[str, tuple[str, ...]], float] = {}
        self._faults_annotated = 0
        for name, (kind, help_text, labels) in METRIC_CATALOG.items():
            if kind == "counter":
                self.metrics.counter(name, help_text, labels)
            elif kind == "gauge":
                self.metrics.gauge(name, help_text, labels)
            else:
                self.metrics.histogram(
                    name, help_text, labels,
                    buckets=_BUCKETS.get(name, DEFAULT_BUCKETS),
                )
        # Pre-resolved series for the fleet's per-session hot path: one
        # bound-method call per event instead of the full labeled lookup.
        self._fleet_ok = self.metrics._series("fleet_sessions_total", ("aggregated",))
        self._fleet_failed = self.metrics._series("fleet_sessions_total", ("failed",))
        self._fleet_dur = self.metrics._series("round_trip_seconds", ("fleet",))

    # -- wiring ---------------------------------------------------------------

    def attach(self, sim: "FederatedSimulation") -> "RunTelemetry":
        """Install this observer on a built simulation (system plane)."""
        self._sim = sim
        sim.telemetry = self
        sim.coordinator.observer = self
        for rt in sim.task_runtimes.values():
            rt.observer = self
            if self.profiler is not None:
                self._attach_profiler(rt.core)
        return self

    def _attach_profiler(self, core) -> None:
        """Hand the profiler to every core that exposes a ``profiler`` seam."""
        if hasattr(type(core), "profiler"):
            core.profiler = self.profiler
        pool = getattr(core, "pool", None) or getattr(core, "_pool", None)
        if pool is not None and hasattr(type(pool), "profiler"):
            pool.profiler = self.profiler

    # -- orchestrator hooks ---------------------------------------------------

    def on_checkin(self, status: str) -> None:
        """One check-in resolved (assigned / saturated / cooldown / ...)."""
        self.metrics.inc("checkins_total", (status,))

    def on_heartbeat(self, sim: "FederatedSimulation") -> None:
        """Heartbeat tick: sample in-flight sessions and queue backlogs."""
        for name, rt in sim.task_runtimes.items():
            self.metrics.set("inflight_sessions", rt.active_count(), (name,))
        for node in sim.aggregators:
            self.metrics.set(
                "queue_depth_seconds", node.queue_depth_seconds(),
                (str(node.node_id),),
            )

    # -- session lifecycle hooks (client runtime) -----------------------------

    def on_session_begin(self, session: "ClientSession") -> None:
        """A selected client attached; open its round-trip span tree."""
        now = session.sim.now
        root = self.tracer.start(
            "round_trip", now,
            task=session.task_rt.config.name, device=session.device_id,
        )
        stage = self.tracer.start("download", now, parent=root)
        self._sessions[id(session)] = _SessionSpans(root, stage)

    def _next_stage(self, session: "ClientSession", name: str) -> None:
        entry = self._sessions.get(id(session))
        if entry is None:
            return
        now = session.sim.now
        self.tracer.end(entry.stage, now)
        entry.stage = self.tracer.start(name, now, parent=entry.root)

    def on_session_downloaded(self, session: "ClientSession") -> None:
        """Download finished; the training stage starts."""
        self._next_stage(session, "train")

    def on_session_upload(self, session: "ClientSession") -> None:
        """Training finished; the report + upload stage starts."""
        self._next_stage(session, "upload")

    def on_update_admitted(self, session, outcome, staleness: int) -> None:
        """The aggregation core accepted this session's upload."""
        now = session.sim.now
        task = session.task_rt.config.name
        label = outcome.name.lower()
        entry = self._sessions.get(id(session))
        if entry is not None:
            self.tracer.end(entry.stage, now)
            entry.stage = self.tracer.record(
                "admit", now, now, parent=entry.root,
                outcome=label, staleness=staleness,
            )
        self.metrics.inc("updates_admitted_total", (task, label))
        self.metrics.observe("update_staleness", staleness, (task,))

    def on_session_end(self, session, outcome, exec_time: float) -> None:
        """Terminal outcome reached; close the round-trip span."""
        now = session.sim.now
        task = session.task_rt.config.name
        label = outcome.name.lower()
        entry = self._sessions.pop(id(session), None)
        if entry is not None:
            # end() is idempotent: a stage already closed (or recorded as
            # an instantaneous admit span) is left untouched.
            self.tracer.end(entry.stage, now, status=label)
            self.tracer.end(entry.root, now, status=label, exec_time_s=exec_time)
        self.metrics.inc("sessions_total", (task, label))
        self.metrics.observe("round_trip_seconds", now - session.start_time, (task,))

    # -- aggregator hooks -----------------------------------------------------

    def on_enqueue(self, task: str, wait_s: float) -> None:
        """An upload was queued; record its wait before processing."""
        self.metrics.observe("queue_wait_seconds", wait_s, (task,))

    def on_server_step(self, task: str, step, loss: float, now: float) -> None:
        """A server step closed one task round; record the round span."""
        start = self._last_step.get(task, 0.0)
        self._last_step[task] = now
        self.tracer.record(
            "round", start, now,
            task=task, version=step.version, num_updates=step.num_updates,
            loss=loss,
        )
        self.metrics.inc("server_steps_total", (task,))
        core = self._secure_sharded_core(task)
        if core is not None:
            self.tracer.record(
                "secagg_epoch", start, now,
                task=task, version=step.version,
                num_updates=step.num_updates,
                live_shards=len(core.live_shards()),
                shard_folds=core.shard_loads(),
            )

    def _secure_sharded_core(self, task: str):
        """The task's core when it is a secure *sharded* one, else None.

        Duck-typed on the conjunction of per-shard load telemetry and
        boundary meters — the float sharded core has the former, the
        single secure core the latter, only ``secure_sharded`` has both.
        Resolved once per task and cached (read-only lookup)."""
        if task in self._secure_cores:
            return self._secure_cores[task]
        core = None
        if self._sim is not None:
            rt = self._sim.task_runtimes.get(task)
            candidate = getattr(rt, "core", None)
            if (
                candidate is not None
                and hasattr(candidate, "shard_loads")
                and hasattr(candidate, "boundary_bytes_in_total")
            ):
                core = candidate
        self._secure_cores[task] = core
        return core

    # -- coordinator hooks ----------------------------------------------------

    def on_failover(self, reason: str) -> None:
        """The coordinator re-placed a task or shard after a failure."""
        self.metrics.inc("task_failovers_total", (reason,))

    # -- fleet hooks (columnar million-client driver) -------------------------

    def on_fleet_tick(self, admitted: int, turned_away: int, ineligible: int) -> None:
        """One fleet tick's arrival accounting (vectorized, per tick)."""
        if admitted:
            self.metrics.inc("fleet_arrivals_total", ("admitted",), admitted)
        if turned_away:
            self.metrics.inc("fleet_arrivals_total", ("turned_away",), turned_away)
        if ineligible:
            self.metrics.inc("fleet_arrivals_total", ("ineligible",), ineligible)

    def on_fleet_session_end(
        self, device_id: int, start: float, now: float, failed: bool, deep: bool
    ) -> None:
        """One fleet session completed; spans only for deep-traced sessions."""
        (self._fleet_failed if failed else self._fleet_ok).inc()
        self._fleet_dur.observe(now - start)
        if deep:
            self.tracer.record(
                "fleet_session", start, now,
                status="failed" if failed else "ok", device=device_id,
            )

    # -- finalize -------------------------------------------------------------

    def _sweep(self, name: str, labels: tuple[str, ...], current: float) -> None:
        """Fold an externally-accumulated counter in, idempotently."""
        key = (name, labels)
        delta = current - self._swept.get(key, 0.0)
        if delta > 0:
            self.metrics.inc(name, labels, delta)
            self._swept[key] = current

    def finalize(self, result: "RunResult") -> TelemetryReport:
        """Read-only end-of-run sweep; returns the exportable report.

        Folds component counters (coordinator, selectors, secure cores)
        into the registry, counts fault events, and annotates completed
        round-trip spans with the fault windows that overlapped them.
        """
        sim = self._sim
        if sim is not None:
            coord = sim.coordinator
            self._sweep("assignments_total", ("made",), coord.assignments_made)
            self._sweep(
                "assignments_total", ("rejected",), coord.assignments_rejected)
            self._sweep(
                "stale_map_retries_total", (),
                sum(s.stale_map_retries for s in sim.selectors),
            )
            for name, rt in sim.task_runtimes.items():
                core = rt.core
                bin_ = getattr(core, "boundary_bytes_in_total", None)
                if bin_ is not None:
                    self._sweep("secagg_boundary_bytes_total", ("in",), bin_)
                    self._sweep(
                        "secagg_boundary_bytes_total", ("out",),
                        core.boundary_bytes_out_total,
                    )
                    shard_loads = getattr(core, "shard_loads", None)
                    if shard_loads is not None:
                        for sid, folds in enumerate(shard_loads()):
                            self._sweep(
                                "secagg_shard_folds_total",
                                (name, str(sid)), folds,
                            )
        for kind, total in result.log.kind_totals().items():
            if kind.startswith("fault_") or kind == "upload_lost":
                self._sweep("fault_events_total", (kind,), total)
        self._annotate_faults(result)
        return TelemetryReport(
            self.metrics, self.tracer, self.profiler, result.log
        )

    def _annotate_faults(self, result: "RunResult") -> None:
        """Attach overlapping fault windows to completed round-trip spans."""
        windows: list[tuple[str, float, float]] = []
        seen = 0
        for record in result.log:
            if not (record.kind.startswith("fault_") or record.kind == "upload_lost"):
                continue
            seen += 1
            if seen <= self._faults_annotated:
                continue  # already applied by an earlier finalize
            end = float(record.detail.get("until_s", record.time))
            windows.append((record.kind, record.time, end))
        self._faults_annotated = seen
        if not windows:
            return
        spans = [
            s for s in self.tracer.completed()
            if s.name in ("round_trip", "fleet_session")
        ] + self.tracer.open_spans()
        for kind, start, end in windows:
            for span in spans:
                span_end = span.end_s if span.end_s is not None else float("inf")
                if span.start_s <= end and span_end >= start:
                    span.annotate({"fault": kind, "at_s": start, "until_s": end})
