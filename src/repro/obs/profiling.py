"""Wall-clock phase profiling of the real hot paths.

Unlike everything else in the observability plane, this module measures
*wall* time (``time.perf_counter``), not simulated time: it answers
"where do the host's cycles actually go" — shard fold kernels, the
:class:`~repro.core.parallel.ShardWorkerPool` dispatch/merge barriers,
secure-aggregation block ops.  Wall-clock numbers are therefore outside
every determinism contract (two runs of the same spec report different
microseconds); only their *existence* and phase names are pinned.

The profiler keeps per-phase exact count/total plus a ring of the most
recent ``max_samples`` durations for percentile estimates — a ring, not
a reservoir, because sampling must not draw randomness (the profiler is
attached to cores that sit inside deterministic simulations).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager

__all__ = ["PhaseProfiler"]


class _PhaseStats:
    __slots__ = ("count", "total_s", "max_s", "samples")

    def __init__(self, max_samples: int) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.samples: deque[float] = deque(maxlen=max_samples)


class PhaseProfiler:
    """Aggregates wall-clock durations per named phase into percentiles.

    >>> prof = PhaseProfiler()
    >>> for ms in (1, 2, 3, 4, 5):
    ...     prof.record("fold", ms / 1000.0)
    >>> prof.summary()["fold"]["count"]
    5
    """

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        self.max_samples = max_samples
        self._phases: dict[str, _PhaseStats] = {}

    def record(self, phase: str, seconds: float) -> None:
        """Add one measured duration to ``phase``."""
        stats = self._phases.get(phase)
        if stats is None:
            stats = self._phases[phase] = _PhaseStats(self.max_samples)
        stats.count += 1
        stats.total_s += seconds
        if seconds > stats.max_s:
            stats.max_s = seconds
        stats.samples.append(seconds)

    @contextmanager
    def measure(self, phase: str):
        """Context manager timing its body into ``phase``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(phase, time.perf_counter() - t0)

    # -- reading ------------------------------------------------------------

    def phases(self) -> list[str]:
        """Observed phase names, sorted."""
        return sorted(self._phases)

    def count(self, phase: str) -> int:
        """Exact observation count of one phase (0 when never observed)."""
        stats = self._phases.get(phase)
        return 0 if stats is None else stats.count

    def percentile(self, phase: str, q: float) -> float:
        """q-th percentile (0..100) over the retained sample ring."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        stats = self._phases.get(phase)
        if stats is None or not stats.samples:
            return 0.0
        ordered = sorted(stats.samples)
        rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-phase aggregate: exact count/total/mean/max + ring percentiles."""
        out: dict[str, dict[str, float]] = {}
        for phase in sorted(self._phases):
            stats = self._phases[phase]
            out[phase] = {
                "count": stats.count,
                "total_s": stats.total_s,
                "mean_s": stats.total_s / stats.count if stats.count else 0.0,
                "max_s": stats.max_s,
                "p50_s": self.percentile(phase, 50.0),
                "p90_s": self.percentile(phase, 90.0),
                "p99_s": self.percentile(phase, 99.0),
                "sampled": len(stats.samples),
            }
        return out
