"""Deterministic in-process metrics: labeled counters, gauges, histograms.

The registry is the observability plane's numeric surface.  Three design
constraints shape it:

* **determinism** — instruments never draw randomness and never read the
  wall clock; a snapshot of the same simulated run is identical across
  processes and platforms (wall-clock *profiling* lives separately in
  :mod:`repro.obs.profiling`, outside every determinism contract);
* **bounded memory at fleet scale** — a family caps its label-set
  cardinality (``max_series``); observations past the cap fold into one
  overflow series with an exact count, mirroring the retained-vs-exact
  split of :class:`repro.sim.trace.BoundedMetricsTrace`, so a
  million-client run cannot grow an unbounded label space;
* **zero cost when off** — :class:`NullRegistry` implements the same
  surface as no-ops handing out shared singleton instruments, so
  telemetry-off call sites pay one attribute load and nothing else.

Histograms are fixed-bucket (upper bounds chosen at declaration time):
cumulative bucket counts plus exact sum/count, the Prometheus histogram
shape, exported by :mod:`repro.obs.export`.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

#: label values folded into when a family exceeds ``max_series``
OVERFLOW_LABEL = "_overflow"

#: default histogram bucket bounds (seconds-flavoured, log-spaced)
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0, 1800.0
)


class Counter:
    """A monotonically non-decreasing count (one labeled series)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value that can go up and down (one labeled series)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """Fixed-bucket distribution: bucket counts + exact sum and count."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be non-empty, sorted, unique")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +inf tail bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per bound (Prometheus ``le`` semantics),
        ending with the +inf bucket (== ``count``)."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation; +inf tail reports the last bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for i, c in enumerate(self.bucket_counts):
            running += c
            if running >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]


class _Family:
    """One named metric family: kind, help text, labeled series."""

    __slots__ = ("name", "kind", "help", "label_names", "max_series",
                 "series", "overflowed", "_buckets")

    def __init__(self, name, kind, help_text, label_names, max_series, buckets):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = tuple(label_names)
        self.max_series = max_series
        self._buckets = buckets
        self.series: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self.overflowed = 0

    def _make(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self._buckets)

    def labels(self, values: tuple[str, ...]):
        if len(values) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {values!r}"
            )
        series = self.series.get(values)
        if series is None:
            if len(self.series) >= self.max_series:
                # Cardinality cap: fold into the overflow series so the
                # family's totals stay exact while memory stays bounded.
                self.overflowed += 1
                values = (OVERFLOW_LABEL,) * len(self.label_names)
                series = self.series.get(values)
                if series is None:
                    series = self.series[values] = self._make()
                return series
            series = self.series[values] = self._make()
        return series


class MetricsRegistry:
    """A deterministic registry of labeled metric families.

    >>> reg = MetricsRegistry()
    >>> reg.counter("uploads_total", "updates received", ("task",))
    >>> reg.inc("uploads_total", labels=("train",))
    >>> reg.inc("uploads_total", labels=("train",), amount=2)
    >>> reg.snapshot()["uploads_total"]["series"]
    {('train',): 3.0}
    """

    def __init__(self, max_series: int = 1024) -> None:
        if max_series < 1:
            raise ValueError("max_series must be at least 1")
        self.max_series = max_series
        self._families: dict[str, _Family] = {}

    @property
    def enabled(self) -> bool:
        """Telemetry is live (the :class:`NullRegistry` reports False)."""
        return True

    # -- declaration --------------------------------------------------------

    def _declare(self, name, kind, help_text, label_names, buckets=None):
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"bad metric name {name!r}")
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != tuple(label_names):
                raise ValueError(f"metric {name!r} re-declared incompatibly")
            return
        self._families[name] = _Family(
            name, kind, help_text, label_names, self.max_series, buckets
        )

    def counter(self, name: str, help_text: str = "", labels: Iterable[str] = ()):
        """Declare a counter family (idempotent)."""
        self._declare(name, "counter", help_text, tuple(labels))

    def gauge(self, name: str, help_text: str = "", labels: Iterable[str] = ()):
        """Declare a gauge family (idempotent)."""
        self._declare(name, "gauge", help_text, tuple(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        """Declare a fixed-bucket histogram family (idempotent)."""
        self._declare(name, "histogram", help_text, tuple(labels), tuple(buckets))

    # -- observation --------------------------------------------------------

    def _series(self, name: str, labels: tuple[str, ...]):
        family = self._families.get(name)
        if family is None:
            raise KeyError(f"metric {name!r} was never declared")
        # Hot path: callers passing str labels (every emission site in
        # repro) hit the live series dict directly; the normalizing
        # str() pass only runs on a miss (first touch, or non-str
        # label values — which then insert their normalized key).
        series = family.series.get(labels)
        if series is not None:
            return series
        return family.labels(tuple(str(v) for v in labels))

    def inc(self, name: str, labels: tuple[str, ...] = (), amount: float = 1.0):
        """Increment a counter (or adjust a gauge) series."""
        self._series(name, labels).inc(amount)

    def set(self, name: str, value: float, labels: tuple[str, ...] = ()):
        """Set a gauge series."""
        self._series(name, labels).set(value)

    def observe(self, name: str, value: float, labels: tuple[str, ...] = ()):
        """Record one histogram observation."""
        self._series(name, labels).observe(value)

    # -- reading ------------------------------------------------------------

    def families(self) -> list[str]:
        """Declared family names, sorted."""
        return sorted(self._families)

    def get(self, name: str, labels: tuple[str, ...] = ()):
        """The live instrument of one series (KeyError when absent)."""
        family = self._families[name]
        return family.series[tuple(str(v) for v in labels)]

    def value(self, name: str, labels: tuple[str, ...] = ()) -> float:
        """Scalar value of a counter/gauge series (0.0 when never touched)."""
        family = self._families[name]
        series = family.series.get(tuple(str(v) for v in labels))
        return 0.0 if series is None else series.value

    def snapshot(self) -> dict:
        """Deterministic nested-dict view of every family and series."""
        out: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            series: dict = {}
            for key in sorted(family.series):
                inst = family.series[key]
                if isinstance(inst, Histogram):
                    series[key] = {
                        "count": inst.count,
                        "sum": inst.sum,
                        "buckets": dict(zip(inst.bounds, inst.cumulative())),
                    }
                else:
                    series[key] = inst.value
            out[name] = {
                "kind": family.kind,
                "help": family.help,
                "labels": family.label_names,
                "series": series,
                "overflowed": family.overflowed,
            }
        return out

    def approx_bytes(self) -> int:
        """Rough in-memory footprint (for the bounded-memory contract)."""
        total = 0
        for family in self._families.values():
            for inst in family.series.values():
                total += 64
                if isinstance(inst, Histogram):
                    total += 8 * (len(inst.bounds) + 1)
        return total


class _NullInstrument:
    """Shared do-nothing instrument handed out by :class:`NullRegistry`."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The zero-cost registry used when telemetry is off.

    Implements the full :class:`MetricsRegistry` surface as no-ops, so
    call sites never branch on "is telemetry on" beyond the single
    ``observer is None`` check the system layer already performs.
    """

    __slots__ = ()

    enabled = False

    def counter(self, name, help_text="", labels=()):
        """No-op."""

    def gauge(self, name, help_text="", labels=()):
        """No-op."""

    def histogram(self, name, help_text="", labels=(), buckets=DEFAULT_BUCKETS):
        """No-op."""

    def inc(self, name, labels=(), amount=1.0):
        """No-op."""

    def set(self, name, value, labels=()):
        """No-op."""

    def observe(self, name, value, labels=()):
        """No-op."""

    def families(self):
        """Always empty."""
        return []

    def value(self, name, labels=()):
        """Always 0.0."""
        return 0.0

    def snapshot(self):
        """Always empty."""
        return {}

    def approx_bytes(self):
        """Always 0."""
        return 0


#: process-wide shared instance (stateless, so sharing is safe)
NULL_REGISTRY = NullRegistry()
