"""Export formats: JSONL event/span streams and Prometheus text exposition.

Two consumers, two formats:

* **JSONL** — one JSON object per line, each tagged with a ``record``
  discriminator (``"event"`` for :class:`~repro.utils.logging.EventRecord`
  rows, ``"span"`` for :class:`~repro.obs.tracing.Span` rows), so one
  file carries the full causal trace of a run and stream processors can
  filter by tag.  Events and spans both carry simulated timestamps, so
  sorting the merged stream by time reconstructs the run.

* **Prometheus text exposition** (version 0.0.4) — the
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot rendered the way
  a scrape endpoint would serve it: ``# HELP`` / ``# TYPE`` headers,
  labeled samples, histogram ``_bucket``/``_sum``/``_count`` triplets.
  Deterministic: families and label sets are emitted sorted.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import SpanTracer
    from repro.utils.logging import EventLog

__all__ = ["spans_to_jsonl", "events_to_jsonl", "merged_jsonl", "to_prometheus"]


def spans_to_jsonl(tracer: "SpanTracer") -> str:
    """Every retained span (completed, then still-open) as JSON lines."""
    return "\n".join(
        json.dumps({"record": "span", **doc}, sort_keys=True)
        for doc in tracer.to_dicts()
    )


def events_to_jsonl(log: "EventLog") -> str:
    """Every retained structured event as JSON lines."""
    lines = []
    for record in log:
        doc = record.to_dict()
        lines.append(
            json.dumps(
                {"record": "event", **doc},
                sort_keys=True,
                default=_event_default,
            )
        )
    return "\n".join(lines)


def _event_default(value):
    from repro.utils.logging import _json_default

    return _json_default(value)


def merged_jsonl(tracer: "SpanTracer", log: "EventLog") -> str:
    """Spans and events merged into one stream, sorted by simulated time.

    Spans sort on their start time; ties break events-first (an event at
    ``t`` observes state the span starting at ``t`` is about to create).
    """
    rows: list[tuple[float, int, str]] = []
    for line in events_to_jsonl(log).splitlines():
        rows.append((json.loads(line)["time"], 0, line))
    for line in spans_to_jsonl(tracer).splitlines():
        rows.append((json.loads(line)["start_s"], 1, line))
    rows.sort(key=lambda r: (r[0], r[1]))
    return "\n".join(line for _, _, line in rows)


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _label_str(names, values) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{v}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


def to_prometheus(registry: "MetricsRegistry") -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    >>> from repro.obs.metrics import MetricsRegistry
    >>> reg = MetricsRegistry()
    >>> reg.counter("uploads_total", "updates received", ("task",))
    >>> reg.inc("uploads_total", labels=("train",))
    >>> print(to_prometheus(reg))
    # HELP uploads_total updates received
    # TYPE uploads_total counter
    uploads_total{task="train"} 1
    """
    snap = registry.snapshot()
    lines: list[str] = []
    for name in sorted(snap):
        family = snap[name]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        label_names = family["labels"]
        for values in sorted(family["series"]):
            sample = family["series"][values]
            labels = _label_str(label_names, values)
            if family["kind"] == "histogram":
                for bound, cum in sample["buckets"].items():
                    le = _label_str(label_names + ("le",), values + (bound,))
                    lines.append(f"{name}_bucket{le} {cum}")
                inf = _label_str(label_names + ("le",), values + ("+Inf",))
                lines.append(f"{name}_bucket{inf} {sample['count']}")
                lines.append(f"{name}_sum{labels} {_format_value(sample['sum'])}")
                lines.append(f"{name}_count{labels} {sample['count']}")
            else:
                lines.append(f"{name}{labels} {_format_value(sample)}")
    return "\n".join(lines)
