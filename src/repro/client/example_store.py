"""On-device Example Store (paper Appendix E.5).

"An Example Store collects training data in persistent storage and
enforces the data use and retention policy."  This is that component for
one simulated device: examples are ingested with timestamps, query-able
for training, and *expired* — by age and by count — so a device never
trains on data the policy says it must have deleted.

Policy enforcement is on the read path as well as explicit purges: an
expired example can never be returned, even if no purge ran since it
expired.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetentionPolicy", "StoredExample", "ExampleStore"]


@dataclass(frozen=True)
class RetentionPolicy:
    """Data-retention rules of the Example Store.

    Attributes
    ----------
    max_age_s:
        Examples older than this are expired (None = no age limit).
    max_examples:
        Keep at most this many examples, evicting the oldest first
        (None = unbounded).
    allowed_tasks:
        If set, only these task names may read the store — the "data use
        policy" half of the contract.
    """

    max_age_s: float | None = 30 * 24 * 3600.0
    max_examples: int | None = 5000
    allowed_tasks: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if self.max_age_s is not None and self.max_age_s <= 0:
            raise ValueError("max_age_s must be positive")
        if self.max_examples is not None and self.max_examples < 1:
            raise ValueError("max_examples must be at least 1")


@dataclass(frozen=True)
class StoredExample:
    """One training example with its ingestion time."""

    x: np.ndarray
    y: np.ndarray
    ingested_at: float


class ExampleStore:
    """Per-device example storage with policy enforcement."""

    def __init__(self, policy: RetentionPolicy | None = None):
        self.policy = policy or RetentionPolicy()
        self._examples: list[StoredExample] = []
        self.total_ingested = 0
        self.total_expired = 0

    # -- write path ------------------------------------------------------------

    def ingest(self, x: np.ndarray, y: np.ndarray, now: float) -> None:
        """Store one example observed at time ``now``."""
        if self._examples and now < self._examples[-1].ingested_at:
            raise ValueError("ingestion times must be non-decreasing")
        self._examples.append(StoredExample(x=x, y=y, ingested_at=now))
        self.total_ingested += 1
        self._enforce_count()

    def ingest_batch(self, xs: np.ndarray, ys: np.ndarray, now: float) -> None:
        """Store a batch of examples with a common timestamp."""
        for x, y in zip(xs, ys):
            self.ingest(x, y, now)

    # -- policy enforcement ------------------------------------------------------

    def _enforce_count(self) -> None:
        limit = self.policy.max_examples
        if limit is not None and len(self._examples) > limit:
            evicted = len(self._examples) - limit
            self._examples = self._examples[evicted:]
            self.total_expired += evicted

    def purge_expired(self, now: float) -> int:
        """Drop examples beyond the age limit; returns how many."""
        if self.policy.max_age_s is None:
            return 0
        cutoff = now - self.policy.max_age_s
        keep = [e for e in self._examples if e.ingested_at >= cutoff]
        expired = len(self._examples) - len(keep)
        self._examples = keep
        self.total_expired += expired
        return expired

    def _check_task(self, task: str | None) -> None:
        allowed = self.policy.allowed_tasks
        if allowed is not None and (task is None or task not in allowed):
            raise PermissionError(
                f"task {task!r} is not permitted to read this example store"
            )

    # -- read path ------------------------------------------------------------

    def count(self, now: float) -> int:
        """Live (non-expired) example count at time ``now``."""
        self.purge_expired(now)
        return len(self._examples)

    def training_arrays(
        self, now: float, task: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """All live examples as stacked (x, y) arrays.

        Raises
        ------
        PermissionError
            If the policy restricts readers and ``task`` is not allowed.
        ValueError
            If no live examples remain.
        """
        self._check_task(task)
        self.purge_expired(now)
        if not self._examples:
            raise ValueError("no live examples in the store")
        xs = np.stack([e.x for e in self._examples])
        ys = np.stack([e.y for e in self._examples])
        return xs, ys
