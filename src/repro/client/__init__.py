"""Edge Training Engine: Example Store + pluggable Executor (Appendix E.5)."""

from repro.client.example_store import ExampleStore, RetentionPolicy, StoredExample
from repro.client.executor import (
    Executor,
    NextWordTask,
    TopicClassificationTask,
    TrainingTask,
)

__all__ = [
    "ExampleStore",
    "RetentionPolicy",
    "StoredExample",
    "Executor",
    "NextWordTask",
    "TopicClassificationTask",
    "TrainingTask",
]
