"""On-device Executor: pluggable training tasks (paper Appendix E.5).

"An Executor abstracts model training logic in a general way that supports
easily swapping in different ML tasks (data source, model, loss, etc.)."

:class:`TrainingTask` is that abstraction: it owns the model architecture,
initialization, loss/gradient, and evaluation — all against flat parameter
vectors so the FL stack above stays task-agnostic.  Two concrete tasks
demonstrate the swap:

* :class:`NextWordTask` — the paper's LSTM next-word predictor;
* :class:`TopicClassificationTask` — softmax regression over bag-of-words
  features predicting a client's dominant topic (a second, structurally
  different workload on the same corpus).

:class:`Executor` runs any task over an :class:`ExampleStore` or raw
arrays: local epochs of mini-batch SGD, returning the model delta — the
same contract as :class:`repro.core.client_trainer.LocalTrainer`, which is
the LM-specialized fast path of this engine.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.client.example_store import ExampleStore
from repro.core.types import TrainingResult
from repro.nn import layers
from repro.nn.loss import cross_entropy
from repro.nn.model import LSTMLanguageModel, ModelConfig
from repro.nn.optim import SGD
from repro.nn.parameters import ParamSpec
from repro.utils.rng import child_rng

__all__ = ["TrainingTask", "NextWordTask", "TopicClassificationTask", "Executor"]


class TrainingTask(abc.ABC):
    """A swappable ML task: init, loss/grad, evaluate over flat vectors."""

    @property
    @abc.abstractmethod
    def num_params(self) -> int:
        """Scalar parameter count."""

    @abc.abstractmethod
    def init_params(self, seed: int) -> np.ndarray:
        """Fresh flat parameter vector."""

    @abc.abstractmethod
    def loss_and_grad(
        self, flat: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Mean loss and flat gradient on a batch."""

    @abc.abstractmethod
    def evaluate(self, flat: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
        """Mean loss without gradients."""


class NextWordTask(TrainingTask):
    """The paper's workload: LSTM next-word prediction."""

    def __init__(self, config: ModelConfig):
        self.config = config
        self._workspace = LSTMLanguageModel(config, seed=0)

    @property
    def num_params(self) -> int:
        return self._workspace.num_params

    def init_params(self, seed: int) -> np.ndarray:
        return LSTMLanguageModel(self.config, seed=seed).get_flat()

    def loss_and_grad(self, flat, x, y):
        self._workspace.set_flat(flat)
        return self._workspace.loss_and_grad(x, y)

    def evaluate(self, flat, x, y):
        self._workspace.set_flat(flat)
        return self._workspace.evaluate(x, y)


class TopicClassificationTask(TrainingTask):
    """Softmax regression over bag-of-words counts — a second task type.

    Input ``x``: an integer token sequence (same wire format as the LM
    task); it is featurized on the fly into normalized token counts.
    Target ``y``: a class label per sequence (e.g. the client's dominant
    topic).
    """

    def __init__(self, vocab_size: int, n_classes: int):
        if vocab_size < 2 or n_classes < 2:
            raise ValueError("vocab_size and n_classes must be at least 2")
        self.vocab_size = vocab_size
        self.n_classes = n_classes
        template = layers.init_linear(np.random.default_rng(0), vocab_size, n_classes)
        self.spec = ParamSpec.from_params(template)

    @property
    def num_params(self) -> int:
        return self.spec.size

    def init_params(self, seed: int) -> np.ndarray:
        params = layers.init_linear(child_rng(seed, "topic-task"),
                                    self.vocab_size, self.n_classes)
        return self.spec.flatten(params)

    def _features(self, x: np.ndarray) -> np.ndarray:
        counts = np.zeros((x.shape[0], self.vocab_size), dtype=np.float32)
        for i, row in enumerate(x):
            counts[i] = np.bincount(row, minlength=self.vocab_size)
        return counts / np.maximum(counts.sum(axis=1, keepdims=True), 1.0)

    def loss_and_grad(self, flat, x, y):
        params = self.spec.unflatten(flat)
        feats = self._features(np.asarray(x))
        logits, cache = layers.linear_forward(params, feats)
        loss, d_logits = cross_entropy(logits, np.asarray(y).reshape(-1))
        _, grads = layers.linear_backward(cache, d_logits)
        return loss, self.spec.flatten(grads)

    def evaluate(self, flat, x, y):
        params = self.spec.unflatten(flat)
        logits, _ = layers.linear_forward(params, self._features(np.asarray(x)))
        loss, _ = cross_entropy(logits, np.asarray(y).reshape(-1), with_grad=False)
        return loss

    def accuracy(self, flat, x, y) -> float:
        """Classification accuracy (handy for the example scripts)."""
        params = self.spec.unflatten(flat)
        logits, _ = layers.linear_forward(params, self._features(np.asarray(x)))
        return float((logits.argmax(axis=1) == np.asarray(y).reshape(-1)).mean())


class Executor:
    """Runs one local-training participation for any :class:`TrainingTask`.

    Parameters
    ----------
    task:
        The pluggable workload.
    lr, batch_size, epochs, clip_norm:
        Local SGD hyperparameters (paper defaults: 1 epoch, B=32).
    seed:
        Root for batch-shuffling streams.
    """

    def __init__(
        self,
        task: TrainingTask,
        lr: float = 0.5,
        batch_size: int = 32,
        epochs: int = 1,
        clip_norm: float | None = 5.0,
        seed: int = 0,
    ):
        if batch_size < 1 or epochs < 1:
            raise ValueError("batch_size and epochs must be at least 1")
        self.task = task
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self.clip_norm = clip_norm
        self.seed = seed

    def run(
        self,
        initial_model: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        client_id: int = 0,
        initial_version: int = 0,
        participation: int = 0,
    ) -> TrainingResult:
        """Local epochs of SGD on the given arrays; returns the delta."""
        opt = SGD(lr=self.lr, clip_norm=self.clip_norm)
        rng = child_rng(self.seed, "executor", client_id, participation)
        vec = initial_model.astype(np.float32, copy=True)
        losses = []
        n = x.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for i in range(0, n, self.batch_size):
                idx = order[i : i + self.batch_size]
                loss, grad = self.task.loss_and_grad(vec, x[idx], y[idx])
                vec = opt.step(vec, grad)
                losses.append(loss)
        return TrainingResult(
            client_id=client_id,
            delta=(vec - initial_model).astype(np.float32),
            num_examples=n,
            train_loss=float(np.mean(losses)) if losses else float("nan"),
            initial_version=initial_version,
        )

    def run_from_store(
        self,
        initial_model: np.ndarray,
        store: ExampleStore,
        now: float,
        task_name: str | None = None,
        **kwargs,
    ) -> TrainingResult:
        """Train on a device's Example Store, honoring its policy."""
        x, y = store.training_arrays(now, task=task_name)
        return self.run(initial_model, x, y, **kwargs)
