"""FedBuff — buffered asynchronous aggregation (Nguyen et al., 2021).

This is the algorithm PAPAYA's AsyncFL mode implements (Section 3.1):

* there are no rounds — clients download, train, and upload independently;
* the aggregator accumulates a *staleness- and example-weighted* sum of
  client deltas in a buffer;
* when the buffer holds ``K`` (the aggregation goal) updates, the weighted
  average is handed to the server optimizer, the model version increments,
  and the buffer resets;
* clients whose update would be too stale are aborted (Appendix E.2).

The core here is deliberately free of any notion of time or transport —
the discrete-event system layer (:mod:`repro.system`) drives it.  It is
also free of any notion of *what* the vectors mean, via the model-state
interface in :mod:`repro.core.state`, so the identical bookkeeping runs
both real-gradient and surrogate experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.staleness import PolynomialStaleness, StalenessPolicy
from repro.core.types import ModelUpdate, TrainingResult

__all__ = ["ServerStepInfo", "FedBuffAggregator"]


@dataclass(frozen=True)
class ServerStepInfo:
    """Telemetry for one server model update.

    Attributes
    ----------
    version:
        Model version *produced* by this step (first step produces 1).
    num_updates:
        Client updates aggregated into this step (== K for FedBuff;
        == goal for SyncFL).
    total_weight:
        Sum of aggregation weights in the buffer.
    mean_staleness / max_staleness:
        Staleness statistics of the aggregated updates.
    contributors:
        Client ids whose updates were aggregated.
    discarded:
        Client ids whose updates arrived but were thrown away (SyncFL
        over-selection only; always empty for FedBuff).
    """

    version: int
    num_updates: int
    total_weight: float
    mean_staleness: float
    max_staleness: int
    contributors: tuple[int, ...]
    discarded: tuple[int, ...] = ()


class FedBuffAggregator:
    """Buffered asynchronous aggregation with staleness weighting.

    Parameters
    ----------
    state:
        Model state (real vector + server optimizer, or surrogate).
    goal:
        ``K`` — updates per server step (paper: 10–30 % of concurrency
        works well; their headline runs use K=100).
    staleness_policy:
        Down-weighting of stale updates; default ``1/sqrt(1+s)``.
    max_staleness:
        In-flight clients beyond this staleness are reported by
        :meth:`stale_clients` for aborting.
    example_weighting:
        ``"linear"`` (paper: weight by the number of examples trained
        on), ``"log"`` (dampened, log1p), or ``"none"``.
    normalize_by:
        ``"weight_sum"`` divides the buffer by the total weight
        (weighted mean, default); ``"goal"`` divides by K as in the
        original FedBuff formulation.
    """

    def __init__(
        self,
        state,
        goal: int,
        staleness_policy: StalenessPolicy | None = None,
        max_staleness: int = 100,
        example_weighting: str = "linear",
        normalize_by: str = "weight_sum",
    ):
        if goal < 1:
            raise ValueError("aggregation goal must be at least 1")
        if example_weighting not in ("linear", "log", "none"):
            raise ValueError(f"unknown example_weighting {example_weighting!r}")
        if normalize_by not in ("weight_sum", "goal"):
            raise ValueError(f"unknown normalize_by {normalize_by!r}")
        self.state = state
        self.goal = goal
        self.staleness_policy = staleness_policy or PolynomialStaleness(0.5)
        self.max_staleness = max_staleness
        self.example_weighting = example_weighting
        self.normalize_by = normalize_by

        self.version = 0
        self.updates_received = 0
        self._buffer: np.ndarray | None = None
        self._weight_sum = 0.0
        self._count = 0
        self._staleness_acc: list[int] = []
        self._contributors: list[int] = []
        self._in_flight: dict[int, int] = {}  # client id -> initial version
        self.step_history: list[ServerStepInfo] = []

    # -- client protocol ------------------------------------------------------

    def register_download(self, client_id: int) -> tuple[int, np.ndarray]:
        """A client downloads the current model; returns (version, vector).

        The aggregator records the client's initial model version, which is
        how staleness is tracked (Appendix E.2: "For each client, the
        aggregator records initial model version").
        """
        self._in_flight[client_id] = self.version
        return self.version, self.state.current()

    def client_failed(self, client_id: int) -> None:
        """Drop an in-flight client (device failure, timeout, or abort)."""
        self._in_flight.pop(client_id, None)

    def in_flight_count(self) -> int:
        """Number of clients currently training against this task."""
        return len(self._in_flight)

    def stale_clients(self) -> list[int]:
        """In-flight clients whose staleness already exceeds the maximum.

        The paper aborts these after every server model update
        (Appendix E.2); the system layer calls this right after a step.
        """
        return [
            cid
            for cid, v0 in self._in_flight.items()
            if self.version - v0 > self.max_staleness
        ]

    # -- aggregation ------------------------------------------------------------

    def _example_weight(self, num_examples: int) -> float:
        if self.example_weighting == "linear":
            return float(num_examples)
        if self.example_weighting == "log":
            return float(np.log1p(num_examples))
        return 1.0

    def _transform_result(self, result: TrainingResult) -> TrainingResult:
        """Hook applied to every incoming result before weighting/buffering.

        The base aggregator is a pass-through; subclasses use it for
        per-update preprocessing (e.g. DP clipping) so that both the
        single-update and the vectorized block path share one definition.
        """
        return result

    def _admit(self, result: TrainingResult) -> tuple[TrainingResult, ModelUpdate]:
        """Validate in-flight state and compute one update's weight."""
        initial = self._in_flight.pop(result.client_id, None)
        if initial is None:
            raise KeyError(
                f"client {result.client_id} is not in flight; "
                "updates must follow register_download"
            )
        if initial != result.initial_version:
            raise ValueError(
                f"client {result.client_id} reported initial version "
                f"{result.initial_version}, aggregator recorded {initial}"
            )
        result = self._transform_result(result)
        staleness = self.version - result.initial_version
        weight = self._example_weight(result.num_examples) * self.staleness_policy(
            staleness
        )
        update = ModelUpdate(result=result, arrival_version=self.version, weight=weight)
        self._weight_sum += weight
        self._count += 1
        self.updates_received += 1
        self._staleness_acc.append(staleness)
        self._contributors.append(result.client_id)
        return result, update

    def receive_update(
        self, result: TrainingResult
    ) -> tuple[ModelUpdate, ServerStepInfo | None]:
        """Buffer one client update; maybe trigger a server step.

        Returns the recorded :class:`ModelUpdate` (with the weight that was
        applied) and, if the aggregation goal was reached, the
        :class:`ServerStepInfo` for the step it triggered.
        """
        result, update = self._admit(result)
        if self._buffer is None:
            self._buffer = np.zeros_like(result.delta, dtype=np.float64)
        self._buffer += update.weight * result.delta.astype(np.float64)

        info = None
        if self._count >= self.goal:
            info = self._server_step()
        return update, info

    def receive_update_block(
        self, results: list[TrainingResult]
    ) -> list[tuple[ModelUpdate, ServerStepInfo | None]]:
        """Buffer a vectorized block of client updates.

        Semantically identical to calling :meth:`receive_update` once per
        result, in order — including any server steps triggered mid-block
        (staleness of later updates is measured against the version those
        steps produced).  The accumulation itself is vectorized: each
        goal-bounded chunk enters the float64 buffer as one
        weights-by-deltas matrix product instead of per-update AXPYs, so
        cohort-sized delta blocks (e.g. from the batched
        :class:`~repro.core.cohort.CohortTrainer`) aggregate at GEMM
        speed.  Weighted sums agree with the sequential path to float64
        rounding (~1e-12 relative), far inside the 1e-8 equivalence bound
        the differential suite enforces.
        """
        out: list[tuple[ModelUpdate, ServerStepInfo | None]] = []
        pos = 0
        while pos < len(results):
            take = min(len(results) - pos, self.goal - self._count)
            chunk = results[pos : pos + take]
            pos += take
            admitted: list[tuple[TrainingResult, ModelUpdate]] = []
            try:
                for r in chunk:
                    admitted.append(self._admit(r))
            finally:
                # On a mid-chunk rejection, everything admitted so far is
                # still buffered — the same state the sequential path
                # would have left behind before raising.
                if admitted:
                    weights = np.array(
                        [u.weight for _, u in admitted], dtype=np.float64
                    )
                    deltas = np.stack(
                        [r.delta for r, _ in admitted]
                    ).astype(np.float64)
                    if self._buffer is None:
                        self._buffer = np.zeros(deltas.shape[1], dtype=np.float64)
                    self._buffer += weights @ deltas
            info = self._server_step() if self._count >= self.goal else None
            for i, (_, update) in enumerate(admitted):
                out.append((update, info if i == len(admitted) - 1 else None))
        return out

    def _server_step(self) -> ServerStepInfo:
        denom = self._weight_sum if self.normalize_by == "weight_sum" else float(self.goal)
        if denom <= 0:
            # All-zero weights (e.g. hard-cutoff policy zeroed everything):
            # step over a zero delta so the version still advances.
            avg = np.zeros_like(self._buffer)
        else:
            avg = self._buffer / denom
        self.state.apply(avg.astype(np.float32), self._count)
        self.version += 1
        info = ServerStepInfo(
            version=self.version,
            num_updates=self._count,
            total_weight=self._weight_sum,
            mean_staleness=float(np.mean(self._staleness_acc)),
            max_staleness=int(np.max(self._staleness_acc)),
            contributors=tuple(self._contributors),
        )
        self.step_history.append(info)
        self._buffer = None
        self._weight_sum = 0.0
        self._count = 0
        self._staleness_acc = []
        self._contributors = []
        return info

    def drop_buffer_and_inflight(self) -> tuple[int, list[int]]:
        """Discard buffered updates and in-flight registrations.

        Models aggregator failure/reassignment (Appendix E.4): the task's
        model state and version survive (they are checkpointed), but
        updates sitting in the failed aggregator's in-memory queue and the
        sessions it was driving are lost.  Returns (buffered updates lost,
        in-flight client ids dropped).
        """
        lost = self._count
        dropped = list(self._in_flight)
        self._buffer = None
        self._weight_sum = 0.0
        self._count = 0
        self._staleness_acc = []
        self._contributors = []
        self._in_flight.clear()
        return lost, dropped

    # -- introspection ------------------------------------------------------------

    @property
    def buffered_count(self) -> int:
        """Updates currently sitting in the buffer."""
        return self._count

    def __repr__(self) -> str:
        return (
            f"FedBuffAggregator(goal={self.goal}, version={self.version}, "
            f"buffered={self._count}, in_flight={len(self._in_flight)})"
        )
