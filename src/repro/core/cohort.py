"""Batched cohort execution engine for client-side local training.

:class:`CohortTrainer` is the vectorized counterpart of
:class:`repro.core.client_trainer.LocalTrainer`: it stacks K clients'
parameter vectors and mini-batches along a leading cohort axis and runs
the whole cohort's local SGD through one set of batched LSTM kernels
(:mod:`repro.nn.layers`) per step, instead of K scalar Python loops.

Equivalence guarantee
---------------------
For every client, the delta, per-batch losses, and reported
``train_loss`` are **bit-identical** to what ``LocalTrainer.train`` would
produce for the same ``(initial_model, dataset, initial_version,
participation)``: the same shuffling stream, the same batch sequence, the
same float32 kernels (batched contractions execute the identical per-slice
GEMMs), and the same per-client clipped-SGD arithmetic.  The differential
suite in ``tests/test_batched_equivalence.py`` checks this across
randomized cohorts; it is what lets the system layer swap the engines
freely without touching any experimental result.

Clients in one cohort are fully independent — they may carry different
initial models (e.g. different download versions under FedBuff), dataset
sizes, and participation counters.  Ragged mini-batches (realistic
populations give most clients a single partial batch, each a different
size) are handled by exact row padding: every still-training client's
current batch is zero-padded to the step's max row count and the padded
positions are masked out of the loss and the weight-gradient contractions
(see :mod:`repro.nn.layers`), so one batched call advances the whole
cohort regardless of shape mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.types import TrainingResult
from repro.data.federated import ClientDataset
from repro.nn.model import BatchedLSTMLanguageModel, ModelConfig
from repro.nn.optim import CohortSGD
from repro.utils.rng import child_rng

__all__ = ["CohortRequest", "CohortTrainer"]


@dataclass(frozen=True)
class CohortRequest:
    """One client's deferred training request, as the dispatch layer sees it.

    ``initial_model`` is the flat float32 vector the client downloaded;
    requests within a cohort need not share it (async clients hold
    different model versions).
    """

    initial_model: np.ndarray
    dataset: ClientDataset
    initial_version: int
    participation: int = 0


@dataclass
class _ClientRun:
    """Mutable per-client state while the cohort trains in lockstep."""

    request: CohortRequest
    batches: list[tuple[np.ndarray, np.ndarray]]
    losses: list[float] = field(default_factory=list)


class CohortTrainer:
    """Executes local training for whole cohorts of clients at once.

    Constructor arguments mirror :class:`~repro.core.client_trainer.
    LocalTrainer` exactly — the two are interchangeable backends for "run
    this client's local SGD", one scalar, one batched.

    Parameters
    ----------
    model_config:
        Architecture of the global model (all clients share it).
    lr, batch_size, epochs, clip_norm, seed:
        Local-training hyperparameters, identical in meaning (and in
        resulting arithmetic) to ``LocalTrainer``'s.
    """

    def __init__(
        self,
        model_config: ModelConfig,
        lr: float = 0.5,
        batch_size: int = 32,
        epochs: int = 1,
        clip_norm: float | None = 5.0,
        seed: int = 0,
    ):
        if batch_size < 1 or epochs < 1:
            raise ValueError("batch_size and epochs must be at least 1")
        self.model_config = model_config
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self.clip_norm = clip_norm
        self.seed = seed
        # Stateless across steps (no momentum in the client protocol), so
        # one optimizer serves every shape group.
        self._opt = CohortSGD(lr=lr, clip_norm=clip_norm)
        # Batched model workspaces keyed by cohort-slot count: shape
        # groups recur constantly (full batches dominate), so the K param
        # stacks are allocated once per distinct group size.
        self._models: dict[int, BatchedLSTMLanguageModel] = {}

    @property
    def num_params(self) -> int:
        """Scalar parameter count of the shared architecture."""
        return self._model_for(1).num_params

    def _model_for(self, cohort_size: int) -> BatchedLSTMLanguageModel:
        model = self._models.get(cohort_size)
        if model is None:
            model = BatchedLSTMLanguageModel(self.model_config, cohort_size)
            self._models[cohort_size] = model
        return model

    # -- the batched engine -------------------------------------------------

    def train_cohort(self, requests: list[CohortRequest]) -> list[TrainingResult]:
        """Train every client in ``requests``; results align with the input.

        Each client follows exactly the ``LocalTrainer`` protocol: its own
        shuffling stream (salted by client id and participation), one SGD
        step per mini-batch for ``epochs`` local epochs, delta =
        trained − initial.
        """
        if not requests:
            return []
        runs: list[_ClientRun] = []
        for req in requests:
            rng = child_rng(
                self.seed, "local-shuffle", req.dataset.client_id, req.participation
            )
            batches: list[tuple[np.ndarray, np.ndarray]] = []
            for _ in range(self.epochs):
                batches.extend(req.dataset.train_batches(self.batch_size, rng))
            runs.append(_ClientRun(request=req, batches=batches))

        # Current parameter vector of every client, one row each.
        vecs = np.stack(
            [r.request.initial_model.astype(np.float32, copy=True) for r in runs]
        )

        # Advance every client through its own batch queue, one round at a
        # time.  Clients are independent, so only each client's own batch
        # order matters — which lets a round group clients by the shape of
        # their *next* batch: same-shape groups run on the fully dense
        # kernels (full-size mini-batches cluster naturally), and the
        # shape-unique tails share one padded ragged call instead of K
        # scalar-sized ones.
        pos = [0] * len(runs)
        while True:
            by_shape: dict[tuple[int, ...], list[int]] = {}
            for idx, run in enumerate(runs):
                if pos[idx] < len(run.batches):
                    by_shape.setdefault(run.batches[pos[idx]][0].shape, []).append(idx)
            if not by_shape:
                break
            all_members = [idx for members in by_shape.values() for idx in members]
            if len(by_shape) == 1 or self._merge_ragged(all_members, by_shape):
                # One call for everyone: either uniform (dense kernels) or
                # small enough that a single padded ragged call beats the
                # per-group fixed costs.
                self._step_group(runs, vecs, sorted(all_members), pos)
            else:
                ragged: list[int] = []
                for members in by_shape.values():
                    if len(members) > 1:
                        self._step_group(runs, vecs, members, pos)
                    else:
                        ragged.extend(members)
                if ragged:
                    self._step_group(runs, vecs, ragged, pos)
            for idx in all_members:
                pos[idx] += 1

        results = []
        for idx, run in enumerate(runs):
            req = run.request
            delta = (vecs[idx] - req.initial_model).astype(np.float32)
            results.append(
                TrainingResult(
                    client_id=req.dataset.client_id,
                    delta=delta,
                    num_examples=req.dataset.num_train_examples,
                    train_loss=(
                        float(np.mean(run.losses)) if run.losses else float("nan")
                    ),
                    initial_version=req.initial_version,
                )
            )
        return results

    # Below this many LSTM-gate elements per step, kernel-call overhead —
    # not array math — dominates, and one merged padded call is cheaper
    # than splitting into dense shape groups.  Purely a performance
    # heuristic: both strategies produce bit-identical results.
    _MERGE_GATE_ELEMS = 1 << 19

    def _merge_ragged(
        self, members: list[int], by_shape: dict[tuple[int, ...], list[int]]
    ) -> bool:
        """Whether this round's clients should share one padded ragged call.

        Merging only pays when the work is overhead-bound AND no single
        shape dominates — a dominant same-shape group is faster on the
        dense path, with just the leftovers sharing a ragged call.
        """
        dominant = max(len(group) for group in by_shape.values())
        if 2 * dominant >= len(members) and dominant > 1:
            return False
        b_max = max(shape[0] for shape in by_shape)
        seq_len = next(iter(by_shape))[1]
        gate_elems = len(members) * b_max * seq_len * 4 * self.model_config.hidden_dim
        return gate_elems <= self._MERGE_GATE_ELEMS

    def _step_group(
        self,
        runs: list[_ClientRun],
        vecs: np.ndarray,
        members: list[int],
        pos: list[int],
    ) -> None:
        """One SGD step advancing ``members`` through their next batches."""
        model = self._model_for(len(members))
        picked = [runs[idx].batches[pos[idx]] for idx in members]
        shapes = {bx.shape for bx, _ in picked}
        if len(shapes) == 1:
            tokens = np.stack([bx for bx, _ in picked])
            targets = np.stack([by for _, by in picked])
            valid = None
        else:
            if len({s[1] for s in shapes}) != 1:
                raise ValueError("cohort clients must share one sequence length")
            seq_len = picked[0][0].shape[1]
            rows = np.array([bx.shape[0] for bx, _ in picked])
            b_max = int(rows.max())
            tokens = np.zeros((len(members), b_max, seq_len), dtype=np.int64)
            targets = np.zeros_like(tokens)
            for row, (bx, by) in enumerate(picked):
                tokens[row, : bx.shape[0]] = bx
                targets[row, : by.shape[0]] = by
            valid = rows
        model.set_flat_stack(vecs[members])
        losses, grads = model.loss_and_grad(tokens, targets, valid_rows=valid)
        vecs[members] = self._opt.step(vecs[members], grads)
        for row, idx in enumerate(members):
            runs[idx].losses.append(float(losses[row]))
