"""Client-side local training (the paper's Edge Training Engine, scaled down).

Runs the paper's client protocol training stage: one (configurable) local
epoch of SGD with batch size 32 on the client's training split, and
returns the model *delta* — trained-minus-initial — which is what PAPAYA
uploads (Section 3.1).

A single :class:`LocalTrainer` is reused across all simulated clients: it
keeps one model workspace and swaps parameter vectors in and out, which
keeps memory flat no matter how many clients the simulation touches.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import TrainingResult
from repro.data.federated import ClientDataset
from repro.nn.model import LSTMLanguageModel, ModelConfig
from repro.nn.optim import SGD
from repro.utils.rng import child_rng

__all__ = ["LocalTrainer"]


class LocalTrainer:
    """Executes local training for any client against a shared model spec.

    Parameters
    ----------
    model_config:
        Architecture of the global model (all clients share it).
    lr:
        Client SGD learning rate (the paper tunes this in simulation).
    batch_size:
        Local mini-batch size (paper: 32).
    epochs:
        Local epochs per participation (paper: 1).
    clip_norm:
        Client-side gradient clipping for LSTM stability.
    seed:
        Root seed for client batch shuffling streams.
    """

    def __init__(
        self,
        model_config: ModelConfig,
        lr: float = 0.5,
        batch_size: int = 32,
        epochs: int = 1,
        clip_norm: float | None = 5.0,
        seed: int = 0,
    ):
        if batch_size < 1 or epochs < 1:
            raise ValueError("batch_size and epochs must be at least 1")
        self.model_config = model_config
        self.lr = lr
        self.batch_size = batch_size
        self.epochs = epochs
        self.clip_norm = clip_norm
        self.seed = seed
        self._workspace = LSTMLanguageModel(model_config, seed=0)

    @property
    def num_params(self) -> int:
        """Scalar parameter count of the shared architecture."""
        return self._workspace.num_params

    def train(
        self,
        initial_model: np.ndarray,
        dataset: ClientDataset,
        initial_version: int,
        participation: int = 0,
    ) -> TrainingResult:
        """Run local training and return the upload payload.

        Parameters
        ----------
        initial_model:
            Flat parameter vector the client downloaded.
        dataset:
            The client's local split data.
        initial_version:
            Server model version of ``initial_model`` (for staleness).
        participation:
            Per-client participation counter, salted into the shuffling
            stream so repeat participation reshuffles batches.
        """
        model = self._workspace
        model.set_flat(initial_model)
        opt = SGD(lr=self.lr, clip_norm=self.clip_norm)
        rng = child_rng(self.seed, "local-shuffle", dataset.client_id, participation)

        vec = initial_model.astype(np.float32, copy=True)
        losses: list[float] = []
        for _ in range(self.epochs):
            for bx, by in dataset.train_batches(self.batch_size, rng):
                loss, grad = model.loss_and_grad(bx, by)
                vec = opt.step(vec, grad)
                model.set_flat(vec)
                losses.append(loss)

        delta = (vec - initial_model).astype(np.float32)
        return TrainingResult(
            client_id=dataset.client_id,
            delta=delta,
            num_examples=dataset.num_train_examples,
            train_loss=float(np.mean(losses)) if losses else float("nan"),
            initial_version=initial_version,
        )

    def evaluate(self, model_vec: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
        """Test loss of a flat model vector on a batch."""
        self._workspace.set_flat(model_vec)
        return self._workspace.evaluate(x, y)

    def evaluate_perplexity(self, model_vec: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
        """Test perplexity of a flat model vector on a batch."""
        self._workspace.set_flat(model_vec)
        return self._workspace.evaluate_perplexity(x, y)
