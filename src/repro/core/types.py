"""Shared datatypes of the federated-learning core.

These are the objects that cross component boundaries: task configurations
(Section 6, Appendix E.1), client training results, and the model updates
that aggregators buffer.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

__all__ = ["TrainingMode", "TaskConfig", "TrainingResult", "ModelUpdate"]


class TrainingMode(enum.Enum):
    """Whether a task runs synchronous rounds or buffered async aggregation.

    The paper stresses that PAPAYA supports both and that switching is a
    configuration change (Appendix E.3).
    """

    SYNC = "sync"
    ASYNC = "async"


@dataclass(frozen=True)
class TaskConfig:
    """Configuration of one FL task.

    Attributes
    ----------
    name:
        Task identifier (multi-tenant systems run several tasks at once).
    mode:
        :class:`TrainingMode.SYNC` or :class:`TrainingMode.ASYNC`.
    concurrency:
        Maximum number of concurrently training clients (Appendix E.1).
    aggregation_goal:
        ``K`` — client updates buffered per server model update
        (Section 3.1).  For SyncFL this is the round's cohort goal; with
        over-selection the paper sets concurrency ≈ 1.3 × goal.
    over_selection:
        Fraction of extra clients selected per synchronous round whose
        late updates are discarded (0.3 in the paper; ignored for async).
    max_staleness:
        Clients whose staleness exceeds this are aborted (Appendix E.2).
    client_timeout_s:
        Hard cap on client execution time (the paper uses 4 minutes).
    local_epochs, batch_size, client_lr:
        Local-training hyperparameters (paper: 1 epoch, B=32, tuned lr).
    secure_aggregation:
        Whether updates are masked via Asynchronous SecAgg (Section 5).
    model_size_bytes:
        Serialized model size, used for workload estimation and the
        SecAgg boundary-cost model (paper example: 20 MB).
    """

    name: str = "task"
    mode: TrainingMode = TrainingMode.ASYNC
    concurrency: int = 100
    aggregation_goal: int = 10
    over_selection: float = 0.0
    max_staleness: int = 100
    client_timeout_s: float = 240.0
    local_epochs: int = 1
    batch_size: int = 32
    client_lr: float = 0.5
    secure_aggregation: bool = False
    model_size_bytes: int = 20 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        if self.aggregation_goal < 1:
            raise ValueError("aggregation_goal must be at least 1")
        if not (0.0 <= self.over_selection < 1.0):
            raise ValueError("over_selection must be in [0, 1)")
        if self.max_staleness < 0:
            raise ValueError("max_staleness must be non-negative")
        if self.client_timeout_s <= 0:
            raise ValueError("client_timeout_s must be positive")
        if self.mode is TrainingMode.ASYNC and self.aggregation_goal > self.concurrency:
            raise ValueError(
                "async aggregation_goal above concurrency deadlocks: fewer "
                "clients can ever be in flight than the buffer needs"
            )

    @property
    def cohort_size(self) -> int:
        """Clients selected per synchronous round, including over-selection."""
        return int(math.ceil(self.aggregation_goal * (1.0 + self.over_selection)))

    def with_updates(self, **kwargs) -> "TaskConfig":
        """Functional-update copy (dataclasses.replace with validation)."""
        from dataclasses import replace

        return replace(self, **kwargs)


@dataclass(frozen=True)
class TrainingResult:
    """What a client's local training produces (before upload).

    ``delta`` is the difference between the locally trained model and the
    model the client downloaded — the quantity PAPAYA ships (Section 3.1).
    """

    client_id: int
    delta: np.ndarray
    num_examples: int
    train_loss: float
    initial_version: int

    def __post_init__(self) -> None:
        if self.num_examples < 1:
            raise ValueError("num_examples must be at least 1")


@dataclass(frozen=True)
class ModelUpdate:
    """A client update as the aggregator sees it at arrival time.

    Attributes
    ----------
    result:
        The client's training result.
    arrival_version:
        Server model version when the update arrived; staleness is
        ``arrival_version - result.initial_version`` (Appendix E.2).
    weight:
        Aggregation weight actually applied (example count × staleness
        factor), recorded for analysis.
    """

    result: TrainingResult
    arrival_version: int
    weight: float

    @property
    def staleness(self) -> int:
        """Model versions elapsed while the client was training."""
        return self.arrival_version - self.result.initial_version
