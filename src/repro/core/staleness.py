"""Staleness down-weighting policies for buffered asynchronous aggregation.

The paper (Appendix E.2) adopts FedBuff's polynomial weighting
``w_i = 1 / sqrt(1 + s_i)`` where ``s_i`` is the number of server model
versions elapsed while client ``i`` trained.  Alternative policies are
provided for the ablation benches.
"""

from __future__ import annotations

import abc

__all__ = [
    "StalenessPolicy",
    "PolynomialStaleness",
    "ConstantStaleness",
    "HardCutoffStaleness",
]


class StalenessPolicy(abc.ABC):
    """Maps an update's staleness to a multiplicative weight in [0, 1]."""

    @abc.abstractmethod
    def weight(self, staleness: int) -> float:
        """Weight applied to an update with the given staleness."""

    def __call__(self, staleness: int) -> float:
        if staleness < 0:
            raise ValueError(f"staleness must be non-negative, got {staleness}")
        w = self.weight(staleness)
        if not (0.0 <= w <= 1.0):
            raise AssertionError(f"{type(self).__name__} produced weight {w} outside [0,1]")
        return w


class PolynomialStaleness(StalenessPolicy):
    """``w = 1 / (1 + s)^exponent`` — the paper's choice with exponent 0.5.

    Fresh updates (s=0) get weight 1; an update that is 3 versions stale
    gets weight 0.5 with the default exponent.
    """

    def __init__(self, exponent: float = 0.5):
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.exponent = exponent

    def weight(self, staleness: int) -> float:
        return float((1.0 + staleness) ** (-self.exponent))

    def __repr__(self) -> str:
        return f"PolynomialStaleness(exponent={self.exponent})"


class ConstantStaleness(StalenessPolicy):
    """Ignore staleness entirely (ablation baseline)."""

    def weight(self, staleness: int) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "ConstantStaleness()"


class HardCutoffStaleness(StalenessPolicy):
    """Full weight up to a threshold, zero beyond it (ablation baseline).

    Unlike the max-staleness *abort* (which cancels in-flight clients),
    this policy accepts the upload but contributes nothing to the buffer.
    """

    def __init__(self, cutoff: int = 10):
        if cutoff < 0:
            raise ValueError("cutoff must be non-negative")
        self.cutoff = cutoff

    def weight(self, staleness: int) -> float:
        return 1.0 if staleness <= self.cutoff else 0.0

    def __repr__(self) -> str:
        return f"HardCutoffStaleness(cutoff={self.cutoff})"
