"""Server optimizers: how an aggregated client delta becomes a new model.

The paper uses FedAdam (Reddi et al., 2020) on the server for both SyncFL
and AsyncFL (Section 7.1): the aggregated client delta is treated as a
pseudo-gradient (negated, since the delta points in the descent direction)
and fed to Adam.  FedSGD and FedAvgM are provided as baselines/ablations.

All server optimizers consume the *weighted average* client delta — the
aggregators (:mod:`repro.core.fedbuff`, :mod:`repro.core.syncfl`) own the
weighting.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.nn.optim import Adam
from repro.utils.validation import check_positive

__all__ = ["ServerOptimizer", "FedAdam", "FedSGD", "FedAvgM"]


class ServerOptimizer(abc.ABC):
    """Applies an aggregated client delta to the server model."""

    @abc.abstractmethod
    def apply(self, model: np.ndarray, avg_delta: np.ndarray) -> np.ndarray:
        """Return the new server model given the average client delta."""

    def reset(self) -> None:
        """Clear internal state (default: stateless)."""


class FedAdam(ServerOptimizer):
    """Adaptive server optimizer — the paper's choice.

    Parameters
    ----------
    lr:
        Server learning rate ("Adam's default learning rate", 1e-3, in the
        paper; higher values are typical in simulation-scale runs).
    beta1:
        First-moment coefficient — the one hyperparameter the paper tunes.
    beta2, eps:
        Standard Adam parameters.
    """

    def __init__(
        self,
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        self._adam = Adam(lr=lr, beta1=beta1, beta2=beta2, eps=eps)

    def apply(self, model: np.ndarray, avg_delta: np.ndarray) -> np.ndarray:
        # The client delta approximates the negative gradient direction, so
        # the pseudo-gradient handed to Adam is its negation.
        return self._adam.step(model, -avg_delta)

    def reset(self) -> None:
        self._adam.reset()

    @property
    def step_count(self) -> int:
        """Server model updates applied so far."""
        return self._adam.step_count


class FedSGD(ServerOptimizer):
    """Plain averaging server: ``model += lr * avg_delta``.

    With ``lr=1`` this is exactly FedAvg's server step.
    """

    def __init__(self, lr: float = 1.0):
        self.lr = check_positive(lr, "lr")

    def apply(self, model: np.ndarray, avg_delta: np.ndarray) -> np.ndarray:
        return (model + self.lr * avg_delta).astype(np.float32)


class FedAvgM(ServerOptimizer):
    """Server-side momentum over aggregated deltas (Hsu et al., 2019)."""

    def __init__(self, lr: float = 1.0, momentum: float = 0.9):
        self.lr = check_positive(lr, "lr")
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: np.ndarray | None = None

    def apply(self, model: np.ndarray, avg_delta: np.ndarray) -> np.ndarray:
        if self._velocity is None:
            self._velocity = np.zeros_like(model)
        self._velocity = self.momentum * self._velocity + avg_delta
        return (model + self.lr * self._velocity).astype(np.float32)

    def reset(self) -> None:
        self._velocity = None
