"""Analytical convergence surrogate for fleet-scale wall-clock experiments.

The paper's headline figures (3, 9, 10, 12, 13) measure *wall-clock time
to a target loss* across ~100 M devices and hundreds of thousands of
client updates.  Re-running real gradient descent at that scale is neither
possible nor necessary for the system-level claims: what matters is how
the *number, size, staleness and bias* of server steps map to optimization
progress.  This module models that mapping with three well-established
ingredients:

1. **Power-law loss decay** in accumulated progress ``p``:
   ``L(p) = L_min + (L0 - L_min) · (1 + p/τ)^(-β)`` — the standard shape
   for LM training curves.
2. **Large-cohort diminishing returns** (Keskar et al. 2017, Charles
   et al. 2021, quoted by the paper in Section 1): a server step that
   aggregates ``K`` updates contributes effective progress
   ``eff(K) = K / (1 + K/K_c)`` — linear for small K, saturating at the
   critical cohort size ``K_c``.  Per client update the efficiency is
   ``1/(1 + K/K_c)``: small aggregation goals use updates efficiently,
   huge cohorts waste them.
3. **Update quality** ``g_i``: a client's update helps in proportion to
   ``log(1 + n_i)`` of its example count ``n_i`` (diminishing local
   returns), so *discarding large-data stragglers (over-selection bias)
   measurably slows progress* — the mechanism behind Figure 12.

Staleness enters through the FedBuff weighting itself: the aggregation
core down-weights stale updates by ``1/sqrt(1+s)`` before averaging, so a
buffer full of stale updates contributes less progress (use
``normalize_by="goal"`` and ``example_weighting="none"`` so weights act
as magnitudes, matching the original FedBuff formulation).

:class:`SurrogateModelState` duck-types :class:`repro.core.state.GlobalModelState`,
so the *identical* FedBuff/SyncFL aggregation cores drive it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import TrainingResult
from repro.utils.rng import child_rng

__all__ = ["SurrogateParams", "SurrogateModelState", "SurrogateTrainer"]


@dataclass(frozen=True)
class SurrogateParams:
    """Calibration constants of the analytical convergence model.

    Attributes
    ----------
    initial_loss:
        Loss of the untrained model (≈ log vocab size for an LM).
    floor_loss:
        Asymptotic loss of this model family on this data.
    tau:
        Progress scale: how much effective progress halves-ish the excess
        loss (sets how many server steps a run needs).
    beta:
        Power-law decay exponent.
    critical_goal:
        ``K_c`` — cohort size where per-step returns are half the linear
        extrapolation (large-batch critical size).
    reference_examples:
        Example count at which update quality is 1.0.
    quality_noise:
        Log-normal sigma of per-update quality noise.
    """

    initial_loss: float = 4.16  # log(64)
    floor_loss: float = 2.2
    tau: float = 40.0
    beta: float = 0.7
    critical_goal: float = 300.0
    reference_examples: float = 50.0
    quality_noise: float = 0.05

    def __post_init__(self) -> None:
        if self.floor_loss >= self.initial_loss:
            raise ValueError("floor_loss must be below initial_loss")
        if min(self.tau, self.beta, self.critical_goal, self.reference_examples) <= 0:
            raise ValueError("tau, beta, critical_goal, reference_examples must be positive")
        if self.quality_noise < 0:
            raise ValueError("quality_noise must be non-negative")


class SurrogateModelState:
    """Scalar 'progress' coordinate advanced by aggregated update quality.

    Implements the model-state interface of the aggregation cores:
    ``current()`` returns the 1-element progress vector (what a client
    would "download" — the surrogate trainer ignores it), ``apply``
    advances progress by ``avg_quality × eff(num_updates)``.
    """

    def __init__(self, params: SurrogateParams | None = None):
        self.params = params or SurrogateParams()
        self.progress = 0.0

    def current(self) -> np.ndarray:
        """1-element vector holding the progress coordinate."""
        return np.array([self.progress], dtype=np.float32)

    @property
    def size(self) -> int:
        """Interface parity with the real model state."""
        return 1

    def step_efficiency(self, num_updates: int) -> float:
        """``eff(K) = K / (1 + K/K_c)`` — saturating cohort returns."""
        k = float(num_updates)
        return k / (1.0 + k / self.params.critical_goal)

    def apply(self, avg_delta: np.ndarray, num_updates: int) -> None:
        """One server step: progress += mean quality × eff(K)."""
        if num_updates < 1:
            raise ValueError("num_updates must be at least 1")
        quality = float(avg_delta[0])
        self.progress += quality * self.step_efficiency(num_updates)

    def loss(self) -> float:
        """Current training loss under the power-law decay."""
        p = self.params
        return p.floor_loss + (p.initial_loss - p.floor_loss) * float(
            (1.0 + self.progress / p.tau) ** (-p.beta)
        )

    def progress_for_loss(self, target_loss: float) -> float:
        """Inverse of :meth:`loss`: progress needed to reach a target."""
        p = self.params
        if not (p.floor_loss < target_loss <= p.initial_loss):
            raise ValueError(
                f"target loss must be in ({p.floor_loss}, {p.initial_loss}]"
            )
        ratio = (target_loss - p.floor_loss) / (p.initial_loss - p.floor_loss)
        return p.tau * (ratio ** (-1.0 / p.beta) - 1.0)


class SurrogateTrainer:
    """Produces surrogate "updates": quality scalars instead of gradients.

    The quality of client ``i``'s update is
    ``g_i = log(1 + n_i) / log(1 + n_ref) × noise`` — increasing but
    saturating in the client's example count, with small log-normal noise.

    Parameters
    ----------
    params:
        Shared calibration constants.
    seed:
        Root seed for the per-(client, participation) noise streams.
    """

    def __init__(self, params: SurrogateParams | None = None, seed: int = 0):
        self.params = params or SurrogateParams()
        self.seed = seed

    def quality(self, num_examples: int) -> float:
        """Noise-free quality of an update from a client with ``n`` examples."""
        p = self.params
        return float(np.log1p(num_examples) / np.log1p(p.reference_examples))

    def train(
        self,
        num_examples: int,
        client_id: int,
        initial_version: int,
        participation: int = 0,
    ) -> TrainingResult:
        """Produce the surrogate training result for one participation."""
        if num_examples < 1:
            raise ValueError("num_examples must be at least 1")
        g = self.quality(num_examples)
        if self.params.quality_noise > 0:
            rng = child_rng(self.seed, "surrogate-noise", client_id, participation)
            g *= float(np.exp(rng.normal(0.0, self.params.quality_noise)))
        return TrainingResult(
            client_id=client_id,
            delta=np.array([g], dtype=np.float32),
            num_examples=num_examples,
            train_loss=float("nan"),
            initial_version=initial_version,
        )
