"""The paper's core algorithms: FedBuff, SyncFL, server optimizers.

This package is time- and transport-free: it implements the aggregation
mathematics and bookkeeping (versions, staleness, over-selection discard),
and is driven either directly (unit tests, quickstart example) or by the
discrete-event system layer in :mod:`repro.system`.
"""

from repro.core.client_trainer import LocalTrainer
from repro.core.cohort import CohortRequest, CohortTrainer
from repro.core.dp import (
    DPConfig,
    DPFedBuffAggregator,
    ZCDPAccountant,
    clip_by_l2_norm,
)
from repro.core.fedbuff import FedBuffAggregator, ServerStepInfo
from repro.core.server_opt import FedAdam, FedAvgM, FedSGD, ServerOptimizer
from repro.core.sharding import (
    AggregationPlaneClock,
    HashShardRouting,
    LoadAwareShardRouting,
    ShardedFedBuffAggregator,
    make_routing,
)
from repro.core.staleness import (
    ConstantStaleness,
    HardCutoffStaleness,
    PolynomialStaleness,
    StalenessPolicy,
)
from repro.core.state import GlobalModelState
from repro.core.surrogate import SurrogateModelState, SurrogateParams, SurrogateTrainer
from repro.core.syncfl import SyncRoundAggregator
from repro.core.types import ModelUpdate, TaskConfig, TrainingMode, TrainingResult

__all__ = [
    "LocalTrainer",
    "CohortRequest",
    "CohortTrainer",
    "DPConfig",
    "DPFedBuffAggregator",
    "ZCDPAccountant",
    "clip_by_l2_norm",
    "FedBuffAggregator",
    "ServerStepInfo",
    "FedAdam",
    "FedAvgM",
    "FedSGD",
    "ServerOptimizer",
    "AggregationPlaneClock",
    "HashShardRouting",
    "LoadAwareShardRouting",
    "ShardedFedBuffAggregator",
    "make_routing",
    "ConstantStaleness",
    "HardCutoffStaleness",
    "PolynomialStaleness",
    "StalenessPolicy",
    "GlobalModelState",
    "SurrogateModelState",
    "SurrogateParams",
    "SurrogateTrainer",
    "SyncRoundAggregator",
    "ModelUpdate",
    "TaskConfig",
    "TrainingMode",
    "TrainingResult",
]
