"""Global model state shared by the aggregation cores.

The aggregators (:mod:`repro.core.fedbuff`, :mod:`repro.core.syncfl`) are
written against a tiny state interface so the same buffering/weighting/
versioning logic drives two kinds of runs:

* :class:`GlobalModelState` — a real flat parameter vector advanced by a
  server optimizer (used when clients compute real NumPy-LSTM gradients);
* the surrogate state in :mod:`repro.core.surrogate` — a scalar "progress"
  coordinate advanced by an analytical convergence model (used for
  fleet-scale wall-clock experiments where real training would be
  pointlessly slow).

Both expose ``current()`` (what clients download) and ``apply(avg_delta,
num_updates)`` (what a server step does).
"""

from __future__ import annotations

import numpy as np

from repro.core.server_opt import ServerOptimizer

__all__ = ["GlobalModelState"]


class GlobalModelState:
    """Real model vector + server optimizer.

    Parameters
    ----------
    initial:
        Initial flat float32 parameter vector.
    server_opt:
        Optimizer applied to each aggregated delta (FedAdam in the paper).
    """

    def __init__(self, initial: np.ndarray, server_opt: ServerOptimizer):
        if initial.ndim != 1:
            raise ValueError("model state expects a flat vector")
        self._vec = initial.astype(np.float32, copy=True)
        self._opt = server_opt

    def current(self) -> np.ndarray:
        """Model vector clients download (copy; callers may mutate)."""
        return self._vec.copy()

    @property
    def size(self) -> int:
        """Number of scalar parameters."""
        return self._vec.size

    def apply(self, avg_delta: np.ndarray, num_updates: int) -> None:
        """Advance the model by one server step on the averaged delta."""
        if avg_delta.shape != self._vec.shape:
            raise ValueError("delta/model shape mismatch")
        self._vec = self._opt.apply(self._vec, avg_delta)
