"""Real multi-core sharded aggregation — shared-memory lane workers.

PR-4's sharded plane parallelism is *modeled*: a single thread folds
every shard partial and :class:`~repro.core.sharding.AggregationPlaneClock`
charges the measured costs to virtual lanes.  This module makes the
parallelism real while keeping the numbers bit-identical:

* :class:`ShardWorkerPool` runs one ``multiprocessing`` worker process
  per shard.  Delta blocks travel through two
  ``multiprocessing.shared_memory`` slabs — a float32 *input slab* of
  reusable slots the parent writes arrivals into, and a float64
  *partials slab* with exactly one row per shard, written **only** by
  that shard's worker (single-writer discipline; the parent only reads
  it at merge time).  Task messages carry slot indices and weights, so
  no update payload is ever pickled.
* :class:`ProcessShardedFedBuffAggregator` overrides the
  ``_fold_one`` / ``_fold_group`` / ``_merge_shards`` seam of
  :class:`~repro.core.sharding.ShardedFedBuffAggregator`: folds are
  dispatched asynchronously to the shard's worker, and the root reducer
  barriers on the acks, then merges the shard partials in ascending
  shard order.

Determinism contract
--------------------
The worker executes the *identical* float operation sequence as the
in-process shard core — scalar ``partial += w * delta.astype(float64)``,
grouped ``partial += weights @ deltas.astype(float64)`` on arrays of the
same dtype, shape, and layout, accumulated in per-shard arrival order
from a zeroed partial — and the root merge is the same
ascending-shard-order ``np.add.reduce``.  The process-executor plane is
therefore **bit-identical** to the in-process plane (pinned by
``tests/test_sharded_equivalence.py``), which in turn carries the PR-4
contract against the single aggregator.

Worker lifecycle
----------------
Workers are spawned at pool construction (``fork``/``spawn``/
``forkserver`` via ``start_method``), torn down by :meth:`close` (also
registered as a GC finalizer so interrupted runs don't leak processes).
A worker that dies — or an exhausted input slab — triggers a permanent
fallback to the inline executor: the parent replays the current epoch's
dispatch log against the still-live input slab with the same fold
kernel, reconstructing every shard partial bit-identically, and surfaces
a structured ``executor_fallback`` event (``on_event`` callback; the
system layer wires it into the run's :class:`EventLog`).  Mirroring the
sweep executor in ``repro.harness.sweep``, a failed worker therefore
costs a log line and the lost parallelism, never the result.

A pluggable fold kernel rides the same seam: :func:`register_fold_kernel`
names the function each worker applies per task (numpy default); custom
kernels register at import time of ``kernel_module``, the same
re-import-by-module-name convention ``SweepCell.runner_module`` uses for
spawn-started pool workers.
"""

from __future__ import annotations

import importlib
import logging
import multiprocessing
import queue as queue_mod
import time
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.core.sharding import ShardedFedBuffAggregator

__all__ = [
    "WorkerPoolError",
    "ShardWorkerPool",
    "SecureShardWorkerPool",
    "ProcessShardedFedBuffAggregator",
    "register_fold_kernel",
    "get_fold_kernel",
    "fold_kernel_names",
    "numpy_fold_kernel",
]

_LOG = logging.getLogger("repro.core.parallel")


class WorkerPoolError(RuntimeError):
    """A worker died, timed out, or the pool can't accept more work."""


# -- fold-kernel registry ------------------------------------------------------

_FOLD_KERNELS: dict[str, object] = {}


def register_fold_kernel(name: str, kernel, *, replace: bool = False) -> None:
    """Register a fold kernel under ``name``.

    A kernel is ``kernel(partial, inputs, slots, weights, grouped)``:
    fold the float32 ``inputs`` rows named by ``slots``, scaled by
    ``weights``, into the float64 ``partial`` row in place.  Workers
    resolve kernels by name at startup, so custom kernels must be
    registered at import time of a module named via the pool's
    ``kernel_module`` (the sweep executor's ``runner_module`` convention
    — required for ``spawn``-started workers, which re-import rather
    than inherit).
    """
    if not replace and name in _FOLD_KERNELS:
        raise ValueError(f"fold kernel {name!r} is already registered")
    _FOLD_KERNELS[name] = kernel


def get_fold_kernel(name: str):
    """Look up a registered fold kernel (raises ``ValueError`` if unknown)."""
    try:
        return _FOLD_KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown fold kernel {name!r} (registered: {fold_kernel_names()})"
        ) from None


def fold_kernel_names() -> list[str]:
    """Sorted names of every registered fold kernel."""
    return sorted(_FOLD_KERNELS)


def numpy_fold_kernel(partial, inputs, slots, weights, grouped) -> None:
    """Default kernel: op-for-op the in-process shard fold.

    Scalar path is the single core's AXPY
    (``partial += w * delta.astype(float64)``); grouped path is the
    block path's GEMV (``partial += weights @ deltas.astype(float64)``)
    over a C-contiguous float32 block, exactly like
    ``np.stack`` produces in-process — same dtypes, same layout, same
    BLAS call, hence bit-identical accumulation.
    """
    if grouped:
        w = np.asarray(weights, dtype=np.float64)
        deltas = inputs[list(slots)].astype(np.float64)
        partial += w @ deltas
    else:
        partial += weights[0] * inputs[slots[0]].astype(np.float64)


register_fold_kernel("numpy", numpy_fold_kernel)


# -- worker process ------------------------------------------------------------


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it with a resource tracker.

    Attaching registers the segment again (bpo-39959), which either
    double-unlinks it at worker exit (spawn: the worker has its own
    tracker) or erases the parent's registration (fork: the tracker is
    shared).  The parent owns segment lifecycle, so workers attach with
    registration suppressed.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _worker_main(
    shard_id: int,
    input_name: str,
    partials_name: str,
    num_shards: int,
    vector_length: int,
    slots: int,
    kernel_name: str,
    kernel_module: str | None,
    task_queue,
    ack_queue,
) -> None:
    """One shard lane: apply fold/reset tasks to this shard's partial row.

    Runs in a child process.  The loop body is deliberately thin — all
    float math lives in the registered kernel, which the equivalence
    suite also drives in-process.
    """
    if kernel_module:
        importlib.import_module(kernel_module)
    kernel = get_fold_kernel(kernel_name)
    input_shm = _attach_untracked(input_name)
    partials_shm = _attach_untracked(partials_name)
    inputs = np.ndarray(
        (slots, vector_length), dtype=np.float32, buffer=input_shm.buf
    )
    partials = np.ndarray(
        (num_shards, vector_length), dtype=np.float64, buffer=partials_shm.buf
    )
    partial = partials[shard_id]  # the one row this process may write
    try:
        while True:
            msg = task_queue.get()
            if msg is None:
                break
            if msg[0] == "fold":
                _, task_slots, weights, grouped, token = msg
                kernel(partial, inputs, task_slots, weights, grouped)
            else:  # "reset"
                token = msg[1]
                partial[:] = 0.0
            ack_queue.put((shard_id, token))
    finally:
        del inputs, partials, partial
        input_shm.close()
        partials_shm.close()


# -- pool ----------------------------------------------------------------------


def _default_on_event(kind: str, fields: dict) -> None:
    _LOG.warning(
        "%s %s", kind, " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
    )


def _cleanup(procs, task_queues, ack_queue, shms) -> None:
    """Idempotent teardown shared by close() and the GC finalizer."""
    for q in task_queues:
        try:
            q.put_nowait(None)
        except Exception:
            pass
    for p in procs:
        p.join(timeout=2.0)
    for p in procs:
        if p.is_alive():  # pragma: no cover - stuck worker safety net
            p.terminate()
            p.join(timeout=2.0)
    for q in [*task_queues, ack_queue]:
        try:
            q.close()
            q.cancel_join_thread()
        except Exception:
            pass
    for shm in shms:
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass


class ShardWorkerPool:
    """One worker process per shard + the shared-memory slabs they fold on.

    Parameters
    ----------
    num_shards, vector_length:
        Shape of the partials slab (one float64 row per shard).
    slots:
        Input-slab capacity in arrivals.  Slots are held for the whole
        buffer epoch (so a fallback can replay the epoch from the slab)
        and all freed at the merge barrier; size it at ~2x the
        aggregation goal to ride out shard-failover refills.
    fold_kernel, kernel_module:
        Registered kernel name workers apply per task, and an optional
        module to import in the worker before resolving it.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    on_event:
        ``callback(kind, fields)`` for structured lifecycle events
        (defaults to a ``repro.core.parallel`` warning log line).
    ack_timeout_s:
        Barrier patience before the pool is declared wedged.
    """

    # Set by repro.obs.telemetry.RunTelemetry.attach when wall-clock
    # profiling is on: slab writes + dispatch ("pool_dispatch") and the
    # merge-barrier ack wait ("pool_barrier") feed a PhaseProfiler.
    # None (the default) keeps the dispatch path timing-free.
    profiler = None

    def __init__(
        self,
        num_shards: int,
        vector_length: int,
        slots: int,
        *,
        fold_kernel: str = "numpy",
        kernel_module: str | None = None,
        start_method: str | None = None,
        on_event=None,
        ack_timeout_s: float = 60.0,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if vector_length < 1:
            raise ValueError("vector_length must be at least 1")
        if slots < 1:
            raise ValueError("slots must be at least 1")
        if kernel_module:
            importlib.import_module(kernel_module)
        self._kernel = get_fold_kernel(fold_kernel)  # validates the name
        self.num_shards = num_shards
        self.vector_length = vector_length
        self.slots = slots
        self.fold_kernel = fold_kernel
        self.start_method = start_method
        self.on_event = on_event or _default_on_event
        self.ack_timeout_s = ack_timeout_s
        self.healthy = True

        ctx = multiprocessing.get_context(start_method)
        self._input_shm = shared_memory.SharedMemory(
            create=True, size=slots * vector_length * 4
        )
        self._partials_shm = shared_memory.SharedMemory(
            create=True, size=num_shards * vector_length * 8
        )
        self.inputs = np.ndarray(
            (slots, vector_length), dtype=np.float32, buffer=self._input_shm.buf
        )
        self._partials = np.ndarray(
            (num_shards, vector_length),
            dtype=np.float64,
            buffer=self._partials_shm.buf,
        )
        self._partials[:] = 0.0  # workers are not running yet
        self._task_queues = [ctx.Queue() for _ in range(num_shards)]
        self._ack_queue = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    sid,
                    self._input_shm.name,
                    self._partials_shm.name,
                    num_shards,
                    vector_length,
                    slots,
                    fold_kernel,
                    kernel_module,
                    self._task_queues[sid],
                    self._ack_queue,
                ),
                daemon=True,
                name=f"shard-worker-{sid}",
            )
            for sid in range(num_shards)
        ]
        for p in self._procs:
            p.start()

        self._free_slots = list(range(slots - 1, -1, -1))
        self._epoch_slots: list[int] = []
        self._outstanding: dict[int, int] = {}  # token -> shard id
        self._next_token = 0
        # Per-epoch dispatch log: (shard, slots, weights, grouped) in
        # dispatch order — the inline-replay script for fallback.
        self._log: list[tuple[int, tuple[int, ...], tuple[float, ...], bool]] = []
        self._finalizer = weakref.finalize(
            self,
            _cleanup,
            self._procs,
            self._task_queues,
            self._ack_queue,
            [self._input_shm, self._partials_shm],
        )

    # -- dispatch --------------------------------------------------------------

    def _take_slot(self) -> int:
        if not self._free_slots:
            self.healthy = False
            raise WorkerPoolError(
                f"input slab exhausted ({self.slots} slots in flight; "
                "shard failover churned more arrivals than one epoch holds)"
            )
        slot = self._free_slots.pop()
        self._epoch_slots.append(slot)
        return slot

    def _dispatch(
        self,
        shard_id: int,
        task_slots: tuple[int, ...],
        weights: tuple[float, ...],
        grouped: bool,
    ) -> None:
        token = self._next_token
        self._next_token += 1
        self._outstanding[token] = shard_id
        self._log.append((shard_id, task_slots, weights, grouped))
        self._task_queues[shard_id].put(
            ("fold", task_slots, weights, grouped, token)
        )

    def fold_scalar(self, shard_id: int, delta: np.ndarray, weight: float) -> None:
        """Asynchronously fold one arrival into ``shard_id``'s partial."""
        t0 = time.perf_counter() if self.profiler is not None else 0.0
        slot = self._take_slot()
        self.inputs[slot, :] = delta
        self._dispatch(shard_id, (slot,), (float(weight),), False)
        if self.profiler is not None:
            self.profiler.record("pool_dispatch", time.perf_counter() - t0)

    def fold_group(self, shard_id: int, deltas, weights) -> None:
        """Asynchronously fold a grouped block into ``shard_id``'s partial."""
        t0 = time.perf_counter() if self.profiler is not None else 0.0
        task_slots = tuple(self._take_slot() for _ in deltas)
        for slot, delta in zip(task_slots, deltas):
            self.inputs[slot, :] = delta
        self._dispatch(
            shard_id, task_slots, tuple(float(w) for w in weights), True
        )
        if self.profiler is not None:
            self.profiler.record("pool_dispatch", time.perf_counter() - t0)

    # -- synchronization -------------------------------------------------------

    def dead_workers(self) -> list[int]:
        """Shard ids whose worker process is no longer alive."""
        return [sid for sid, p in enumerate(self._procs) if not p.is_alive()]

    def kill_worker(self, shard_id: int) -> bool:
        """Chaos hook: terminate one shard's worker process (SIGTERM).

        The death surfaces at the next ack wait — :meth:`barrier` raises
        :class:`WorkerPoolError`, which trips the dead-worker fallback:
        the parent replays this epoch's dispatch log inline,
        bit-identically.  Returns whether a live worker was killed.
        """
        if not (0 <= shard_id < self.num_shards):
            raise ValueError(f"no such shard {shard_id}")
        proc = self._procs[shard_id]
        if not proc.is_alive():
            return False
        proc.terminate()
        proc.join(timeout=5.0)
        return True

    def barrier(self) -> None:
        """Wait until every dispatched task has been acked.

        Raises :class:`WorkerPoolError` (and marks the pool unhealthy)
        if a worker dies or the acks stall past ``ack_timeout_s``.
        """
        t0 = time.perf_counter() if self.profiler is not None else 0.0
        deadline = time.monotonic() + self.ack_timeout_s
        while self._outstanding:
            try:
                _, token = self._ack_queue.get(timeout=0.1)
            except queue_mod.Empty:
                dead = self.dead_workers()
                if dead:
                    self.healthy = False
                    raise WorkerPoolError(
                        f"shard worker(s) {dead} died with "
                        f"{len(self._outstanding)} task(s) outstanding"
                    ) from None
                if time.monotonic() > deadline:
                    self.healthy = False
                    raise WorkerPoolError(
                        f"timed out after {self.ack_timeout_s}s waiting for "
                        f"{len(self._outstanding)} worker ack(s)"
                    ) from None
            else:
                self._outstanding.pop(token, None)
        if self.profiler is not None:
            self.profiler.record("pool_barrier", time.perf_counter() - t0)

    def partial(self, shard_id: int) -> np.ndarray:
        """Read-only view of one shard's float64 partial row.

        Only meaningful after :meth:`barrier`; the parent must never
        write through it (single-writer discipline).
        """
        return self._partials[shard_id]

    # -- epoch lifecycle -------------------------------------------------------

    def reset_epoch(self) -> None:
        """After a merged server step: zero every partial, free all slots."""
        for shard_id in range(self.num_shards):
            token = self._next_token
            self._next_token += 1
            self._outstanding[token] = shard_id
            self._task_queues[shard_id].put(("reset", token))
        self._free_slots.extend(self._epoch_slots)
        self._epoch_slots.clear()
        self._log.clear()

    def discard_shard(self, shard_id: int) -> None:
        """Shard failover: drop its epoch tasks and zero its partial."""
        self._log = [t for t in self._log if t[0] != shard_id]
        token = self._next_token
        self._next_token += 1
        self._outstanding[token] = shard_id
        self._task_queues[shard_id].put(("reset", token))

    def replay_partials(self) -> dict[int, np.ndarray]:
        """Recompute every shard partial inline from the dispatch log.

        The log preserves per-shard dispatch (= arrival) order and every
        epoch slot is still live in the input slab, so applying the same
        kernel from a zeroed buffer reproduces each worker's fold
        sequence bit-for-bit — this is the dead-worker fallback path.
        """
        out: dict[int, np.ndarray] = {}
        for shard_id, task_slots, weights, grouped in self._log:
            buf = out.get(shard_id)
            if buf is None:
                buf = out[shard_id] = np.zeros(
                    self.vector_length, dtype=np.float64
                )
            self._kernel(buf, self.inputs, task_slots, weights, grouped)
        return out

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release both slabs (idempotent)."""
        if self._finalizer.alive:
            self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("ok" if self.healthy else "unhealthy")
        return (
            f"ShardWorkerPool(shards={self.num_shards}, "
            f"vector_length={self.vector_length}, slots={self.slots}, "
            f"kernel={self.fold_kernel!r}, {state})"
        )


# -- secure shard workers ------------------------------------------------------


def _secure_worker_main(
    shard_id: int,
    num_shards: int,
    seed: int,
    goal: int,
    vector_length: int,
    group_bits: int,
    fp_scale: float,
    clip_value: float,
    cache_masks: bool,
    input_name: str,
    group_name: str,
    slots: int,
    task_queue,
    ack_queue,
) -> None:
    """One secure shard lane: the worker OWNS its shard's TSA + server.

    Unlike the float lanes (which only fold), a secure lane runs the
    whole per-arrival pipeline — deterministic client participation
    (the client's randomness is keyed by global counters the parent
    ships with each task), demand leg minting, attestation verification,
    and the TSA admit — because the 2048-bit modexps are what dominate
    secure aggregation's critical path; shipping only the fold would
    leave them serialized on the parent.  Everything is reconstructed
    from the deployment seed with the exact ``child_rng`` derivations
    the inline plane uses, so the shard state is bit-identical to an
    inline shard fed the same arrivals.

    Ops: ``participate`` (async, acked ``"ok"``/``"rejected"``),
    ``finalize_partial`` (writes the masked weighted sum and the partial
    unmask into this shard's two group-slab rows), ``begin_round``
    (epoch re-key), ``meters`` (cumulative boundary bytes, read-only).
    """
    from repro.secagg.attestation import SigningAuthority
    from repro.secagg.client import LogBundle, SecAggClient
    from repro.secagg.fixedpoint import FixedPointCodec
    from repro.secagg.groups import PowerOfTwoGroup
    from repro.secagg.merkle import VerifiableLog
    from repro.secagg.server import LegPool, SecAggServer
    from repro.secagg.tsa import TrustedSecureAggregator
    from repro.utils.rng import child_rng

    group = PowerOfTwoGroup(group_bits)
    codec = FixedPointCodec(group, scale=fp_scale, clip_value=clip_value)
    authority = SigningAuthority()
    tsa = TrustedSecureAggregator(
        group,
        vector_length,
        threshold=goal,
        authority=authority,
        rng=child_rng(seed, "tsa-epoch", 0, shard_id),
        cache_masks=cache_masks,
    )
    pool = LegPool(tsa, block_size=1, prefill=0)
    server = SecAggServer(tsa, codec, leg_pool=pool)
    log = VerifiableLog()
    entry = b"manifest|" + tsa.binary_hash
    index = log.append(entry)
    bundle = LogBundle(
        entry=entry,
        index=index,
        size=log.size,
        root=log.root(),
        proof=log.inclusion_proof(index),
    )
    weights: dict[int, int] = {}
    input_shm = _attach_untracked(input_name)
    group_shm = _attach_untracked(group_name)
    inputs = np.ndarray(
        (slots, vector_length), dtype=np.float32, buffer=input_shm.buf
    )
    rows = np.ndarray(
        (2 * num_shards, vector_length), dtype=np.uint64, buffer=group_shm.buf
    )
    try:
        while True:
            msg = task_queue.get()
            if msg is None:
                break
            op = msg[0]
            if op == "participate":
                _, slot, cid, version, updates_received, w_int, n_ex, token = msg
                client = SecAggClient(
                    client_id=cid,
                    codec=codec,
                    authority=authority,
                    expected_binary_hash=tsa.binary_hash,
                    expected_params_hash=tsa.params_hash,
                    rng=child_rng(
                        seed, "secagg-client", cid, version, updates_received
                    ),
                )
                leg = server.assign_leg()
                submission = client.participate(
                    inputs[slot].copy(), leg, log_bundle=bundle,
                    num_examples=n_ex,
                )
                if server.submit(submission):
                    weights[submission.leg_index] = w_int
                    ack_queue.put((shard_id, token, "ok"))
                else:
                    ack_queue.put((shard_id, token, "rejected"))
            elif op == "finalize_partial":
                token = msg[1]
                live = {k: v for k, v in weights.items() if v}
                masked, total_w = server.masked_weighted_sum(live)
                unmask = tsa.release_unmask_partial(live)
                rows[2 * shard_id][:] = masked
                rows[2 * shard_id + 1][:] = unmask
                ack_queue.put(
                    (
                        shard_id,
                        token,
                        (
                            "partial",
                            tsa.processed_count,
                            total_w,
                            tsa.boundary_bytes_in,
                            tsa.boundary_bytes_out,
                        ),
                    )
                )
            elif op == "begin_round":
                token = msg[1]
                tsa.begin_round()
                server.begin_round()
                weights = {}
                ack_queue.put((shard_id, token, "round"))
            else:  # "meters"
                token = msg[1]
                ack_queue.put(
                    (
                        shard_id,
                        token,
                        (
                            "meters",
                            tsa.boundary_bytes_in,
                            tsa.boundary_bytes_out,
                        ),
                    )
                )
    finally:
        del inputs, rows
        input_shm.close()
        group_shm.close()


class SecureShardWorkerPool:
    """One worker process per *secure* shard; each owns a TSA + server pair.

    The parent writes each arrival's float32 delta into the input slab
    and dispatches a ``participate`` task carrying the client identity
    and the global RNG counters; the worker runs the full secure
    pipeline on it.  At finalize, each participating shard writes its
    masked weighted group sum and its partial unmask into the uint64
    group slab (two rows per shard, single-writer) for the parent's root
    merge.

    The per-epoch dispatch log records every ``participate``'s
    arguments, and ``ops_total`` counts lifetime dispatches per shard —
    together they are the inline-replay script: the parent can rebuild a
    shard's exact state by burning ``ops_total - epoch_ops`` legs off a
    virgin TSA (catching up its deterministic mint RNG) and replaying
    the epoch's participations with the same ``child_rng`` derivations.
    """

    def __init__(
        self,
        num_shards: int,
        vector_length: int,
        slots: int,
        *,
        seed: int,
        goal: int,
        group_bits: int = 64,
        fp_scale: float = 2**16,
        clip_value: float = 4.0,
        cache_masks: bool = True,
        start_method: str | None = None,
        on_event=None,
        ack_timeout_s: float = 60.0,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if vector_length < 1:
            raise ValueError("vector_length must be at least 1")
        if slots < 1:
            raise ValueError("slots must be at least 1")
        if group_bits > 64:
            raise ValueError("secure worker slabs support group_bits <= 64")
        self.num_shards = num_shards
        self.vector_length = vector_length
        self.slots = slots
        self.on_event = on_event or _default_on_event
        self.ack_timeout_s = ack_timeout_s
        self.healthy = True

        ctx = multiprocessing.get_context(start_method)
        self._input_shm = shared_memory.SharedMemory(
            create=True, size=slots * vector_length * 4
        )
        self._group_shm = shared_memory.SharedMemory(
            create=True, size=2 * num_shards * vector_length * 8
        )
        self.inputs = np.ndarray(
            (slots, vector_length), dtype=np.float32, buffer=self._input_shm.buf
        )
        self._rows = np.ndarray(
            (2 * num_shards, vector_length),
            dtype=np.uint64,
            buffer=self._group_shm.buf,
        )
        self._rows[:] = 0
        self._task_queues = [ctx.Queue() for _ in range(num_shards)]
        self._ack_queue = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_secure_worker_main,
                args=(
                    sid,
                    num_shards,
                    seed,
                    goal,
                    vector_length,
                    group_bits,
                    fp_scale,
                    clip_value,
                    cache_masks,
                    self._input_shm.name,
                    self._group_shm.name,
                    slots,
                    self._task_queues[sid],
                    self._ack_queue,
                ),
                daemon=True,
                name=f"secure-shard-worker-{sid}",
            )
            for sid in range(num_shards)
        ]
        for p in self._procs:
            p.start()

        self._free_slots = list(range(slots - 1, -1, -1))
        self._epoch_slots: list[int] = []
        self._outstanding: dict[int, int] = {}  # token -> shard id
        self._results: dict[int, object] = {}   # token -> ack payload
        self._next_token = 0
        self.ops_total = [0] * num_shards
        # Per-epoch dispatch log, in dispatch (= arrival) order:
        # (shard, slot, client_id, version, updates_received, w_int,
        #  num_examples) — the inline-replay script for fallback.
        self._log: list[tuple[int, int, int, int, int, int, int]] = []
        self._finalizer = weakref.finalize(
            self,
            _cleanup,
            self._procs,
            self._task_queues,
            self._ack_queue,
            [self._input_shm, self._group_shm],
        )

    # -- dispatch --------------------------------------------------------------

    def _take_slot(self) -> int:
        if not self._free_slots:
            self.healthy = False
            raise WorkerPoolError(
                f"input slab exhausted ({self.slots} slots in flight; "
                "shard failover churned more arrivals than one epoch holds)"
            )
        slot = self._free_slots.pop()
        self._epoch_slots.append(slot)
        return slot

    def _send(self, shard_id: int, msg_head: tuple) -> int:
        token = self._next_token
        self._next_token += 1
        self._outstanding[token] = shard_id
        self._task_queues[shard_id].put((*msg_head, token))
        return token

    def participate(
        self,
        shard_id: int,
        delta: np.ndarray,
        client_id: int,
        version: int,
        updates_received: int,
        w_int: int,
        num_examples: int,
    ) -> None:
        """Asynchronously run one arrival's secure pipeline on its shard."""
        slot = self._take_slot()
        self.inputs[slot, :] = delta
        self._log.append(
            (shard_id, slot, client_id, version, updates_received, w_int,
             num_examples)
        )
        self.ops_total[shard_id] += 1
        self._send(
            shard_id,
            ("participate", slot, client_id, version, updates_received,
             w_int, num_examples),
        )

    # -- synchronization -------------------------------------------------------

    def dead_workers(self) -> list[int]:
        """Shard ids whose worker process is no longer alive."""
        return [sid for sid, p in enumerate(self._procs) if not p.is_alive()]

    def kill_worker(self, shard_id: int) -> bool:
        """Chaos hook: terminate one shard's worker process (SIGTERM)."""
        if not (0 <= shard_id < self.num_shards):
            raise ValueError(f"no such shard {shard_id}")
        proc = self._procs[shard_id]
        if not proc.is_alive():
            return False
        proc.terminate()
        proc.join(timeout=5.0)
        return True

    def _drain_until(self, token: int | None) -> None:
        """Collect acks until ``token`` arrives (or all, when ``None``)."""
        deadline = time.monotonic() + self.ack_timeout_s
        while self._outstanding if token is None else token in self._outstanding:
            try:
                sid, got, payload = self._ack_queue.get(timeout=0.1)
            except queue_mod.Empty:
                dead = self.dead_workers()
                if dead:
                    self.healthy = False
                    raise WorkerPoolError(
                        f"secure shard worker(s) {dead} died with "
                        f"{len(self._outstanding)} task(s) outstanding"
                    ) from None
                if time.monotonic() > deadline:
                    self.healthy = False
                    raise WorkerPoolError(
                        f"timed out after {self.ack_timeout_s}s waiting for "
                        f"{len(self._outstanding)} worker ack(s)"
                    ) from None
            else:
                self._outstanding.pop(got, None)
                self._results[got] = payload
                if payload == "rejected":
                    self.healthy = False
                    raise WorkerPoolError(
                        f"shard {sid} worker rejected a secure submission"
                    )

    def barrier(self) -> None:
        """Wait until every dispatched task has been acked.

        Raises :class:`WorkerPoolError` (and marks the pool unhealthy)
        if a worker dies, an ack stalls past ``ack_timeout_s``, or a
        worker reports a rejected submission — all of which the caller
        handles by replaying the dispatch log inline.
        """
        self._drain_until(None)
        self._results.clear()

    def call(self, shard_id: int, op: str):
        """Synchronous worker op (``finalize_partial``/``begin_round``/
        ``meters``); returns the ack payload."""
        token = self._send(shard_id, (op,))
        self._drain_until(token)
        return self._results.pop(token)

    def masked_row(self, shard_id: int) -> np.ndarray:
        """This shard's masked weighted group sum (after finalize_partial)."""
        return self._rows[2 * shard_id]

    def unmask_row(self, shard_id: int) -> np.ndarray:
        """This shard's partial unmask vector (after finalize_partial)."""
        return self._rows[2 * shard_id + 1]

    # -- epoch lifecycle -------------------------------------------------------

    def reset_epoch(self) -> None:
        """After a merged server step: free all slots, clear the log."""
        self._free_slots.extend(self._epoch_slots)
        self._epoch_slots.clear()
        self._log.clear()

    def discard_shard(self, shard_id: int) -> None:
        """Shard failover: excise its slice from the replay log.

        Lifetime ``ops_total`` is deliberately *not* decremented — the
        worker really minted those legs, so the catch-up count a replay
        burns off a virgin TSA must include them.
        """
        self._log = [t for t in self._log if t[0] != shard_id]

    def epoch_ops(self) -> list[tuple[int, int, int, int, int, int, int]]:
        """The current epoch's dispatch log (replay script), in order."""
        return list(self._log)

    def minted_before_epoch(self, shard_id: int) -> int:
        """Legs the shard's worker minted before the open epoch's ops."""
        return self.ops_total[shard_id] - sum(
            1 for t in self._log if t[0] == shard_id
        )

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release both slabs (idempotent)."""
        if self._finalizer.alive:
            self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "SecureShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("ok" if self.healthy else "unhealthy")
        return (
            f"SecureShardWorkerPool(shards={self.num_shards}, "
            f"vector_length={self.vector_length}, slots={self.slots}, {state})"
        )


# -- process-executor aggregator -----------------------------------------------


class ProcessShardedFedBuffAggregator(ShardedFedBuffAggregator):
    """Sharded FedBuff whose shard cores run on real worker processes.

    Admission, staleness, weighting, routing, failover, and step
    triggering are the inherited in-process code paths; only the three
    numeric seams differ — folds are dispatched to the shard's worker,
    and the root merge barriers on the acks before reducing the
    shared-memory partials in ascending shard order.  Bit-identical to
    the in-process plane by the module's determinism contract.

    Parameters beyond :class:`ShardedFedBuffAggregator`'s:

    pool:
        A pre-built :class:`ShardWorkerPool` to fold on (shared across
        drives, e.g. by the perf harness).  When ``None`` the aggregator
        spawns and owns one sized at ``2 * goal`` slots.
    start_method, fold_kernel, kernel_module:
        Forwarded to the owned pool (ignored when ``pool`` is given).
    on_event:
        Structured lifecycle callback (see :class:`ShardWorkerPool`).
    """

    def __init__(
        self,
        state,
        goal: int,
        *,
        num_shards: int = 1,
        routing="hash",
        pool: ShardWorkerPool | None = None,
        start_method: str | None = None,
        fold_kernel: str = "numpy",
        kernel_module: str | None = None,
        on_event=None,
        **kwargs,
    ):
        super().__init__(
            state, goal, num_shards=num_shards, routing=routing, **kwargs
        )
        self._on_event = on_event or _default_on_event
        if pool is None:
            pool = ShardWorkerPool(
                num_shards=num_shards,
                vector_length=int(state.size),
                slots=2 * goal,
                fold_kernel=fold_kernel,
                kernel_module=kernel_module,
                start_method=start_method,
                on_event=self._on_event,
            )
            self._owns_pool = True
        else:
            if pool.num_shards != num_shards:
                raise ValueError(
                    f"pool has {pool.num_shards} shards, aggregator needs "
                    f"{num_shards}"
                )
            if pool.vector_length != int(state.size):
                raise ValueError(
                    f"pool vector length {pool.vector_length} != model size "
                    f"{int(state.size)}"
                )
            if pool.closed or not pool.healthy:
                raise ValueError("pool is closed or unhealthy")
            self._owns_pool = False
        self._pool = pool
        self._pool_active = True
        self.executor_fallbacks = 0

    @property
    def pool_active(self) -> bool:
        """Whether folds are still running on worker processes."""
        return self._pool_active

    def kill_worker(self, shard_id: int) -> bool:
        """Chaos hook (``worker_kill`` fault): terminate one shard worker.

        The fallback does not fire here — it fires at the next barrier or
        dispatch, replaying the dispatch log inline (bit-identical), which
        is exactly the mid-epoch recovery path this hook exists to test.
        Returns False once already fallen back (nothing left to kill).
        """
        if not self._pool_active:
            return False
        return self._pool.kill_worker(shard_id)

    # -- fallback --------------------------------------------------------------

    def _fall_back(self, reason: str, **fields) -> None:
        """Permanently switch to the inline executor, bit-identically.

        Reconstructs every shard's current partial by replaying the
        epoch's dispatch log against the input slab (same kernel, same
        per-shard order), so the in-process path continues from exactly
        the state the workers held.
        """
        if not self._pool_active:
            return
        self._pool_active = False
        self.executor_fallbacks += 1
        partials = self._pool.replay_partials()
        for sid, shard in enumerate(self._shards):
            shard.buffer = partials.get(sid)
        self._on_event(
            "executor_fallback",
            {"reason": reason, "executor": "inline", **fields},
        )
        if self._owns_pool:
            self._pool.close()

    # -- overridden numeric seams ----------------------------------------------

    def _fold_one(self, shard_id, result, update) -> None:
        if not self._pool_active:
            return super()._fold_one(shard_id, result, update)
        if result.delta.dtype != np.float32:
            self._fall_back(
                "unsupported_dtype", shard=shard_id, dtype=str(result.delta.dtype)
            )
            return super()._fold_one(shard_id, result, update)
        try:
            self._pool.fold_scalar(shard_id, result.delta, update.weight)
        except WorkerPoolError as exc:
            self._fall_back("pool_error", shard=shard_id, error=str(exc))
            super()._fold_one(shard_id, result, update)

    def _fold_group(self, shard_id, group) -> None:
        if not self._pool_active:
            return super()._fold_group(shard_id, group)
        deltas = [r.delta for r, _ in group]
        if any(d.dtype != np.float32 for d in deltas):
            self._fall_back("unsupported_dtype", shard=shard_id)
            return super()._fold_group(shard_id, group)
        try:
            self._pool.fold_group(
                shard_id, deltas, [u.weight for _, u in group]
            )
        except WorkerPoolError as exc:
            self._fall_back("pool_error", shard=shard_id, error=str(exc))
            super()._fold_group(shard_id, group)

    def _merge_shards(self) -> np.ndarray:
        if not self._pool_active:
            return super()._merge_shards()
        try:
            self._pool.barrier()
        except WorkerPoolError as exc:
            self._fall_back(
                "worker_dead",
                dead=tuple(self._pool.dead_workers()),
                error=str(exc),
            )
            return super()._merge_shards()
        # count > 0 is exactly the base class's "buffer is not None":
        # both flip on the first fold and reset together on step/failover.
        partials = [
            self._pool.partial(sid)
            for sid, shard in enumerate(self._shards)
            if shard.count > 0
        ]
        if not partials:
            return np.zeros(self.state.size, dtype=np.float64)
        if len(partials) == 1:
            return partials[0].copy()
        return np.add.reduce(partials)

    # -- lifecycle hooks -------------------------------------------------------

    def _server_step(self):
        info = super()._server_step()
        if self._pool_active:
            self._pool.reset_epoch()
        return info

    def drop_shard(self, shard_id):
        if self._pool_active:
            self._pool.discard_shard(shard_id)
        return super().drop_shard(shard_id)

    def drop_buffer_and_inflight(self):
        out = super().drop_buffer_and_inflight()
        if self._pool_active:
            self._pool.reset_epoch()
        return out

    def drain(self) -> None:
        """Barrier on every outstanding worker fold (perf-harness hook)."""
        if self._pool_active:
            try:
                self._pool.barrier()
            except WorkerPoolError as exc:
                self._fall_back(
                    "worker_dead",
                    dead=tuple(self._pool.dead_workers()),
                    error=str(exc),
                )

    def close(self) -> None:
        """Tear down the owned worker pool (shared pools stay up)."""
        if self._owns_pool:
            self._pool.close()

    def __repr__(self) -> str:
        executor = "process" if self._pool_active else "inline(fallback)"
        return (
            f"ProcessShardedFedBuffAggregator(goal={self.goal}, "
            f"shards={self.num_shards}, routing={self.routing.name}, "
            f"executor={executor}, version={self.version})"
        )
