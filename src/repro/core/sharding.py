"""Sharded hierarchical aggregation — many partial folders, one root reducer.

PAPAYA scales one FL task past a single aggregator by sharding
aggregation horizontally (Section 6.3): every aggregator shard folds a
slice of the arriving client updates into an *intermediate aggregate*,
and a root reducer combines the shard partials into one server model
update.  This module is the time- and transport-free core of that plane:

* :class:`ShardedFedBuffAggregator` runs ``S`` shard cores, each a
  FedBuff-style partial fold (``Σ wᵢ·dᵢ`` over the shard's slice of the
  buffer), plus the root reducer that merges shard partials **in
  deterministic ascending-shard order** when the global aggregation goal
  is reached and hands the merged buffer to the server optimizer.
* Routing of clients to shards is pluggable: :class:`HashShardRouting`
  (a salted-free deterministic integer mix of the client id, probed past
  dead shards) and :class:`LoadAwareShardRouting` (least-loaded live
  shard, ties to the lowest shard id).

Equivalence contract
--------------------
Shard-local folding only *reassociates* the single aggregator's weighted
sum — admission, staleness, weighting, step triggering, and the server
optimizer are byte-for-byte the single-core code paths (this class
subclasses :class:`~repro.core.fedbuff.FedBuffAggregator` and reuses its
``_admit``/``_server_step``) — so for any shard count and either routing
policy the sharded plane matches the single aggregator on the same
arrival sequence to float64 rounding, and with ``num_shards=1`` it is
**bit-identical** (one shard's partial fold performs exactly the single
core's AXPY sequence, and merging one partial is the identity).
``tests/test_sharded_equivalence.py`` is the differential suite that
pins this down.

Shard failover
--------------
:meth:`drop_shard` models one shard dying (its hosting aggregator
process failed, Appendix E.4): the shard's *partial fold is discarded*
(those contributions never reached the root), its in-flight clients are
dropped, and while the shard is dead both routing policies steer new
clients to the surviving shards.  :meth:`revive_shard` brings the shard
back empty once the system layer re-places it on a live node.  The
surviving state matches a single aggregator that was fed only the
surviving arrivals.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.fedbuff import FedBuffAggregator, ServerStepInfo
from repro.core.types import ModelUpdate, TrainingResult

__all__ = [
    "HashShardRouting",
    "LoadAwareShardRouting",
    "AggregationPlaneClock",
    "ShardedFedBuffAggregator",
    "make_routing",
    "merge_group_partials",
]

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a deterministic, well-distributed integer mix.

    Used instead of Python's ``hash`` so shard routing is stable across
    processes and runs (``hash`` of str/bytes is salted per process).
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class _Shard:
    """One shard core: a partial weighted fold over its slice of arrivals."""

    __slots__ = ("buffer", "count", "in_flight", "alive", "folds_total")

    def __init__(self) -> None:
        self.buffer: np.ndarray | None = None
        self.count = 0          # updates in the current (unmerged) partial
        self.in_flight = 0      # clients routed here and still training
        self.alive = True
        self.folds_total = 0    # lifetime folds (load/skew telemetry)

    def load(self) -> int:
        """Routing load signal: buffered plus in-flight work."""
        return self.count + self.in_flight


class HashShardRouting:
    """Deterministic hash routing: ``mix64(client_id) mod S``.

    The simulation analogue of hashing the client to an intermediate
    aggregate.  Dead shards are probed past linearly (``h, h+1, …`` mod
    ``S``), so a dead shard's slice deterministically re-routes to the
    next live shard and snaps back when the shard is revived.
    """

    name = "hash"

    def route(self, client_id: int, shards: list[_Shard]) -> int:
        start = _mix64(client_id) % len(shards)
        for probe in range(len(shards)):
            idx = (start + probe) % len(shards)
            if shards[idx].alive:
                return idx
        raise RuntimeError("no live shards to route to")


class LoadAwareShardRouting:
    """Least-loaded live shard, ties broken by the lowest shard id.

    Load is the shard's buffered-plus-in-flight update count, so a shard
    that just absorbed a re-routed slice stops attracting new clients
    until its peers catch up.
    """

    name = "load"

    def route(self, client_id: int, shards: list[_Shard]) -> int:
        best = -1
        best_load = None
        for idx, shard in enumerate(shards):
            if not shard.alive:
                continue
            load = shard.load()
            if best_load is None or load < best_load:
                best, best_load = idx, load
        if best < 0:
            raise RuntimeError("no live shards to route to")
        return best


def make_routing(policy: str):
    """Routing-policy factory for the ``shard_routing`` config knob."""
    if policy == "hash":
        return HashShardRouting()
    if policy == "load":
        return LoadAwareShardRouting()
    raise ValueError(f"unknown shard routing policy {policy!r}")


def merge_group_partials(group, partials, vector_length: int) -> np.ndarray:
    """Root-reduce per-shard *group* partials in ascending-shard order.

    The exact-arithmetic sibling of
    :meth:`ShardedFedBuffAggregator._merge_shards`: ``partials`` is a
    sequence of ``(shard_id, vector)`` pairs of the group's dtype, and
    the merge folds them with wraparound group addition in strictly
    ascending ``shard_id`` order.  Group math mod 2^bits is exact, so —
    unlike the float plane's ulp-tolerance contract — any reassociation
    of the shard folds is *bit-identical* to the single aggregator's
    sum; the ascending order is still pinned so the merge is one
    deterministic convention, not S! equivalent ones.

    Raises ``ValueError`` when shard ids are not strictly ascending; an
    empty sequence merges to the group identity (all zeros).
    """
    ids = [sid for sid, _ in partials]
    if any(b <= a for a, b in zip(ids, ids[1:])):
        raise ValueError(
            f"shard partials must merge in ascending shard order, got {ids}"
        )
    merged = group.zeros(vector_length)
    for _, vec in partials:
        group.add_into(merged, vec)
    return merged


class AggregationPlaneClock:
    """Critical-path model of ``S`` parallel shard lanes + a root reducer.

    The perf harness attaches one of these to a
    :class:`ShardedFedBuffAggregator` driven by a single thread: each
    shard fold's *measured* wall-clock cost is charged to that shard's
    lane, and each root merge + server step is charged to the root lane
    after a barrier over every shard lane (the reducer needs all
    partials; the next buffer epoch's folds start after the merged step,
    since their staleness is measured against the version it produced).
    ``elapsed`` is then the plane's end-to-end latency had the shards
    run on parallel cores — the scale-out analogue of the wall-clock the
    cohort/secagg sweeps measure in-process.
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.lanes = [0.0] * num_shards
        self.root = 0.0
        self.folds = 0
        self.merges = 0

    def record_fold(self, shard_id: int, seconds: float, n: int = 1) -> None:
        """``n`` updates' worth of fold work on ``shard_id``'s lane
        (``n > 1`` for one grouped block fold covering n updates)."""
        self.lanes[shard_id] = max(self.lanes[shard_id], self.root) + seconds
        self.folds += n

    def record_merge(self, seconds: float) -> None:
        """Root merge + server step: barriers on every shard lane."""
        self.root = max(self.root, max(self.lanes)) + seconds
        self.merges += 1

    @property
    def elapsed(self) -> float:
        """End-to-end plane latency (root and all lanes drained)."""
        return max(self.root, max(self.lanes))


class ShardedFedBuffAggregator(FedBuffAggregator):
    """FedBuff with horizontally sharded intermediate aggregation.

    Parameters are those of :class:`FedBuffAggregator` plus:

    num_shards:
        ``S`` — parallel shard cores folding arrival slices.
    routing:
        ``"hash"``, ``"load"``, or a routing object with
        ``route(client_id, shards) -> shard_id``.
    clock:
        Optional :class:`AggregationPlaneClock` collecting the measured
        per-fold / per-merge costs into the parallel-lane schedule (perf
        harness only; ``None`` skips all timing).
    """

    # Set by repro.obs.telemetry.RunTelemetry.attach when the spec
    # enables wall-clock profiling: shard folds and root merges feed a
    # PhaseProfiler through the same perf_counter seam the plane clock
    # uses.  None (the default) keeps fold paths timing-free.
    profiler = None

    def __init__(
        self,
        state,
        goal: int,
        *,
        num_shards: int = 1,
        routing="hash",
        clock: AggregationPlaneClock | None = None,
        **kwargs,
    ):
        super().__init__(state, goal, **kwargs)
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = num_shards
        self.routing = make_routing(routing) if isinstance(routing, str) else routing
        self.clock = clock
        self._shards = [_Shard() for _ in range(num_shards)]
        self._shard_of: dict[int, int] = {}  # client id -> shard id
        # Per-buffered-entry bookkeeping, parallel to the inherited
        # ``_staleness_acc``/``_contributors`` arrival-order lists; lets
        # drop_shard() excise exactly one shard's slice of the buffer.
        self._entry_shards: list[int] = []
        self._entry_weights: list[float] = []
        self.shard_failovers = 0

    # -- client protocol ------------------------------------------------------

    def register_download(self, client_id: int) -> tuple[int, np.ndarray]:
        """Record the download and route the client to a shard.

        With *every* shard dead (the whole plane lost its hosts and no
        capacity has recovered yet) the client is registered but left
        unrouted: its upload is rejected exactly like the single
        aggregator's dead-host path, instead of crashing the download
        event — ``shard_of`` stays ``None`` and the system layer aborts
        the session at upload time.
        """
        out = super().register_download(client_id)
        previous = self._shard_of.pop(client_id, None)
        if previous is not None:
            # Re-registration while in flight: release the old slot.
            self._shards[previous].in_flight -= 1
        try:
            shard_id = self.routing.route(client_id, self._shards)
        except RuntimeError:
            return out
        self._shard_of[client_id] = shard_id
        self._shards[shard_id].in_flight += 1
        return out

    def client_failed(self, client_id: int) -> None:
        super().client_failed(client_id)
        shard_id = self._shard_of.pop(client_id, None)
        if shard_id is not None:
            self._shards[shard_id].in_flight -= 1

    def shard_of(self, client_id: int) -> int | None:
        """The shard an in-flight client is routed to (None if unknown)."""
        return self._shard_of.get(client_id)

    def shard_alive(self, shard_id: int) -> bool:
        """Whether a shard is currently accepting contributions."""
        return self._shards[shard_id].alive

    # -- aggregation ------------------------------------------------------------

    def _release_slot(self, client_id: int) -> int:
        shard_id = self._shard_of.pop(client_id)
        self._shards[shard_id].in_flight -= 1
        return shard_id

    def _require_routed(self, client_id: int) -> None:
        """Reject an update whose client never got a shard (registered
        while the whole plane was dead) *before* ``_admit`` mutates any
        buffer accounting."""
        if client_id in self._in_flight and client_id not in self._shard_of:
            raise KeyError(
                f"client {client_id} registered while no shard was live; "
                "its contribution is lost (plane-wide outage)"
            )

    def receive_update(
        self, result: TrainingResult
    ) -> tuple[ModelUpdate, ServerStepInfo | None]:
        """Fold one update into its shard; maybe trigger the root merge."""
        self._require_routed(result.client_id)
        timed = self.clock is not None or self.profiler is not None
        t0 = time.perf_counter() if timed else 0.0
        try:
            result, update = self._admit(result)
        except ValueError:
            # _admit popped the client from the in-flight map before the
            # version check failed; keep the shard slot consistent.
            if result.client_id in self._shard_of:
                self._release_slot(result.client_id)
            raise
        shard_id = self._release_slot(result.client_id)
        shard = self._shards[shard_id]
        self._fold_one(shard_id, result, update)
        shard.count += 1
        shard.folds_total += 1
        self._entry_shards.append(shard_id)
        self._entry_weights.append(update.weight)
        if timed:
            # Admission + fold both run on the shard's thread.
            dt = time.perf_counter() - t0
            if self.clock is not None:
                self.clock.record_fold(shard_id, dt)
            if self.profiler is not None:
                self.profiler.record("shard_fold", dt)

        info = None
        if self._count >= self.goal:
            info = self._server_step()
        return update, info

    def receive_update_block(
        self, results: list[TrainingResult]
    ) -> list[tuple[ModelUpdate, ServerStepInfo | None]]:
        """Vectorized block arrival: per-shard grouped matrix folds.

        Semantics match calling :meth:`receive_update` per result in
        order (mid-block server steps included); each goal-bounded chunk
        is folded as one weights-by-deltas product *per shard*, so with
        one shard this is exactly the single core's block fold.  With a
        clock attached, each shard's grouped fold is charged to its lane
        as one block of ``len(group)`` folds.
        """
        out: list[tuple[ModelUpdate, ServerStepInfo | None]] = []
        pos = 0
        while pos < len(results):
            take = min(len(results) - pos, self.goal - self._count)
            chunk = results[pos : pos + take]
            pos += take
            admitted: list[tuple[int, TrainingResult, ModelUpdate]] = []
            try:
                for r in chunk:
                    self._require_routed(r.client_id)
                    try:
                        rr, update = self._admit(r)
                    except ValueError:
                        if r.client_id in self._shard_of:
                            self._release_slot(r.client_id)
                        raise
                    shard_id = self._release_slot(rr.client_id)
                    self._entry_shards.append(shard_id)
                    self._entry_weights.append(update.weight)
                    shard = self._shards[shard_id]
                    shard.count += 1
                    shard.folds_total += 1
                    admitted.append((shard_id, rr, update))
            finally:
                # Mirror the single core: everything admitted before a
                # mid-chunk rejection is still folded.
                for shard_id in sorted({s for s, _, _ in admitted}):
                    group = [(r, u) for s, r, u in admitted if s == shard_id]
                    timed = self.clock is not None or self.profiler is not None
                    t0 = time.perf_counter() if timed else 0.0
                    self._fold_group(shard_id, group)
                    if timed:
                        dt = time.perf_counter() - t0
                        if self.clock is not None:
                            self.clock.record_fold(shard_id, dt, n=len(group))
                        if self.profiler is not None:
                            self.profiler.record("shard_fold", dt)
            info = self._server_step() if self._count >= self.goal else None
            for i, (_, _, update) in enumerate(admitted):
                out.append((update, info if i == len(admitted) - 1 else None))
        return out

    # -- fold kernels (the seam the process executor overrides) ----------------

    def _fold_one(self, shard_id: int, result: TrainingResult,
                  update: ModelUpdate) -> None:
        """Fold one admitted update into its shard's partial (scalar AXPY).

        ``repro.core.parallel`` overrides this (and :meth:`_fold_group` /
        :meth:`_merge_shards`) to run the identical float operations on a
        worker process; everything around the fold — admission, counts,
        entry bookkeeping — stays on this class so both executors share
        one accounting path.
        """
        shard = self._shards[shard_id]
        if shard.buffer is None:
            shard.buffer = np.zeros_like(result.delta, dtype=np.float64)
        shard.buffer += update.weight * result.delta.astype(np.float64)

    def _fold_group(
        self, shard_id: int, group: list[tuple[TrainingResult, ModelUpdate]]
    ) -> None:
        """Fold one shard's slice of a block chunk as a grouped GEMM."""
        weights = np.array([u.weight for _, u in group], dtype=np.float64)
        deltas = np.stack([r.delta for r, _ in group]).astype(np.float64)
        shard = self._shards[shard_id]
        if shard.buffer is None:
            shard.buffer = np.zeros(deltas.shape[1], dtype=np.float64)
        shard.buffer += weights @ deltas

    def _merge_shards(self) -> np.ndarray:
        """Root reduce: fold shard partials in ascending shard order.

        The order is deterministic by construction (shard id, with empty
        shards skipped), so re-running the same arrival sequence merges
        identically; with exactly one non-empty partial the merge is the
        identity, which is what makes ``num_shards=1`` bit-identical to
        the single aggregator.
        """
        partials = [s.buffer for s in self._shards if s.buffer is not None]
        if not partials:  # all contributions were zero-weight-dropped shards
            return np.zeros(self.state.size, dtype=np.float64)
        if len(partials) == 1:
            return partials[0]
        return np.add.reduce(partials)

    def _server_step(self) -> ServerStepInfo:
        timed = self.clock is not None or self.profiler is not None
        t0 = time.perf_counter() if timed else 0.0
        self._buffer = self._merge_shards()
        info = super()._server_step()
        if timed:
            dt = time.perf_counter() - t0
            if self.clock is not None:
                self.clock.record_merge(dt)
            if self.profiler is not None:
                self.profiler.record("root_merge", dt)
        for shard in self._shards:
            shard.buffer = None
            shard.count = 0
        self._entry_shards = []
        self._entry_weights = []
        return info

    # -- failover (Appendix E.4, per shard) ------------------------------------

    def drop_shard(self, shard_id: int) -> tuple[int, list[int]]:
        """One shard's host died: discard its partial fold and its slice.

        The shard's buffered contributions never reached the root and
        are excised from the pending step's accounting; its in-flight
        clients are dropped (their uploads will be rejected exactly as
        on the single path after ``client_failed``).  The shard is
        marked dead so routing steers around it until
        :meth:`revive_shard`.  Returns (buffered updates lost, dropped
        client ids).
        """
        shard = self._shards[shard_id]
        shard.alive = False
        dropped = sorted(
            cid for cid, sid in self._shard_of.items() if sid == shard_id
        )
        for cid in dropped:
            self._shard_of.pop(cid)
            self._in_flight.pop(cid, None)
        shard.in_flight = 0
        lost = shard.count
        if lost:
            keep = [i for i, sid in enumerate(self._entry_shards) if sid != shard_id]
            self._staleness_acc = [self._staleness_acc[i] for i in keep]
            self._contributors = [self._contributors[i] for i in keep]
            self._entry_weights = [self._entry_weights[i] for i in keep]
            self._entry_shards = [self._entry_shards[i] for i in keep]
            # Sequential re-fold in arrival order: bit-identical to the
            # weight sum a single aggregator fed only the survivors
            # would have accumulated.
            self._weight_sum = sum(self._entry_weights, 0.0)
            self._count -= lost
        shard.buffer = None
        shard.count = 0
        self.shard_failovers += 1
        return lost, dropped

    def revive_shard(self, shard_id: int) -> None:
        """Bring a dead shard back empty (re-placed on a live node)."""
        shard = self._shards[shard_id]
        shard.alive = True
        shard.buffer = None
        shard.count = 0
        shard.in_flight = 0

    def drop_buffer_and_inflight(self) -> tuple[int, list[int]]:
        """Whole-plane failure: every shard partial and session is lost."""
        lost, dropped = super().drop_buffer_and_inflight()
        for shard in self._shards:
            shard.buffer = None
            shard.count = 0
            shard.in_flight = 0
        self._shard_of.clear()
        self._entry_shards = []
        self._entry_weights = []
        return lost, dropped

    # -- introspection ------------------------------------------------------------

    def live_shards(self) -> list[int]:
        """Ids of shards currently accepting contributions."""
        return [i for i, s in enumerate(self._shards) if s.alive]

    def shard_loads(self) -> list[int]:
        """Lifetime folds per shard (the load-skew telemetry)."""
        return [s.folds_total for s in self._shards]

    def shard_buffered(self) -> list[int]:
        """Updates currently sitting in each shard's partial fold."""
        return [s.count for s in self._shards]

    def shard_in_flight(self) -> list[int]:
        """In-flight clients routed to each shard."""
        return [s.in_flight for s in self._shards]

    def __repr__(self) -> str:
        return (
            f"ShardedFedBuffAggregator(goal={self.goal}, "
            f"shards={self.num_shards}, routing={self.routing.name}, "
            f"version={self.version}, buffered={self._count}, "
            f"in_flight={len(self._in_flight)})"
        )
