"""Central differential privacy for buffered asynchronous aggregation.

The paper's conclusion: "PAPAYA can be extended with features to enable
differential privacy, which we leave as future work."  This module is that
extension, implemented the standard DP-FedAvg/DP-FTRL way adapted to
FedBuff:

* every client delta is **clipped** to an L2 bound ``C`` before entering
  the buffer (bounding each user's sensitivity);
* with ``example_weighting="none"``, staleness weights ≤ 1 and
  ``normalize_by="goal"``, the buffered average changes by at most ``C/K``
  when one client's contribution is swapped — so adding Gaussian noise
  ``N(0, (z·C/K)²)`` to the average makes each server step a Gaussian
  mechanism with noise multiplier ``z``;
* privacy accounting uses **zero-concentrated DP** (Bun–Steinke): each
  release costs ``ρ = 1/(2z²)``, compositions add, and
  ``ε = ρ + 2·sqrt(ρ·ln(1/δ))`` converts to (ε, δ)-DP.

The accounting is deliberately conservative (no subsampling
amplification — in cross-device FL the server cannot verify sampling), so
reported ε is an upper bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.fedbuff import FedBuffAggregator, ServerStepInfo
from repro.core.types import TrainingResult
from repro.utils.rng import child_rng

__all__ = ["DPConfig", "ZCDPAccountant", "clip_by_l2_norm", "DPFedBuffAggregator"]


@dataclass(frozen=True)
class DPConfig:
    """Differential-privacy knobs for the aggregator.

    Attributes
    ----------
    clip_norm:
        L2 bound ``C`` applied to every client delta.
    noise_multiplier:
        ``z`` — the Gaussian noise standard deviation in units of the
        mechanism's sensitivity.  Typical federated values: 0.5–2.0.
    delta:
        Target δ for (ε, δ) reporting (rule of thumb: below 1/population).
    """

    clip_norm: float = 1.0
    noise_multiplier: float = 1.0
    delta: float = 1e-6

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if self.noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        if not (0.0 < self.delta < 1.0):
            raise ValueError("delta must be in (0, 1)")


class ZCDPAccountant:
    """Zero-concentrated DP composition for repeated Gaussian releases."""

    def __init__(self, config: DPConfig):
        self.config = config
        self.releases = 0

    def record_release(self) -> None:
        """Account for one noised server step."""
        self.releases += 1

    @property
    def rho(self) -> float:
        """Accumulated zCDP budget ``ρ = T / (2 z²)``."""
        z = self.config.noise_multiplier
        if z == 0:
            return math.inf if self.releases else 0.0
        return self.releases / (2.0 * z * z)

    def epsilon(self, delta: float | None = None) -> float:
        """(ε, δ)-DP bound via the standard zCDP conversion."""
        d = self.config.delta if delta is None else delta
        if not (0.0 < d < 1.0):
            raise ValueError("delta must be in (0, 1)")
        rho = self.rho
        if math.isinf(rho):
            return math.inf
        return rho + 2.0 * math.sqrt(rho * math.log(1.0 / d))


def clip_by_l2_norm(vec: np.ndarray, clip_norm: float) -> np.ndarray:
    """Rescale ``vec`` so its L2 norm is at most ``clip_norm``."""
    norm = float(np.linalg.norm(vec))
    if norm <= clip_norm or norm == 0.0:
        return vec.astype(np.float32, copy=True)
    return (vec * (clip_norm / norm)).astype(np.float32)


class DPFedBuffAggregator(FedBuffAggregator):
    """FedBuff with per-update clipping and per-step Gaussian noise.

    Enforces the weighting configuration under which the sensitivity
    analysis holds (unit example weights, goal normalization); rejecting
    anything else keeps the stated guarantee honest.
    """

    def __init__(self, state, goal: int, dp: DPConfig, seed: int = 0, **kwargs):
        kwargs.setdefault("example_weighting", "none")
        kwargs.setdefault("normalize_by", "goal")
        if kwargs["example_weighting"] != "none" or kwargs["normalize_by"] != "goal":
            raise ValueError(
                "the DP sensitivity bound requires example_weighting='none' "
                "and normalize_by='goal'"
            )
        super().__init__(state, goal, **kwargs)
        self.dp = dp
        self.accountant = ZCDPAccountant(dp)
        self._noise_rng = child_rng(seed, "dp-noise")

    def _transform_result(self, result: TrainingResult) -> TrainingResult:
        # Clip every delta on admission; routing through the parent's
        # transform hook keeps receive_update and receive_update_block on
        # one clipping definition (a block path that skipped clipping
        # would silently void the sensitivity bound).
        return TrainingResult(
            client_id=result.client_id,
            delta=clip_by_l2_norm(result.delta, self.dp.clip_norm),
            num_examples=result.num_examples,
            train_loss=result.train_loss,
            initial_version=result.initial_version,
        )

    def _server_step(self) -> ServerStepInfo:
        # Add the calibrated Gaussian noise directly into the buffer so the
        # parent's averaging-and-apply path stays untouched: noise on the
        # buffer sum with sigma = z·C is noise z·C/K on the K-average.
        sigma = self.dp.noise_multiplier * self.dp.clip_norm
        if sigma > 0 and self._buffer is not None:
            self._buffer = self._buffer + self._noise_rng.normal(
                0.0, sigma, size=self._buffer.shape
            )
        info = super()._server_step()
        self.accountant.record_release()
        return info

    @property
    def epsilon_spent(self) -> float:
        """Current (ε, δ)-DP bound at the configured δ."""
        return self.accountant.epsilon()
