"""Synchronous FL rounds with over-selection — the paper's baseline.

SyncFL proceeds in rounds (Figure 1): a cohort of ``goal × (1 + o)``
clients trains in parallel (``o`` = over-selection fraction, 0.3 in the
paper, following Bonawitz et al. 2019); once ``goal`` updates arrive, they
are averaged, the server model is updated, and *the updates of the
remaining (slow) clients are discarded* — the source of the sampling bias
the paper quantifies in Section 7.4.

PAPAYA's SyncFL implementation additionally supports mid-round client
replacement (Figure 1 caption): when a client fails mid-round, a new one
can take its place — unlike GFL, where a failed client can doom a round.

The core mirrors :class:`repro.core.fedbuff.FedBuffAggregator`'s interface
so the system layer treats both modes uniformly (the paper's point that
switching between SyncFL and AsyncFL is a configuration change,
Appendix E.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.fedbuff import ServerStepInfo
from repro.core.types import ModelUpdate, TrainingResult

__all__ = ["SyncRoundAggregator"]


class SyncRoundAggregator:
    """Round-based aggregation with over-selection discard.

    Parameters
    ----------
    state:
        Model state (see :mod:`repro.core.state`).
    goal:
        Updates aggregated per round ("aggregation goal").
    over_selection:
        Fraction of extra clients selected per round; their late updates
        are discarded.  The *cohort size* is ``ceil(goal * (1 + o))``.
    example_weighting:
        ``"linear"`` (FedAvg example weighting, default), ``"log"``,
        or ``"none"``.
    """

    def __init__(
        self,
        state,
        goal: int,
        over_selection: float = 0.0,
        example_weighting: str = "linear",
    ):
        if goal < 1:
            raise ValueError("aggregation goal must be at least 1")
        if not (0.0 <= over_selection < 1.0):
            raise ValueError("over_selection must be in [0, 1)")
        if example_weighting not in ("linear", "log", "none"):
            raise ValueError(f"unknown example_weighting {example_weighting!r}")
        self.state = state
        self.goal = goal
        self.over_selection = over_selection
        self.example_weighting = example_weighting

        self.version = 0  # == completed rounds
        self.updates_received = 0
        self.updates_discarded = 0
        self._buffer: np.ndarray | None = None
        self._weight_sum = 0.0
        self._count = 0
        self._contributors: list[int] = []
        self._in_flight: dict[int, int] = {}  # client id -> round joined
        self.step_history: list[ServerStepInfo] = []

    @property
    def cohort_size(self) -> int:
        """Clients trained per round including over-selection."""
        return int(np.ceil(self.goal * (1.0 + self.over_selection)))

    # -- client protocol ------------------------------------------------------

    def register_download(self, client_id: int) -> tuple[int, np.ndarray]:
        """A client joins the current round and downloads the model.

        Mid-round joins are allowed — this is PAPAYA's client-replacement
        capability; the new client simply trains on the current round's
        model.
        """
        self._in_flight[client_id] = self.version
        return self.version, self.state.current()

    def client_failed(self, client_id: int) -> None:
        """Drop a failed client; the system layer may select a replacement."""
        self._in_flight.pop(client_id, None)

    def in_flight_count(self) -> int:
        """Number of clients currently training in this round."""
        return len(self._in_flight)

    def stale_clients(self) -> list[int]:
        """Interface parity with FedBuff — sync rounds have no staleness."""
        return []

    def demand(self) -> int:
        """Clients the round still wants: cohort size minus in-flight.

        This implements the paper's SyncFL client-demand formula
        (Appendix E.3): demand is high at round start and shrinks as
        clients report.
        """
        outstanding = self.goal - self._count
        want = int(np.ceil(outstanding * (1.0 + self.over_selection)))
        return max(0, want - len(self._in_flight))

    # -- aggregation ------------------------------------------------------------

    def _example_weight(self, num_examples: int) -> float:
        if self.example_weighting == "linear":
            return float(num_examples)
        if self.example_weighting == "log":
            return float(np.log1p(num_examples))
        return 1.0

    def receive_update(
        self, result: TrainingResult
    ) -> tuple[ModelUpdate, ServerStepInfo | None]:
        """Accept one update; close the round when the goal is met.

        An update from a stale round (the client started before the last
        server step) is *discarded* — that is over-selection's waste, and
        it is counted in :attr:`updates_discarded`.
        """
        joined = self._in_flight.pop(result.client_id, None)
        if joined is None:
            raise KeyError(f"client {result.client_id} is not in flight")
        if joined != self.version:
            # Late arrival from a closed round: discarded, never aggregated.
            self.updates_discarded += 1
            update = ModelUpdate(result=result, arrival_version=self.version, weight=0.0)
            return update, None

        weight = self._example_weight(result.num_examples)
        update = ModelUpdate(result=result, arrival_version=self.version, weight=weight)
        if self._buffer is None:
            self._buffer = np.zeros_like(result.delta, dtype=np.float64)
        self._buffer += weight * result.delta.astype(np.float64)
        self._weight_sum += weight
        self._count += 1
        self.updates_received += 1
        self._contributors.append(result.client_id)

        info = None
        if self._count >= self.goal:
            info = self._close_round()
        return update, info

    def receive_update_block(
        self, results: list[TrainingResult]
    ) -> list[tuple[ModelUpdate, ServerStepInfo | None]]:
        """Accept a vectorized block of updates, closing rounds as they fill.

        Order-equivalent to sequential :meth:`receive_update` calls: stale
        arrivals are discarded exactly as they would be one-by-one, and a
        round close mid-block aborts the same in-flight clients.  Current-
        round updates within each goal-bounded chunk enter the float64
        buffer as one weights-by-deltas product (float64-rounding-level
        agreement with the sequential path).
        """
        out: list[tuple[ModelUpdate, ServerStepInfo | None]] = []
        pos = 0
        while pos < len(results):
            take = min(len(results) - pos, self.goal - self._count)
            chunk = results[pos : pos + take]
            pos += take
            fresh: list[tuple[TrainingResult, ModelUpdate]] = []
            pending: list[tuple[ModelUpdate, ServerStepInfo | None]] = []
            for result in chunk:
                joined = self._in_flight.pop(result.client_id, None)
                if joined is None:
                    self._flush_fresh(fresh)
                    fresh = []
                    raise KeyError(f"client {result.client_id} is not in flight")
                if joined != self.version:
                    self.updates_discarded += 1
                    update = ModelUpdate(
                        result=result, arrival_version=self.version, weight=0.0
                    )
                    pending.append((update, None))
                    continue
                weight = self._example_weight(result.num_examples)
                update = ModelUpdate(
                    result=result, arrival_version=self.version, weight=weight
                )
                self._weight_sum += weight
                self._count += 1
                self.updates_received += 1
                self._contributors.append(result.client_id)
                fresh.append((result, update))
                pending.append((update, None))
            self._flush_fresh(fresh)
            if self._count >= self.goal:
                info = self._close_round()
                pending[-1] = (pending[-1][0], info)
            out.extend(pending)
        return out

    def _flush_fresh(self, fresh: list[tuple[TrainingResult, ModelUpdate]]) -> None:
        """Vectorized buffer accumulation for current-round updates."""
        if not fresh:
            return
        weights = np.array([u.weight for _, u in fresh], dtype=np.float64)
        deltas = np.stack([r.delta for r, _ in fresh]).astype(np.float64)
        if self._buffer is None:
            self._buffer = np.zeros(deltas.shape[1], dtype=np.float64)
        self._buffer += weights @ deltas

    def _close_round(self) -> ServerStepInfo:
        avg = self._buffer / self._weight_sum if self._weight_sum > 0 else np.zeros_like(self._buffer)
        self.state.apply(avg.astype(np.float32), self._count)
        # Everyone still training is aborted and their effort wasted —
        # "once the aggregation goal is achieved, updates from other
        # devices still processing are discarded" (Figure 1 caption).
        aborted = tuple(self._in_flight)
        self.updates_discarded += len(aborted)
        self._in_flight.clear()
        self.version += 1
        info = ServerStepInfo(
            version=self.version,
            num_updates=self._count,
            total_weight=self._weight_sum,
            mean_staleness=0.0,
            max_staleness=0,
            contributors=tuple(self._contributors),
            discarded=aborted,
        )
        self.step_history.append(info)
        self._buffer = None
        self._weight_sum = 0.0
        self._count = 0
        self._contributors = []
        return info

    def drop_buffer_and_inflight(self) -> tuple[int, list[int]]:
        """Discard the open round's partial state (aggregator failure).

        See :meth:`repro.core.fedbuff.FedBuffAggregator.drop_buffer_and_inflight`;
        the round restarts from the surviving model state.
        """
        lost = self._count
        dropped = list(self._in_flight)
        self._buffer = None
        self._weight_sum = 0.0
        self._count = 0
        self._contributors = []
        self._in_flight.clear()
        return lost, dropped

    @property
    def buffered_count(self) -> int:
        """Updates received so far in the open round."""
        return self._count

    def __repr__(self) -> str:
        return (
            f"SyncRoundAggregator(goal={self.goal}, o={self.over_selection}, "
            f"round={self.version}, received={self._count}, "
            f"in_flight={len(self._in_flight)})"
        )
