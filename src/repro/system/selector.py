"""Selectors: the only components that talk to clients directly.

Section 4: Selectors advertise available tasks, summarize client
availability for the Coordinator, and route client requests to the
Aggregator responsible for their task using an *assignment map* refreshed
from the Coordinator.  Appendix E.4: a Selector holding a stale map (the
Coordinator re-placed tasks since the last refresh) fails the client's
first attempt; the client retries through a different Selector, and the
stale Selector refreshes its map on its next report.

The simulation keeps that behaviour: routing through a stale selector
costs one extra round trip, and the retry counter is observable for the
failure-recovery tests.
"""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.system.aggregator import FLTaskRuntime
from repro.system.coordinator import Coordinator
from repro.utils.logging import EventLog

__all__ = ["Selector"]


class Selector:
    """One stateless-ish routing frontend with a cached assignment map."""

    def __init__(
        self,
        selector_id: int,
        sim: Simulator,
        coordinator: Coordinator,
        log: EventLog,
    ):
        self.selector_id = selector_id
        self.sim = sim
        self.coordinator = coordinator
        self.log = log
        self._map_seq = coordinator.assignment_seq
        self.checkins_routed = 0
        self.stale_map_retries = 0

    @property
    def map_is_stale(self) -> bool:
        """Whether the coordinator has re-placed tasks since our refresh."""
        return self._map_seq != self.coordinator.assignment_seq

    def refresh_map(self) -> None:
        """Pull the latest assignment map (happens on every report)."""
        self._map_seq = self.coordinator.assignment_seq

    def route_checkin(
        self, compatible_tasks: list[str] | None = None
    ) -> tuple[FLTaskRuntime | None, float]:
        """Route one client check-in.

        Returns ``(task runtime or None, extra latency)``.  A stale map
        costs one retry's worth of latency (the client re-tries through
        another Selector); the stale Selector then refreshes.
        """
        extra_latency = 0.0
        if self.map_is_stale:
            self.stale_map_retries += 1
            extra_latency = 0.2  # failed attempt + retry through a peer
            self.refresh_map()
            self.log.emit(
                self.sim.now, f"selector:{self.selector_id}", "stale_map_retry"
            )
        self.checkins_routed += 1
        task_rt = self.coordinator.assign_client(compatible_tasks)
        return task_rt, extra_latency
