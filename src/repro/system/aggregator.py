"""Aggregator node and per-task runtime (Section 6.3, Appendix E).

An :class:`AggregatorNode` is persistent and stateful: it hosts one or
more tasks for their whole lifetime (tasks move only on failure or load
imbalance), drains an in-memory queue of uploaded updates with *sharded
parallel aggregation* (arriving updates go to the earliest-free shard —
the simulation analogue of hashing the aggregating thread id to an
intermediate aggregate), heartbeats to the Coordinator, and reports
per-task client demand.

An :class:`FLTaskRuntime` owns one task: its config, its aggregation core
(FedBuff or SyncFL — the mode switch of Appendix E.3), its trainer
adapter, and the set of live client sessions.  It is where server steps
trigger the paper's post-step actions: evaluating the new model, aborting
stale clients (async) and round stragglers (sync).
"""

from __future__ import annotations

from typing import Callable

from repro.core.fedbuff import FedBuffAggregator
from repro.core.staleness import PolynomialStaleness
from repro.core.syncfl import SyncRoundAggregator
from repro.core.types import TaskConfig, TrainingMode, TrainingResult
from repro.system.secure import SecureBufferedAggregator
from repro.sim.engine import Simulator
from repro.sim.trace import MetricsTrace, Outcome, ServerStepRecord
from repro.system.adapters import TrainerAdapter
from repro.system.client_runtime import ClientSession, CohortDispatcher, PendingTraining
from repro.utils.logging import EventLog

__all__ = ["FLTaskRuntime", "AggregatorNode"]


class FLTaskRuntime:
    """Server-side runtime of one FL task.

    ``cohort`` (optional) switches the task to cohort-dispatch mode:
    client trainings are deferred and executed in batched calls through
    the dispatcher instead of one by one at training-complete time (see
    :mod:`repro.system.client_runtime`).
    """

    # Set (per instance) by repro.sim.faults.FaultInjector when a
    # network_loss fault is scheduled; None means no interception and
    # zero overhead on the upload path.
    fault_gate = None

    # Set (per instance) by repro.obs.telemetry.RunTelemetry.attach when
    # the spec enables telemetry; None means no observation and zero
    # overhead beyond the attribute load.
    observer = None

    def __init__(
        self,
        config: TaskConfig,
        adapter: TrainerAdapter,
        sim: Simulator,
        trace: MetricsTrace,
        log: EventLog,
        on_slot_free: Callable[[], None] | None = None,
        cohort: CohortDispatcher | None = None,
    ):
        self.config = config
        self.adapter = adapter
        self.sim = sim
        self.trace = trace
        self.log = log
        self.on_slot_free = on_slot_free or (lambda: None)
        self.cohort = cohort

        if config.secure_aggregation and config.mode is not TrainingMode.ASYNC:
            raise ValueError(
                "secure aggregation is implemented via the Asynchronous "
                "SecAgg protocol; set mode=ASYNC (the paper's SMPC-based "
                "synchronous SecAgg is out of scope, Section 5)"
            )
        self.core = self._build_core(config, adapter)

        self.sessions: dict[int, ClientSession] = {}
        self.pending_assignments = 0
        self.node: "AggregatorNode | None" = None  # set on placement

    def _build_core(self, config: TaskConfig, adapter: TrainerAdapter):
        """Construct the task's aggregation core (the mode/privacy switch).

        Seam for the sharded runtimes: they override this to stand up a
        sharded core instead, so the base constructor never builds (and
        throws away) a single-core aggregator — for secure tasks that
        construction mints a pool of DH legs, which is far too expensive
        to waste.
        """
        if config.secure_aggregation:
            return SecureBufferedAggregator(
                adapter.state,
                goal=config.aggregation_goal,
                vector_length=adapter.state.size,
                staleness_policy=PolynomialStaleness(0.5),
                max_staleness=config.max_staleness,
                example_weighting=adapter.recommended_example_weighting,
            )
        if config.mode is TrainingMode.ASYNC:
            return FedBuffAggregator(
                adapter.state,
                goal=config.aggregation_goal,
                staleness_policy=PolynomialStaleness(0.5),
                max_staleness=config.max_staleness,
                example_weighting=adapter.recommended_example_weighting,
                normalize_by=adapter.recommended_normalization,
            )
        return SyncRoundAggregator(
            adapter.state,
            goal=config.aggregation_goal,
            over_selection=config.over_selection,
            example_weighting=adapter.recommended_example_weighting,
        )

    # -- demand (Section 6.2 / Appendix E.3) -----------------------------------

    def demand(self) -> int:
        """Clients this task wants right now.

        Async: ``concurrency − active − pending`` (Appendix E.3).
        Sync: the round's remaining cohort want, also capped by
        concurrency.
        """
        occupied = len(self.sessions) + self.pending_assignments
        headroom = self.config.concurrency - occupied
        if isinstance(self.core, SyncRoundAggregator):
            want = self.core.demand() - self.pending_assignments
            return max(0, min(want, headroom))
        return max(0, headroom)

    def demand_entries(self, node: "AggregatorNode") -> dict[str, int]:
        """This task's entries in ``node``'s heartbeat demand report.

        The whole-task runtime reports one entry from its single hosting
        node; the sharded runtime overrides this with per-shard entries
        for the shards ``node`` hosts.
        """
        return {self.config.name: self.demand()}

    def workload_on(self, node: "AggregatorNode") -> float:
        """This task's share of ``node``'s estimated workload
        (Section 6.3's ``concurrency × model size`` heuristic)."""
        return self.config.concurrency * self.config.model_size_bytes

    def is_routable(self) -> bool:
        """Whether a client assigned to this task could reach a live host."""
        return self.node is not None and self.node.alive

    # -- session lifecycle ------------------------------------------------------

    def attach_session(self, session: ClientSession) -> None:
        """A selected client confirmed its assignment and starts work."""
        self.pending_assignments = max(0, self.pending_assignments - 1)
        self.sessions[session.device_id] = session
        session.begin()

    def session_ended(self, session: ClientSession) -> None:
        """Free the client's slot (any outcome) and ask for replacement."""
        self.sessions.pop(session.device_id, None)
        self.on_slot_free()

    def active_count(self) -> int:
        """Sessions currently attached."""
        return len(self.sessions)

    # -- upload path ------------------------------------------------------------

    def upload_arrived(
        self, session: ClientSession, payload: "TrainingResult | PendingTraining"
    ) -> None:
        """An update reached the server; hand it to the hosting node's queue."""
        if self.fault_gate is not None and self.fault_gate.intercept_upload(
            self, session
        ):
            return  # injected network loss dropped the upload
        if self.node is None or not self.node.alive:
            # Hosting aggregator died while the update was in flight: the
            # update is lost; the client will be re-routed next time (the
            # abort also drops any still-deferred training).
            self.core.client_failed(session.device_id)
            session.abort(Outcome.ABORTED)
            return
        self.node.enqueue_update(self, session, payload)

    def process_update(
        self, session: ClientSession, payload: "TrainingResult | PendingTraining"
    ) -> None:
        """Deserialize + aggregate one update (runs on an aggregation shard)."""
        if self.sessions.get(session.device_id) is not session:
            # Aborted while queued (any deferred training was dropped at
            # abort time).  Identity check, not membership: the device may
            # already be back under a NEW session, which must not let this
            # stale upload through.
            return
        if isinstance(payload, PendingTraining):
            # Cohort dispatch: demanding this result trains a whole batch
            # of deferred clients in one vectorized call.
            result = self.cohort.resolve(payload)
        else:
            result = payload
        try:
            update, step = self.core.receive_update(result)
        except KeyError:
            session.abort(Outcome.ABORTED)
            return
        outcome = Outcome.AGGREGATED if update.weight > 0 else Outcome.DISCARDED
        if self.observer is not None:
            self.observer.on_update_admitted(session, outcome, update.staleness)
        # complete() fires on_end -> session_ended, which frees the slot.
        session.complete(outcome, staleness=update.staleness)
        if step is not None:
            self._on_server_step(step)

    def _on_server_step(self, step) -> None:
        """Post-step actions: evaluate, abort stragglers/stale clients."""
        loss = self.adapter.current_loss()
        self.trace.record_server_step(
            ServerStepRecord(
                time=self.sim.now,
                task=self.config.name,
                version=step.version,
                num_updates=step.num_updates,
                mean_staleness=step.mean_staleness,
                loss=loss,
            )
        )
        self.log.emit(
            self.sim.now, f"task:{self.config.name}", "server_step",
            version=step.version, loss=loss,
        )
        if self.observer is not None:
            self.observer.on_server_step(self.config.name, step, loss, self.sim.now)
        # SyncFL: everyone still training when the round closed is
        # discarded (over-selection waste).
        for device_id in step.discarded:
            sess = self.sessions.get(device_id)
            if sess is not None:
                sess.abort(Outcome.DISCARDED)
        # AsyncFL: abort clients whose staleness exceeded the bound
        # ("After every server model update, the aggregator aborts clients
        # whose staleness is larger than ... maximum staleness").
        if self.config.mode is TrainingMode.ASYNC:
            for device_id in self.core.stale_clients():
                self.core.client_failed(device_id)
                sess = self.sessions.get(device_id)
                if sess is not None:
                    sess.abort(Outcome.ABORTED)

    # -- failure handling (Appendix E.4) --------------------------------------

    def on_reassigned(self) -> None:
        """The hosting aggregator died; buffered updates and sessions are lost.

        Model state and version survive (checkpointed); everything in the
        failed node's memory does not.
        """
        lost, dropped = self.core.drop_buffer_and_inflight()
        self.log.emit(
            self.sim.now, f"task:{self.config.name}", "task_reassigned",
            lost_buffered=lost, dropped_clients=len(dropped),
        )
        for session in list(self.sessions.values()):
            session.abort(Outcome.ABORTED)
        self.sessions.clear()
        self.pending_assignments = 0
        self.on_slot_free()


class AggregatorNode:
    """A persistent aggregator process hosting several task runtimes."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        log: EventLog,
        drain_threads: int = 4,
        update_process_time_s: float = 0.01,
    ):
        if drain_threads < 1:
            raise ValueError("drain_threads must be at least 1")
        if update_process_time_s < 0:
            raise ValueError("update_process_time_s must be non-negative")
        self.node_id = node_id
        self.sim = sim
        self.log = log
        self.drain_threads = drain_threads
        self.update_process_time_s = update_process_time_s
        self.tasks: dict[str, FLTaskRuntime] = {}
        self.alive = True
        self.last_heartbeat = 0.0
        self._thread_free_at = [0.0] * drain_threads
        self.updates_processed = 0

    # -- placement ------------------------------------------------------------

    def host(self, task_rt: FLTaskRuntime) -> None:
        """Take over a task (initial placement or failover)."""
        task_rt.node = self
        self.tasks[task_rt.config.name] = task_rt
        self.log.emit(
            self.sim.now, f"aggregator:{self.node_id}", "task_hosted",
            task=task_rt.config.name,
        )

    def drop_task(self, name: str) -> FLTaskRuntime | None:
        """Stop hosting a task (it is being moved elsewhere)."""
        return self.tasks.pop(name, None)

    def estimated_workload(self) -> float:
        """Coordinator's placement heuristic: Σ concurrency × model size
        (sharded tasks contribute only their hosted shards' share)."""
        return sum(t.workload_on(self) for t in self.tasks.values())

    # -- queue + sharded parallel aggregation ------------------------------------

    def enqueue_update(
        self,
        task_rt: FLTaskRuntime,
        session: ClientSession,
        payload: "TrainingResult | PendingTraining",
    ) -> None:
        """Push an uploaded update into the in-memory queue.

        The draining thread pool is modeled as ``drain_threads`` parallel
        servers; an arriving update is dispatched to the earliest-free
        thread and costs ``update_process_time_s`` of deserialization +
        intermediate aggregation.
        """
        now = self.sim.now
        thread = min(
            range(self.drain_threads), key=lambda i: self._thread_free_at[i]
        )
        start = max(now, self._thread_free_at[thread])
        done = start + self.update_process_time_s
        self._thread_free_at[thread] = done
        self.updates_processed += 1
        if task_rt.observer is not None:
            task_rt.observer.on_enqueue(task_rt.config.name, start - now)
        self.sim.schedule(done - now, lambda: task_rt.process_update(session, payload))

    def queue_depth_seconds(self) -> float:
        """How far behind the busiest drain thread is (backpressure signal)."""
        return max(0.0, max(self._thread_free_at) - self.sim.now)

    # -- liveness ------------------------------------------------------------

    def demand_report(self) -> dict[str, int]:
        """Per-task client demand, shipped with each heartbeat.

        Sharded tasks hosted here contribute one entry per hosted shard
        (``task/s<shard>``) instead of a single whole-task entry.
        """
        report: dict[str, int] = {}
        for rt in self.tasks.values():
            report.update(rt.demand_entries(self))
        return report

    def fail(self) -> None:
        """Kill the node (failure-injection hook)."""
        self.alive = False
        self.log.emit(self.sim.now, f"aggregator:{self.node_id}", "failed")

    def recover(self) -> None:
        """Bring the node back empty (tasks were reassigned elsewhere)."""
        self.alive = True
        self._thread_free_at = [self.sim.now] * self.drain_threads
        self.log.emit(self.sim.now, f"aggregator:{self.node_id}", "recovered")
