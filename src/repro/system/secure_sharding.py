"""Hierarchical secure aggregation — sharded TSAs under one trusted root.

PAPAYA runs its two scale axes *together*: buffered asynchronous secure
aggregation (Section 5) sharded across many aggregators (Section 6.3).
This module composes the repro's two existing planes the same way
instead of adding a third beside them:

* each of ``S`` shards runs its own long-lived TSA + server pair
  (:class:`~repro.secagg.tsa.TrustedSecureAggregator` /
  :class:`~repro.secagg.server.SecAggServer`) over its arrival slice,
  with a per-shard :class:`~repro.secagg.server.LegPool` minting DH legs
  on demand;
* the untrusted root merges the shards' *masked* weighted group sums in
  deterministic ascending-shard order
  (:func:`repro.core.sharding.merge_group_partials`), and the trusted
  root (:class:`~repro.secagg.tsa.TrustedShardReducer`) merges the
  matching partial unmasks, enforces the **global** threshold, and
  releases one unmask vector per buffer epoch;
* a single decode then yields the weighted aggregate — the server still
  never observes an individual update in the clear.

Equivalence contract
--------------------
Stronger than the float plane's: group math mod 2^bits is exact under
machine wraparound, so for any shard count and either routing policy the
merged masked sum, the released unmask, the decoded model delta, and the
cumulative boundary-byte meters are **exactly equal** (``==``, no
tolerance) to the single secure plane fed the same arrivals.  Three
facts make this composition sound:

* a client's mask seed and DH key come from its *own* randomness stream
  (keyed by global ``version``/``updates_received`` counters, which stay
  global here), in a fixed order independent of which shard's leg it
  uses — so per-client masked vectors are bit-identical across planes;
* per-shard demand-minted legs (``block_size=1``) keep the total legs
  minted per epoch equal to the single plane's pool amortization, and a
  shard's partial release never crosses the trust boundary — only the
  reducer's one merged vector does — so the meters agree byte for byte;
* wraparound addition is associative and commutative, so reassociating
  the weighted folds by shard changes no output bit.

Shard failover composes with epoch re-keying exactly like the float
plane's :meth:`drop_shard`/:meth:`revive_shard`: a dead shard's slice is
excised from the open epoch (its masked contributions never reached the
root; the masks cancel out of nothing), routing steers around it, and
reviving re-keys the shard's TSA round so the survivor state matches a
single secure aggregator fed only the surviving arrivals.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.fedbuff import ServerStepInfo
from repro.core.sharding import (
    AggregationPlaneClock,
    make_routing,
    merge_group_partials,
)
from repro.core.staleness import PolynomialStaleness
from repro.core.types import ModelUpdate, TaskConfig, TrainingResult
from repro.secagg.client import LogBundle
from repro.secagg.server import LegPool, SecAggServer
from repro.secagg.tsa import TrustedSecureAggregator, TrustedShardReducer
from repro.system.adapters import TrainerAdapter
from repro.system.secure import WEIGHT_SCALE, SecureBufferedAggregator
from repro.system.sharding import ShardedFLTaskRuntime
from repro.utils.rng import child_rng

__all__ = [
    "SecureShardedAggregator",
    "ProcessSecureShardedAggregator",
    "SecureShardedFLTaskRuntime",
]


class _SecureShard:
    """One shard: a TSA + server pair folding masked updates over its slice."""

    __slots__ = (
        "tsa",
        "server",
        "pool",
        "alive",
        "in_flight",
        "count",
        "folds_total",
        "weights",
        "boundary_mark",
    )

    def __init__(
        self, tsa: TrustedSecureAggregator, server: SecAggServer, pool: LegPool
    ) -> None:
        self.tsa = tsa
        self.server = server
        self.pool = pool
        self.alive = True
        self.in_flight = 0      # clients routed here and still training
        self.count = 0          # masked updates accepted this epoch
        self.folds_total = 0    # lifetime folds (load/skew telemetry)
        self.weights: dict[int, int] = {}  # leg index -> integer weight
        self.boundary_mark = (0, 0)

    def load(self) -> int:
        """Routing load signal: buffered plus in-flight work."""
        return self.count + self.in_flight


class SecureShardedAggregator(SecureBufferedAggregator):
    """Sharded :class:`SecureBufferedAggregator` (drop-in, same contract).

    Parameters are those of the single secure plane plus:

    num_shards:
        ``S`` — parallel shard TSA/server pairs folding arrival slices.
    routing:
        ``"hash"``, ``"load"``, or a routing object with
        ``route(client_id, shards) -> shard_id`` (the float plane's
        policies, reused verbatim).
    clock:
        Optional :class:`~repro.core.sharding.AggregationPlaneClock`
        collecting measured per-fold / per-merge costs into the
        parallel-lane schedule (perf harness only).
    """

    def __init__(
        self,
        state,
        goal: int,
        vector_length: int,
        *,
        num_shards: int = 1,
        routing="hash",
        clock: AggregationPlaneClock | None = None,
        **kwargs,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = num_shards
        self.routing = make_routing(routing) if isinstance(routing, str) else routing
        self.clock = clock
        # Populated lazily by the first _begin_epoch (the base constructor
        # calls it after the group/codec/authority exist).
        self._shards: list[_SecureShard] = []
        self._shard_of: dict[int, int] = {}  # client id -> shard id
        self._reducer: TrustedShardReducer | None = None
        self._reducer_mark = 0
        # Per-buffered-entry bookkeeping parallel to the inherited
        # arrival-order lists; lets drop_shard() excise exactly one
        # shard's slice of the open epoch.
        self._entry_shards: list[int] = []
        self._entry_weights: list[int] = []
        self.shard_failovers = 0
        self.last_merged_masked_sum: np.ndarray | None = None
        self.last_unmask: np.ndarray | None = None
        super().__init__(state, goal, vector_length, **kwargs)

    # -- epoch management ------------------------------------------------------

    def _begin_epoch(self) -> None:
        """Open (or re-key) every live shard's Figure 16 session.

        The first call stands up ``S`` long-lived shard TSAs — all with
        ``threshold = goal``, so every leg's quote binds the *same*
        params hash a single-plane client would verify — plus the root
        reducer, and publishes the one manifest entry (every shard runs
        the same trusted binary).  Every later call re-keys each live
        shard's round and re-arms the reducer; dead shards are re-keyed
        at :meth:`revive_shard` time instead.
        """
        if not self._shards:
            for sid in range(self.num_shards):
                tsa = TrustedSecureAggregator(
                    self.group,
                    self.vector_length,
                    threshold=self.goal,
                    authority=self.authority,
                    rng=child_rng(self.seed, "tsa-epoch", 0, sid),
                    cache_masks=self._cache_masks,
                )
                # Demand minting: one leg per arriving client, so the
                # total legs minted per epoch across shards equals the
                # single plane's pool amortization (goal legs/epoch) for
                # any routing — the boundary meters depend on it.
                pool = LegPool(tsa, block_size=1, prefill=0)
                server = SecAggServer(tsa, self.codec, leg_pool=pool)
                self._shards.append(_SecureShard(tsa, server, pool))
            first = self._shards[0].tsa
            entry = b"manifest|" + first.binary_hash
            index = self.log.append(entry)
            self._log_bundle = LogBundle(
                entry=entry,
                index=index,
                size=self.log.size,
                root=self.log.root(),
                proof=self.log.inclusion_proof(index),
            )
            # The inherited client-side path reads the expected binary /
            # params hashes off _epoch_tsa; every shard shares both.
            self._epoch_tsa = first
            self._reducer = TrustedShardReducer(
                self.group, self.vector_length, self.goal
            )
        else:
            for shard in self._shards:
                if shard.alive:
                    shard.tsa.begin_round()
                    shard.server.begin_round()
            self._reducer.begin_round()
        for shard in self._shards:
            shard.boundary_mark = (
                shard.tsa.boundary_bytes_in,
                shard.tsa.boundary_bytes_out,
            )
            shard.weights = {}
            shard.count = 0
        self._reducer_mark = self._reducer.boundary_bytes_out
        self._epoch_weights = {}
        self._epoch_weight_total = 0.0
        self._epoch_staleness = []
        self._epoch_contributors = []
        self._entry_shards = []
        self._entry_weights = []

    # -- client protocol -------------------------------------------------------

    def register_download(self, client_id: int) -> tuple[int, np.ndarray]:
        """Record the download and route the client to a shard.

        Mirrors the float plane: with *every* shard dead the client is
        registered but left unrouted — its upload raises at admission
        exactly like the single aggregator's dead-host path.
        """
        out = super().register_download(client_id)
        previous = self._shard_of.pop(client_id, None)
        if previous is not None:
            self._shards[previous].in_flight -= 1
        try:
            shard_id = self.routing.route(client_id, self._shards)
        except RuntimeError:
            return out
        self._shard_of[client_id] = shard_id
        self._shards[shard_id].in_flight += 1
        return out

    def client_failed(self, client_id: int) -> None:
        super().client_failed(client_id)
        shard_id = self._shard_of.pop(client_id, None)
        if shard_id is not None:
            self._shards[shard_id].in_flight -= 1

    def shard_of(self, client_id: int) -> int | None:
        """The shard an in-flight client is routed to (None if unknown)."""
        return self._shard_of.get(client_id)

    def shard_alive(self, shard_id: int) -> bool:
        """Whether a shard is currently accepting contributions."""
        return self._shards[shard_id].alive

    # -- aggregation ------------------------------------------------------------

    def _release_route(self, client_id: int) -> int:
        shard_id = self._shard_of.pop(client_id)
        self._shards[shard_id].in_flight -= 1
        return shard_id

    def _require_routed(self, client_id: int) -> None:
        """Reject an update whose client never got a shard *before* the
        client-side participation mutates any accounting."""
        if client_id in self._in_flight and client_id not in self._shard_of:
            raise KeyError(
                f"client {client_id} registered while no shard was live; "
                "its contribution is lost (plane-wide outage)"
            )

    def _assign_leg(self, client_id: int):
        """The participating client's leg comes from its shard's TSA."""
        return self._shards[self._shard_of[client_id]].server.assign_leg()

    def _submit_one(self, client_id: int, submission) -> bool:
        """Submit to the client's shard server; keep per-shard accounting."""
        shard_id = self._release_route(client_id)
        shard = self._shards[shard_id]
        timed = self.clock is not None or self.profiler is not None
        t0 = time.perf_counter() if timed else 0.0
        ok = shard.server.submit(submission)
        if timed:
            dt = time.perf_counter() - t0
            if self.clock is not None:
                self.clock.record_fold(shard_id, dt)
            if self.profiler is not None:
                self.profiler.record("shard_fold", dt)
        if ok:
            shard.count += 1
            shard.folds_total += 1
            self._entry_shards.append(shard_id)
        return ok

    def _record_contribution(
        self, result: TrainingResult, leg_index: int, w_int: int, staleness: int
    ) -> None:
        # The weight lands in the *shard's* leg->weight map (leg indices
        # are a per-TSA namespace, so a flat epoch map would collide);
        # the arrival-order lists stay global, like the single plane's.
        shard_id = self._entry_shards[-1]
        self._shards[shard_id].weights[leg_index] = w_int
        self._entry_weights.append(w_int)
        self._epoch_weight_total += w_int
        self._epoch_staleness.append(staleness)
        self._epoch_contributors.append(result.client_id)
        self.updates_received += 1

    def receive_update(
        self, result: TrainingResult
    ) -> tuple[ModelUpdate, ServerStepInfo | None]:
        self._require_routed(result.client_id)
        try:
            return super().receive_update(result)
        except ValueError:
            # The version check failed after the in-flight pop; keep the
            # shard slot consistent, as the float plane does.
            if result.client_id in self._shard_of:
                self._release_route(result.client_id)
            raise

    def receive_update_block(
        self, results: list[TrainingResult]
    ) -> list[tuple[ModelUpdate, ServerStepInfo | None]]:
        """Drain a cohort through per-shard block submissions.

        Semantically identical to calling :meth:`receive_update` once
        per result, in order (mid-block epochs included) — but each
        goal-bounded chunk crosses each shard's secure boundary as one
        ``submit_block``, reusing the block data plane per shard.
        Aggregates are bit-identical to the per-arrival path: the block
        fold only reassociates exact group sums.
        """
        out: list[tuple[ModelUpdate, ServerStepInfo | None]] = []
        pos = 0
        while pos < len(results):
            take = min(
                len(results) - pos, self.goal - len(self._epoch_contributors)
            )
            chunk = results[pos : pos + take]
            pos += take
            pending: dict[int, list] = {}   # shard id -> submissions
            records: dict[int, list] = {}   # shard id -> (leg, w_int, entry)
            doomed: list[tuple[int, int, int, int]] = []
            try:
                for result in chunk:
                    self._require_routed(result.client_id)
                    try:
                        submission, weight, w_int, staleness = (
                            self._prepare_submission(result)
                        )
                    except ValueError:
                        if result.client_id in self._shard_of:
                            self._release_route(result.client_id)
                        raise
                    shard_id = self._release_route(result.client_id)
                    shard = self._shards[shard_id]
                    shard.server.complete_checkin(submission)
                    pending.setdefault(shard_id, []).append(submission)
                    records.setdefault(shard_id, []).append(
                        (submission.leg_index, w_int, len(self._epoch_contributors))
                    )
                    shard.count += 1
                    shard.folds_total += 1
                    self._entry_shards.append(shard_id)
                    self._record_contribution(
                        result, submission.leg_index, w_int, staleness
                    )
                    out.append(
                        (
                            ModelUpdate(
                                result=result,
                                arrival_version=self.version,
                                weight=weight,
                            ),
                            None,
                        )
                    )
            finally:
                # Mirror the single plane: everything gathered before a
                # mid-chunk validation error is still submitted, and
                # TSA-rejected contributions are rolled back.  Rejections
                # are collected across shards first and excised in
                # descending entry order so earlier deletions never shift
                # later recorded positions.
                timed = self.clock is not None or self.profiler is not None
                for shard_id in sorted(pending):
                    t0 = time.perf_counter() if timed else 0.0
                    flags = self._shards[shard_id].server.submit_block(
                        pending[shard_id]
                    )
                    if timed:
                        dt = time.perf_counter() - t0
                        if self.clock is not None:
                            self.clock.record_fold(
                                shard_id, dt, n=len(pending[shard_id])
                            )
                        if self.profiler is not None:
                            self.profiler.record("shard_fold", dt)
                    for (leg_index, w_int, entry), ok in zip(
                        records[shard_id], flags
                    ):
                        if not ok:
                            doomed.append((entry, shard_id, leg_index, w_int))
                for entry, shard_id, leg_index, w_int in sorted(
                    doomed, reverse=True
                ):
                    shard = self._shards[shard_id]
                    shard.weights.pop(leg_index, None)
                    shard.count -= 1
                    shard.folds_total -= 1
                    self._epoch_weight_total -= w_int
                    del self._epoch_staleness[entry]
                    del self._epoch_contributors[entry]
                    del self._entry_shards[entry]
                    del self._entry_weights[entry]
                    self.updates_received -= 1
            if doomed:
                raise RuntimeError("secure submission rejected by honest TSA")
            if len(self._epoch_contributors) >= self.goal:
                info = self._finalize_epoch()
                out[-1] = (out[-1][0], info)
        return out

    def _finalize_epoch(self) -> ServerStepInfo:
        """Merge shard partials, unmask once, step the model, re-key."""
        timed = self.clock is not None or self.profiler is not None
        t0 = time.perf_counter() if self.profiler is not None else 0.0
        masked_partials: list[tuple[int, np.ndarray]] = []
        reducer_shards = []
        total_w = 0
        for sid, shard in enumerate(self._shards):
            if not shard.weights:
                continue  # dead (excised at drop time) or simply empty
            tp = time.perf_counter() if timed else 0.0
            masked, w = shard.server.masked_weighted_sum(shard.weights)
            if timed and self.clock is not None:
                # Partial extraction runs on the shard's lane; it adds no
                # fold to the tally (those were counted per arrival).
                self.clock.record_fold(sid, time.perf_counter() - tp, n=0)
            masked_partials.append((sid, masked))
            reducer_shards.append(
                (sid, shard.tsa, {k: v for k, v in shard.weights.items() if v})
            )
            total_w += w
        tm = time.perf_counter() if timed else 0.0
        merged_masked = merge_group_partials(
            self.group, masked_partials, self.vector_length
        )
        unmask = self._reducer.release_merged_unmask(reducer_shards)
        encoded_sum = self.group.sub(merged_masked, unmask)
        weighted_sum = self.codec.decode_sum(
            encoded_sum, max(total_w, 1), self.clip_value
        )
        self.last_merged_masked_sum = merged_masked
        self.last_unmask = unmask
        avg = (weighted_sum / self._epoch_weight_total).astype(np.float32)
        self.state.apply(avg, len(self._epoch_contributors))
        self.version += 1
        self.epochs_completed += 1
        if timed:
            dt = time.perf_counter() - tm
            if self.clock is not None:
                self.clock.record_merge(dt)
            if self.profiler is not None:
                self.profiler.record("root_merge", dt)
        # Long-lived shard TSAs have cumulative meters; the epoch's share
        # is each shard's delta since its round opened, plus the
        # reducer's one merged release.
        for shard in self._shards:
            mark_in, mark_out = shard.boundary_mark
            self.boundary_bytes_in_total += shard.tsa.boundary_bytes_in - mark_in
            self.boundary_bytes_out_total += (
                shard.tsa.boundary_bytes_out - mark_out
            )
        self.boundary_bytes_out_total += (
            self._reducer.boundary_bytes_out - self._reducer_mark
        )
        info = ServerStepInfo(
            version=self.version,
            num_updates=len(self._epoch_contributors),
            total_weight=self._epoch_weight_total / WEIGHT_SCALE,
            mean_staleness=float(np.mean(self._epoch_staleness)),
            max_staleness=int(np.max(self._epoch_staleness)),
            contributors=tuple(self._epoch_contributors),
        )
        self.step_history.append(info)
        self._begin_epoch()
        if self.profiler is not None:
            self.profiler.record("secagg_finalize", time.perf_counter() - t0)
        return info

    # -- failover (Appendix E.4, per shard) ------------------------------------

    def drop_shard(self, shard_id: int) -> tuple[int, list[int]]:
        """One shard's host died: excise exactly its slice of the epoch.

        The shard's masked contributions never reached the root (its
        partial is computed at finalize time from state that just died),
        so excising its arrival-order entries leaves the epoch exactly
        as if a single secure aggregator had been fed only the
        survivors' arrivals — the dead slice's masks cancel out of
        nothing.  In-flight clients routed here are dropped; routing
        steers around the shard until :meth:`revive_shard` re-keys it.
        Returns (buffered updates lost, dropped client ids).
        """
        shard = self._shards[shard_id]
        shard.alive = False
        dropped = sorted(
            cid for cid, sid in self._shard_of.items() if sid == shard_id
        )
        for cid in dropped:
            self._shard_of.pop(cid)
            self._in_flight.pop(cid, None)
        shard.in_flight = 0
        lost = shard.count
        if lost:
            keep = [
                i for i, sid in enumerate(self._entry_shards) if sid != shard_id
            ]
            self._epoch_staleness = [self._epoch_staleness[i] for i in keep]
            self._epoch_contributors = [self._epoch_contributors[i] for i in keep]
            self._entry_weights = [self._entry_weights[i] for i in keep]
            self._entry_shards = [self._entry_shards[i] for i in keep]
            self._epoch_weight_total = float(sum(self._entry_weights))
        shard.weights = {}
        shard.count = 0
        self.shard_failovers += 1
        return lost, dropped

    def revive_shard(self, shard_id: int) -> None:
        """Bring a dead shard back empty, re-keying its TSA round.

        The re-key composes failover with epoch rotation: whatever round
        state the shard held when its host died (recovered seeds, cached
        mask rows, the accepted masked updates) is discarded, so its
        next partial covers exactly the contributions accepted after
        revival.  Minted legs survive, as across any ``begin_round``.
        """
        shard = self._shards[shard_id]
        shard.alive = True
        shard.tsa.begin_round()
        shard.server.begin_round()
        shard.weights = {}
        shard.count = 0
        shard.in_flight = 0

    def drop_buffer_and_inflight(self) -> tuple[int, list[int]]:
        """Whole-plane failure: every shard's epoch state and session is lost."""
        for shard in self._shards:
            shard.in_flight = 0
        self._shard_of.clear()
        return super().drop_buffer_and_inflight()

    # -- introspection ------------------------------------------------------------

    def live_shards(self) -> list[int]:
        """Ids of shards currently accepting contributions."""
        return [i for i, s in enumerate(self._shards) if s.alive]

    def shard_loads(self) -> list[int]:
        """Lifetime folds per shard (the load-skew telemetry)."""
        return [s.folds_total for s in self._shards]

    def shard_buffered(self) -> list[int]:
        """Masked updates currently buffered in each shard's open epoch."""
        return [s.count for s in self._shards]

    def shard_in_flight(self) -> list[int]:
        """In-flight clients routed to each shard."""
        return [s.in_flight for s in self._shards]

    def __repr__(self) -> str:
        return (
            f"SecureShardedAggregator(goal={self.goal}, "
            f"shards={self.num_shards}, routing={self.routing.name}, "
            f"version={self.version}, buffered={self.buffered_count}, "
            f"in_flight={len(self._in_flight)})"
        )


class ProcessSecureShardedAggregator(SecureShardedAggregator):
    """Secure sharded aggregation on real worker processes.

    Each shard's *entire* secure pipeline — deterministic client
    participation, demand leg minting, attestation verification, TSA
    admit — runs on that shard's worker process
    (:class:`~repro.core.parallel.SecureShardWorkerPool`), because the
    2048-bit modexps are what dominate the secure critical path; a
    fold-only executor would leave them serialized on the parent.  The
    parent validates arrivals, routes, keeps the FedBuff bookkeeping,
    and at the aggregation goal merges the shards' masked group sums
    and partial unmasks (written to a shared-memory slab) under the
    trusted root reducer.

    Bit-identical to the inline plane: workers derive every key, seed,
    and mask from the same ``child_rng`` chains, and leg indices are
    sequential per shard on both sides, so the parent can assign them
    without waiting for acks.

    A dead worker (or an exhausted input slab, or a reported rejection)
    triggers a permanent fallback to the inline executor: the parent
    catches each dormant inline shard up by burning the worker's
    lifetime leg mints off its virgin TSA RNG, then replays the open
    epoch's dispatch log — same derivations, same order — so the inline
    plane continues from exactly the state the workers held.
    """

    def __init__(
        self,
        state,
        goal: int,
        vector_length: int,
        *,
        start_method: str | None = None,
        on_event=None,
        **kwargs,
    ):
        super().__init__(state, goal, vector_length, **kwargs)
        from repro.core.parallel import SecureShardWorkerPool, _default_on_event

        if self.group.dtype != np.uint64:
            raise ValueError(
                "the secure process executor shares uint64 group slabs; "
                f"group dtype is {self.group.dtype}"
            )
        self._on_event = on_event or _default_on_event
        self._pool = SecureShardWorkerPool(
            num_shards=self.num_shards,
            vector_length=vector_length,
            slots=2 * goal,
            seed=self.seed,
            goal=goal,
            group_bits=self.group.bits,
            fp_scale=self.codec.scale,
            clip_value=self.clip_value,
            cache_masks=self._cache_masks,
            start_method=start_method,
            on_event=self._on_event,
        )
        # Cumulative worker boundary meters at the last accounting point,
        # per shard — finalize adds the delta, exactly like the inline
        # plane's per-epoch marks.
        self._worker_marks = [(0, 0)] * self.num_shards
        self._pool_active = True
        self.executor_fallbacks = 0

    @property
    def pool_active(self) -> bool:
        """Whether the secure pipeline still runs on worker processes."""
        return self._pool_active

    def kill_worker(self, shard_id: int) -> bool:
        """Chaos hook (``worker_kill`` fault): terminate one shard worker.

        The fallback fires at the next barrier/dispatch, replaying the
        dispatch log inline (bit-identically).  Returns False once
        already fallen back.
        """
        if not self._pool_active:
            return False
        return self._pool.kill_worker(shard_id)

    # -- fallback --------------------------------------------------------------

    def _fall_back(self, reason: str, **fields) -> None:
        """Permanently switch to the inline executor, bit-identically.

        The dormant inline shards (built by ``_begin_epoch``, never fed
        while the pool was active) have virgin TSA RNGs and empty
        rounds.  Catch-up: burn each worker's lifetime leg mints
        (``ops_total``) off the inline pool so the mint RNG aligns, mark
        the boundary meters (pre-epoch traffic was already accounted
        from worker acks), then replay the open epoch's participations
        with the same derivations in dispatch order.
        """
        if not self._pool_active:
            return
        self._pool_active = False
        self.executor_fallbacks += 1
        epoch_ops = self._pool.epoch_ops()
        for sid, shard in enumerate(self._shards):
            for _ in range(self._pool.minted_before_epoch(sid)):
                shard.pool.take()
            shard.boundary_mark = (
                shard.tsa.boundary_bytes_in,
                shard.tsa.boundary_bytes_out,
            )
            shard.weights = {}
        from repro.secagg.client import SecAggClient

        for sid, slot, cid, version, updates_received, w_int, n_ex in epoch_ops:
            shard = self._shards[sid]
            client = SecAggClient(
                client_id=cid,
                codec=self.codec,
                authority=self.authority,
                expected_binary_hash=shard.tsa.binary_hash,
                expected_params_hash=shard.tsa.params_hash,
                rng=child_rng(
                    self.seed, "secagg-client", cid, version, updates_received
                ),
            )
            leg = shard.server.assign_leg()
            submission = client.participate(
                self._pool.inputs[slot].copy(), leg,
                log_bundle=self._log_bundle, num_examples=n_ex,
            )
            if not shard.server.submit(submission):
                raise RuntimeError("secure submission rejected by honest TSA")
            shard.weights[submission.leg_index] = w_int
        self._on_event(
            "executor_fallback",
            {"reason": reason, "executor": "inline", **fields},
        )
        self._pool.close()

    # -- overridden pipeline seams ---------------------------------------------

    def receive_update(
        self, result: TrainingResult
    ) -> tuple[ModelUpdate, ServerStepInfo | None]:
        if not self._pool_active:
            return super().receive_update(result)
        t0 = time.perf_counter() if self.profiler is not None else 0.0
        self._require_routed(result.client_id)
        # The validation half of _prepare_submission; the crypto half
        # runs on the shard's worker.
        initial = self._in_flight.pop(result.client_id, None)
        if initial is None:
            raise KeyError(f"client {result.client_id} is not in flight")
        if initial != result.initial_version:
            self._release_route(result.client_id)
            raise ValueError(
                f"client {result.client_id} reported initial version "
                f"{result.initial_version}, aggregator recorded {initial}"
            )
        staleness = self.version - result.initial_version
        weight = self._example_weight(result.num_examples) * self.staleness_policy(
            staleness
        )
        w_int = max(1, int(round(weight * WEIGHT_SCALE)))
        shard_id = self._release_route(result.client_id)
        shard = self._shards[shard_id]
        # Demand minting is one leg per arrival, so per-shard leg
        # indices are sequential — the worker's assign_leg returns
        # exactly this index.
        leg_index = shard.folds_total
        try:
            self._pool.participate(
                shard_id, result.delta, result.client_id, self.version,
                self.updates_received, w_int, result.num_examples,
            )
        except Exception as exc:  # WorkerPoolError or a dead queue
            self._fall_back("pool_error", shard=shard_id, error=str(exc))
            from repro.secagg.client import SecAggClient

            client = SecAggClient(
                client_id=result.client_id,
                codec=self.codec,
                authority=self.authority,
                expected_binary_hash=shard.tsa.binary_hash,
                expected_params_hash=shard.tsa.params_hash,
                rng=child_rng(
                    self.seed, "secagg-client", result.client_id,
                    self.version, self.updates_received,
                ),
            )
            leg = shard.server.assign_leg()
            submission = client.participate(
                result.delta, leg, log_bundle=self._log_bundle,
                num_examples=result.num_examples,
            )
            if not shard.server.submit(submission):
                raise RuntimeError(
                    "secure submission rejected by honest TSA"
                ) from None
            leg_index = submission.leg_index
        shard.count += 1
        shard.folds_total += 1
        self._entry_shards.append(shard_id)
        self._record_contribution(result, leg_index, w_int, staleness)
        if self.profiler is not None:
            self.profiler.record("secagg_submit", time.perf_counter() - t0)
        update = ModelUpdate(
            result=result, arrival_version=self.version, weight=weight
        )
        info = None
        if len(self._epoch_contributors) >= self.goal:
            info = self._finalize_epoch()
        return update, info

    def receive_update_block(
        self, results: list[TrainingResult]
    ) -> list[tuple[ModelUpdate, ServerStepInfo | None]]:
        """Per-arrival dispatch *is* the block plane here: every arrival
        already crosses to its worker asynchronously, so cohort drains
        reduce to the sequential path (identical semantics and bits)."""
        if not self._pool_active:
            return super().receive_update_block(results)
        return [self.receive_update(result) for result in results]

    def _finalize_epoch(self) -> ServerStepInfo:
        if not self._pool_active:
            return super()._finalize_epoch()
        from repro.core.parallel import WorkerPoolError

        t0 = time.perf_counter() if self.profiler is not None else 0.0
        try:
            self._pool.barrier()
            masked_partials = []
            unmask_partials = []
            processed = 0
            total_w = 0
            for sid, shard in enumerate(self._shards):
                if not shard.weights:
                    continue
                _, shard_processed, shard_w, _, _ = self._pool.call(
                    sid, "finalize_partial"
                )
                masked_partials.append((sid, self._pool.masked_row(sid).copy()))
                unmask_partials.append((sid, self._pool.unmask_row(sid).copy()))
                processed += shard_processed
                total_w += shard_w
            meters = {
                sid: self._pool.call(sid, "meters")
                for sid in range(self.num_shards)
            }
        except WorkerPoolError as exc:
            self._fall_back(
                "worker_dead",
                dead=tuple(self._pool.dead_workers()),
                error=str(exc),
            )
            return super()._finalize_epoch()
        merged_masked = merge_group_partials(
            self.group, masked_partials, self.vector_length
        )
        unmask = self._reducer.merge_released_partials(unmask_partials, processed)
        encoded_sum = self.group.sub(merged_masked, unmask)
        weighted_sum = self.codec.decode_sum(
            encoded_sum, max(total_w, 1), self.clip_value
        )
        self.last_merged_masked_sum = merged_masked
        self.last_unmask = unmask
        avg = (weighted_sum / self._epoch_weight_total).astype(np.float32)
        self.state.apply(avg, len(self._epoch_contributors))
        self.version += 1
        self.epochs_completed += 1
        for sid in range(self.num_shards):
            _, m_in, m_out = meters[sid]
            mark_in, mark_out = self._worker_marks[sid]
            self.boundary_bytes_in_total += m_in - mark_in
            self.boundary_bytes_out_total += m_out - mark_out
            self._worker_marks[sid] = (m_in, m_out)
        self.boundary_bytes_out_total += (
            self._reducer.boundary_bytes_out - self._reducer_mark
        )
        info = ServerStepInfo(
            version=self.version,
            num_updates=len(self._epoch_contributors),
            total_weight=self._epoch_weight_total / WEIGHT_SCALE,
            mean_staleness=float(np.mean(self._epoch_staleness)),
            max_staleness=int(np.max(self._epoch_staleness)),
            contributors=tuple(self._epoch_contributors),
        )
        self.step_history.append(info)
        self._begin_epoch()
        try:
            for sid, shard in enumerate(self._shards):
                if shard.alive:
                    self._pool.call(sid, "begin_round")
            self._pool.reset_epoch()
        except WorkerPoolError as exc:
            self._fall_back(
                "worker_dead",
                dead=tuple(self._pool.dead_workers()),
                error=str(exc),
            )
        if self.profiler is not None:
            self.profiler.record("secagg_finalize", time.perf_counter() - t0)
        return info

    # -- failover ---------------------------------------------------------------

    def drop_shard(self, shard_id: int) -> tuple[int, list[int]]:
        if self._pool_active:
            self._pool.discard_shard(shard_id)
        return super().drop_shard(shard_id)

    def revive_shard(self, shard_id: int) -> None:
        super().revive_shard(shard_id)
        if self._pool_active:
            from repro.core.parallel import WorkerPoolError

            try:
                self._pool.call(shard_id, "begin_round")
            except WorkerPoolError as exc:
                self._fall_back(
                    "worker_dead", shard=shard_id, error=str(exc)
                )

    def drop_buffer_and_inflight(self) -> tuple[int, list[int]]:
        out = super().drop_buffer_and_inflight()
        if self._pool_active:
            from repro.core.parallel import WorkerPoolError

            try:
                self._pool.barrier()
                for sid, shard in enumerate(self._shards):
                    if shard.alive:
                        self._pool.call(sid, "begin_round")
                self._pool.reset_epoch()
            except WorkerPoolError as exc:
                self._fall_back(
                    "worker_dead",
                    dead=tuple(self._pool.dead_workers()),
                    error=str(exc),
                )
        return out

    def drain(self) -> None:
        """Barrier on every outstanding worker task (perf-harness hook)."""
        if self._pool_active:
            from repro.core.parallel import WorkerPoolError

            try:
                self._pool.barrier()
            except WorkerPoolError as exc:
                self._fall_back(
                    "worker_dead",
                    dead=tuple(self._pool.dead_workers()),
                    error=str(exc),
                )

    def close(self) -> None:
        """Tear down the worker pool (idempotent)."""
        self._pool.close()

    def __repr__(self) -> str:
        executor = "process" if self._pool_active else "inline(fallback)"
        return (
            f"ProcessSecureShardedAggregator(goal={self.goal}, "
            f"shards={self.num_shards}, routing={self.routing.name}, "
            f"executor={executor}, version={self.version})"
        )


class SecureShardedFLTaskRuntime(ShardedFLTaskRuntime):
    """Server-side runtime of one secure task whose aggregation is sharded.

    Everything the float sharded runtime does — shard→node placement,
    per-shard demand entries, upload routing, per-shard failover through
    the heartbeat/sweep machinery — is inherited unchanged; only the
    core differs: masked group folds per shard and one unmask release
    per epoch instead of float partial sums.  The Coordinator's
    placement and failover paths key on ``isinstance(...,
    ShardedFLTaskRuntime)``, so this subclass rides them for free.
    """

    def _build_core(self, config: TaskConfig, adapter: TrainerAdapter):
        if not config.secure_aggregation:
            raise ValueError(
                "SecureShardedFLTaskRuntime requires secure_aggregation; "
                "plain sharded tasks use ShardedFLTaskRuntime"
            )
        num_shards, shard_routing, executor = self._shard_core_opts
        core_kwargs = dict(
            goal=config.aggregation_goal,
            vector_length=adapter.state.size,
            num_shards=num_shards,
            routing=shard_routing,
            staleness_policy=PolynomialStaleness(0.5),
            max_staleness=config.max_staleness,
            example_weighting=adapter.recommended_example_weighting,
        )
        if executor == "process":
            # ProcessSecureShardedAggregator imports the multiprocessing
            # machinery lazily, so single-process paths never pay for it.
            return ProcessSecureShardedAggregator(
                adapter.state,
                on_event=self._executor_event_sink(),
                **core_kwargs,
            )
        return SecureShardedAggregator(adapter.state, **core_kwargs)
