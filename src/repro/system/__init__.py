"""PAPAYA server and client runtime: Coordinator, Selectors, Aggregators.

The system layer of the paper (Sections 4, 6, Appendix E), driven by the
discrete-event simulator in :mod:`repro.sim`.  Aggregation planes, shard
routing policies, and trainer adapters are pluggable name registries in
:mod:`repro.system.planes`; construction of whole deployments goes
through :mod:`repro.api`.
"""

from repro.system.adapters import RealTrainingAdapter, SurrogateAdapter, TrainerAdapter
from repro.system.aggregator import AggregatorNode, FLTaskRuntime
from repro.system.client_runtime import (
    ClientSession,
    CohortDispatcher,
    PendingTraining,
)
from repro.system.coordinator import Coordinator
from repro.system.orchestrator import (
    FederatedSimulation,
    RunResult,
    SystemConfig,
    TaskStats,
)
from repro.system.planes import (
    PlaneContext,
    PlaneFactory,
    register_plane,
    register_routing,
    register_trainer,
)
from repro.system.secure import LegPool, SecureBufferedAggregator
from repro.system.selector import Selector
from repro.system.sharding import (
    HashShardRouting,
    LoadAwareShardRouting,
    ShardedFLTaskRuntime,
)

__all__ = [
    "LegPool",
    "SecureBufferedAggregator",
    "RealTrainingAdapter",
    "SurrogateAdapter",
    "TrainerAdapter",
    "AggregatorNode",
    "FLTaskRuntime",
    "ClientSession",
    "CohortDispatcher",
    "PendingTraining",
    "Coordinator",
    "FederatedSimulation",
    "RunResult",
    "SystemConfig",
    "TaskStats",
    "Selector",
    "HashShardRouting",
    "LoadAwareShardRouting",
    "ShardedFLTaskRuntime",
    "PlaneContext",
    "PlaneFactory",
    "register_plane",
    "register_routing",
    "register_trainer",
]
