"""Wires population, network, and server components into runnable simulations.

:class:`FederatedSimulation` is the top-level entry point of the system
layer: give it task configs with trainer adapters, and it stands up the
PAPAYA deployment (Coordinator, Selectors, Aggregators), drives client
check-ins to keep every task at its target concurrency (the "fast client
replacement" of Section 6.2 — a freed slot triggers a new selection within
the selection latency), runs heartbeats and failure sweeps, and stops at a
time horizon, a target loss, or a server-step budget.

Failure injection (aggregator death, coordinator outage) is exposed as
methods so the recovery behaviour of Appendix E.4 is testable.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.types import TaskConfig
from repro.sim.engine import Simulator
from repro.sim.network import NetworkModel
from repro.sim.population import DevicePopulation
from repro.sim.trace import MetricsTrace, Outcome
from repro.system import planes
from repro.system.adapters import TrainerAdapter
from repro.system.aggregator import AggregatorNode, FLTaskRuntime
from repro.system.client_runtime import ClientSession, CohortDispatcher
from repro.system.coordinator import Coordinator
from repro.system.selector import Selector
from repro.utils.backoff import BackoffPolicy, RetryPolicy
from repro.utils.logging import EventLog
from repro.utils.rng import child_rng

__all__ = ["SystemConfig", "TaskStats", "RunResult", "FederatedSimulation"]


@dataclass(frozen=True)
class SystemConfig:
    """Deployment-level knobs of the simulated PAPAYA installation.

    ``min_reparticipation_interval_s`` implements the client runtime's
    participation-history tracking (Section 4): a device that finished a
    participation will not be selected again before the interval elapses,
    which spreads participation fairly across the population instead of
    repeatedly drafting the fastest devices.

    ``cohort_batch_size`` is the cohort-dispatch operating point: at 1
    (default) every client trains through the scalar path at its
    training-complete event; above 1, concurrently-in-flight trainings
    are deferred and executed in batched calls of up to this many clients
    (bit-equivalent results, identical event order and timings — only the
    simulator's wall-clock drops).

    ``num_shards`` / ``shard_routing`` switch every async task onto a
    sharded hierarchical aggregation plane: ``num_shards`` shard cores
    spread across the aggregator pool, clients routed to shards by a
    routing policy registered in :mod:`repro.system.planes` (``"hash"``
    and ``"load"`` built in), one root reducer merging shard partials
    per server step (see :mod:`repro.system.sharding`; secure tasks
    shard too — their root merges *masked group sums*, see
    :mod:`repro.system.secure_sharding`).
    The default ``num_shards=1`` never constructs any of it — the
    single-aggregator path is byte-for-byte the pre-sharding code.
    ``shard_executor`` picks where shard folds run: ``"inline"``
    (default — on the simulation thread, parallelism modeled by the
    plane clock) or ``"process"`` (real ``multiprocessing`` shard
    workers over shared memory, bit-identical results; see
    :mod:`repro.core.parallel`).

    ``drain_threads`` (previously the confusingly named ``n_shards``,
    which predates the PR-4 aggregation-plane shards) is the size of
    each :class:`AggregatorNode`'s queue-draining thread pool — a
    per-node concurrency knob, unrelated to ``num_shards``.

    ``plane`` selects the aggregation-plane factory from
    :mod:`repro.system.planes`: ``"auto"`` (default) derives it per task
    — secure tasks → ``"secure"`` (``"secure_sharded"`` when
    ``num_shards > 1``), ``num_shards > 1`` → ``"sharded"`` for async
    non-secure tasks, else ``"single"`` — while an explicit
    registered name pins every task to that plane (the extension point
    for custom planes).

    ``rebalance_queue_threshold_s`` is the aggregation-queue backpressure
    (seconds of backlog on a node's busiest drain thread) above which
    the Coordinator's heartbeat loop moves a task off an overloaded
    node (Section 6.3).

    ``selection_backoff`` / ``checkin_backoff`` / ``placement_retry``
    are the control plane's retry/backoff policies as compact strings
    (see :mod:`repro.utils.backoff`): the pump's per-check-in delay
    (base ``selection_latency_s``), the no-demand/saturated re-pump
    delay (base ``pump_interval_s``), and the Coordinator's task/shard
    re-placement policy.  The defaults reproduce the historical
    hard-coded behaviour bit-identically — same RNG draws, same delays.
    """

    n_aggregators: int = 2
    n_selectors: int = 2
    drain_threads: int = 4
    selection_latency_s: float = 1.0
    update_process_time_s: float = 0.01
    heartbeat_interval_s: float = 10.0
    heartbeat_miss_limit: int = 3
    recovery_period_s: float = 30.0
    failure_detection_s: float = 15.0
    pump_interval_s: float = 5.0
    min_reparticipation_interval_s: float = 0.0
    cohort_batch_size: int = 1
    num_shards: int = 1
    shard_routing: str = "hash"
    shard_executor: str = "inline"
    rebalance_queue_threshold_s: float = 30.0
    plane: str = "auto"
    selection_backoff: str = "fixed,jitter=0.5"
    checkin_backoff: str = "fixed"
    placement_retry: str = "always"

    def __post_init__(self) -> None:
        if self.n_aggregators < 1 or self.n_selectors < 1:
            raise ValueError("need at least one aggregator and one selector")
        if self.drain_threads < 1:
            raise ValueError("drain_threads must be at least 1")
        if self.selection_latency_s < 0 or self.failure_detection_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.min_reparticipation_interval_s < 0:
            raise ValueError("min_reparticipation_interval_s must be non-negative")
        if self.cohort_batch_size < 1:
            raise ValueError("cohort_batch_size must be at least 1")
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if self.shard_routing not in planes.routing_names():
            raise ValueError(
                f"shard_routing must be one of "
                f"{', '.join(planes.routing_names())} (got {self.shard_routing!r})"
            )
        if self.shard_executor not in ("inline", "process"):
            raise ValueError(
                "shard_executor must be 'inline' or 'process' "
                f"(got {self.shard_executor!r})"
            )
        if self.rebalance_queue_threshold_s <= 0:
            raise ValueError("rebalance_queue_threshold_s must be positive")
        if self.plane != "auto" and self.plane not in planes.plane_names():
            raise ValueError(
                f"plane must be 'auto' or a registered plane "
                f"({', '.join(planes.plane_names())}); got {self.plane!r}"
            )
        # Parse-validate the policy strings now so a bad policy fails at
        # config construction, not mid-run.
        for label, text in (
            ("selection_backoff", self.selection_backoff),
            ("checkin_backoff", self.checkin_backoff),
        ):
            try:
                BackoffPolicy.parse(text)
            except ValueError as exc:
                raise ValueError(f"{label}: {exc}") from None
        try:
            RetryPolicy.parse(self.placement_retry)
        except ValueError as exc:
            raise ValueError(f"placement_retry: {exc}") from None

    @property
    def n_shards(self) -> int:
        """Deprecated alias of :attr:`drain_threads` (renamed: it never
        meant aggregation-plane shards — that is ``num_shards``)."""
        warnings.warn(
            "SystemConfig.n_shards was renamed to drain_threads (it is the "
            "per-node queue-drain thread count, not the aggregation-plane "
            "shard count num_shards)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.drain_threads


_SYSTEM_CONFIG_INIT = SystemConfig.__init__


def _system_config_init(self, *args, n_shards: int | None = None, **kwargs):
    """Accept the deprecated ``n_shards=`` keyword as ``drain_threads``."""
    if n_shards is not None:
        warnings.warn(
            "SystemConfig(n_shards=...) was renamed to drain_threads (the "
            "per-node queue-drain thread count; aggregation-plane shards "
            "are num_shards)",
            DeprecationWarning,
            stacklevel=2,
        )
        if "drain_threads" in kwargs or len(args) >= 3:
            raise TypeError(
                "SystemConfig got both drain_threads and its deprecated "
                "alias n_shards"
            )
        kwargs["drain_threads"] = n_shards
    _SYSTEM_CONFIG_INIT(self, *args, **kwargs)


SystemConfig.__init__ = _system_config_init  # type: ignore[method-assign]


@dataclass(frozen=True)
class TaskStats:
    """Per-task summary of a finished run."""

    name: str
    server_steps: int
    final_loss: float
    time_to_target: float | None
    comm_trips: int          # client updates received at the server
    downloads: int           # model downloads (wasted ones included)
    aggregated: int
    discarded: int
    failed: int
    timeouts: int
    aborted: int
    mean_staleness: float


@dataclass
class RunResult:
    """Everything a finished simulation exposes to the harness."""

    duration_s: float
    trace: MetricsTrace
    log: EventLog
    task_stats: dict[str, TaskStats] = field(default_factory=dict)
    #: TelemetryReport when the run had telemetry attached, else None
    telemetry: object | None = None

    def stats(self, task: str | None = None) -> TaskStats:
        """Stats for a task (or the only task when unambiguous)."""
        if task is None:
            if len(self.task_stats) != 1:
                raise ValueError("multiple tasks; specify one")
            return next(iter(self.task_stats.values()))
        return self.task_stats[task]


class FederatedSimulation:
    """A runnable simulated PAPAYA deployment."""

    def __init__(
        self,
        tasks: list[tuple[TaskConfig, TrainerAdapter]],
        population: DevicePopulation,
        network: NetworkModel | None = None,
        system: SystemConfig | None = None,
        seed: int = 0,
        target_loss: float | None = None,
    ):
        if not tasks:
            raise ValueError("need at least one task")
        names = [cfg.name for cfg, _ in tasks]
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")

        self.population = population
        self.network = network or NetworkModel()
        self.system = system or SystemConfig()
        self.seed = seed
        self.target_loss = target_loss

        self.sim = Simulator()
        self.trace = MetricsTrace()
        self.log = EventLog()
        self._rng_devices = child_rng(seed, "orchestrator-devices")
        self._rng_routing = child_rng(seed, "orchestrator-routing")
        self._selection_backoff = BackoffPolicy.parse(
            self.system.selection_backoff,
            default_base=self.system.selection_latency_s,
        )
        self._checkin_backoff = BackoffPolicy.parse(
            self.system.checkin_backoff, default_base=self.system.pump_interval_s
        )
        # Set by a FaultInjector (repro.sim.faults) when a FaultSpec has
        # events; None on the default path, which therefore never pays
        # for fault interception.
        self.fault_injector = None
        # Set by repro.obs.telemetry.RunTelemetry.attach when the spec
        # enables telemetry; None on the default path, so telemetry-off
        # runs pay one attribute load per emission point and nothing
        # else.
        self.telemetry = None

        self.aggregators = [
            AggregatorNode(
                i,
                self.sim,
                self.log,
                drain_threads=self.system.drain_threads,
                update_process_time_s=self.system.update_process_time_s,
            )
            for i in range(self.system.n_aggregators)
        ]
        self.coordinator = Coordinator(
            self.sim,
            self.log,
            child_rng(seed, "coordinator"),
            heartbeat_interval_s=self.system.heartbeat_interval_s,
            heartbeat_miss_limit=self.system.heartbeat_miss_limit,
            recovery_period_s=self.system.recovery_period_s,
            placement_retry=RetryPolicy.parse(
                self.system.placement_retry,
                default_base=self.system.heartbeat_interval_s,
            ),
        )
        for node in self.aggregators:
            self.coordinator.register_aggregator(node)

        self.task_runtimes: dict[str, FLTaskRuntime] = {}
        for cfg, adapter in tasks:
            dispatcher = None
            if self.system.cohort_batch_size > 1:
                dispatcher = CohortDispatcher(
                    adapter, max_cohort=self.system.cohort_batch_size
                )
            # Plane selection + construction go through the registry in
            # repro.system.planes: new planes plug in by registration,
            # not by editing this loop.
            plane_name, fallback = planes.resolve_plane(cfg, self.system)
            if fallback is not None:
                self.log.emit(
                    self.sim.now, f"task:{cfg.name}", "plane_fallback",
                    task=cfg.name, requested=fallback["requested"],
                    chosen=plane_name, reason=fallback["reason"],
                )
            rt: FLTaskRuntime = planes.get_plane(plane_name).build(
                planes.PlaneContext(
                    config=cfg, adapter=adapter, sim=self.sim,
                    trace=self.trace, log=self.log, on_slot_free=self._pump,
                    cohort=dispatcher, system=self.system,
                )
            )
            self.task_runtimes[cfg.name] = rt
            self.coordinator.register_task(rt)

        self.selectors = [
            Selector(i, self.sim, self.coordinator, self.log)
            for i in range(self.system.n_selectors)
        ]

        self._active_devices: set[int] = set()
        self._participation_count: dict[int, int] = {}
        self._checkin_count: dict[int, int] = {}
        self._last_participation_end: dict[int, float] = {}
        self._outstanding_checkins = 0
        self._started = False

    # -- client supply: fast replacement ------------------------------------------

    def _total_demand(self) -> int:
        return sum(rt.demand() for rt in self.task_runtimes.values())

    def _pump(self) -> None:
        """Keep enough check-ins in flight to satisfy current demand.

        Every freed slot (completion, failure, abort, round close) calls
        this, which is exactly the paper's replacement mechanism: "as soon
        as one client completes training or fails, a new one is selected."
        """
        needed = self._total_demand() - self._outstanding_checkins
        for _ in range(max(0, needed)):
            self._outstanding_checkins += 1
            self.sim.schedule(
                self._selection_backoff.delay(self._rng_routing), self._checkin
            )

    def _sample_device(self) -> int | None:
        """Pick a random not-currently-active device id."""
        n = self.population.config.n_devices
        for _ in range(8):
            device_id = int(self._rng_devices.integers(n))
            if device_id not in self._active_devices:
                return device_id
        return None  # population saturated

    def _checkin(self) -> None:
        """One device checks in with a Selector (Section 6.1 selection)."""
        self._outstanding_checkins -= 1
        tel = self.telemetry
        device_id = self._sample_device()
        if device_id is None:
            if tel is not None:
                tel.on_checkin("saturated")
            self.sim.schedule(
                self._checkin_backoff.delay(self._rng_routing), self._pump
            )
            return
        count = self._checkin_count.get(device_id, 0)
        self._checkin_count[device_id] = count + 1
        cooldown = self.system.min_reparticipation_interval_s
        if cooldown > 0:
            last_end = self._last_participation_end.get(device_id)
            if last_end is not None and self.sim.now - last_end < cooldown:
                # Participation history says: too soon for this device.
                if tel is not None:
                    tel.on_checkin("cooldown")
                self._pump()
                return
        if not self.population.is_eligible(device_id, count, time_s=self.sim.now):
            # Device not idle/charging/unmetered right now; it will try
            # again later — meanwhile keep the supply topped up.
            if tel is not None:
                tel.on_checkin("ineligible")
            self._pump()
            return
        if self.fault_injector is not None and not self.fault_injector.allow_checkin(
            device_id
        ):
            # Inside an injected blackout/availability-wave window: the
            # device never reaches a selector.
            if tel is not None:
                tel.on_checkin("fault_blocked")
            self._pump()
            return
        selector = self.selectors[
            int(self._rng_routing.integers(len(self.selectors)))
        ]
        task_rt, extra_latency = selector.route_checkin()
        if task_rt is None:
            # No demand anywhere (or coordinator down): back off.
            if tel is not None:
                tel.on_checkin("no_demand")
            self.sim.schedule(
                self._checkin_backoff.delay(self._rng_routing), self._pump
            )
            return
        if tel is not None:
            tel.on_checkin("assigned")

        # checkout/release scope the profile object to the session: a no-op
        # for the cached object population, the lazy-materialization path
        # for the columnar fleet.
        profile = self.population.checkout(device_id)
        participation = self._participation_count.get(device_id, 0)
        self._participation_count[device_id] = participation + 1
        self._active_devices.add(device_id)
        session = ClientSession(
            profile=profile,
            task_rt=task_rt,
            sim=self.sim,
            network=self.network,
            population=self.population,
            trace=self.trace,
            participation=participation,
            failure_detection_s=self.system.failure_detection_s,
            on_end=lambda s, rt=task_rt: self._session_ended(rt, s),
        )
        if extra_latency > 0:
            self.sim.schedule(extra_latency, lambda: task_rt.attach_session(session))
        else:
            task_rt.attach_session(session)

    def _session_ended(self, task_rt: FLTaskRuntime, session: ClientSession) -> None:
        self._active_devices.discard(session.device_id)
        self._last_participation_end[session.device_id] = self.sim.now
        self.population.release(session.device_id)
        task_rt.session_ended(session)

    # -- control plane loops ------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        for node in self.aggregators:
            if node.alive:
                self.coordinator.on_heartbeat(node, node.demand_report())
        for selector in self.selectors:
            selector.refresh_map()
        self.coordinator.sweep_failures()
        self.coordinator.rebalance_overloaded(
            queue_threshold_s=self.system.rebalance_queue_threshold_s
        )
        if self.telemetry is not None:
            self.telemetry.on_heartbeat(self)
        self.sim.schedule(self.system.heartbeat_interval_s, self._heartbeat_loop)

    def _pump_loop(self) -> None:
        self._pump()
        self.sim.schedule(self.system.pump_interval_s, self._pump_loop)

    # -- failure injection ------------------------------------------------------

    def _ensure_fault_injector(self):
        """Lazily attach a :class:`~repro.sim.faults.FaultInjector`.

        Imported lazily (faults → orchestrator typing only) and seeded
        from the deployment seed; an injector without delay/loss/gate
        events installs no interception, so the ``inject_*`` shims keep
        their exact historical behaviour.
        """
        if self.fault_injector is None:
            from repro.sim.faults import FaultInjector

            FaultInjector(self, seed=self.seed)
        return self.fault_injector

    def inject_aggregator_failure(self, at_time: float, node_id: int = 0) -> None:
        """Deprecated shim: schedule an ``aggregator_crash`` fault event.

        Declare the fault in ``ScenarioSpec.faults`` instead; this method
        survives for the pre-FaultSpec call sites.
        """
        self._ensure_fault_injector().schedule(
            "aggregator_crash", at_time, node=node_id
        )

    def inject_coordinator_outage(self, at_time: float, duration_s: float) -> None:
        """Deprecated shim: schedule a ``coordinator_outage`` fault event.

        Declare the fault in ``ScenarioSpec.faults`` instead; this method
        survives for the pre-FaultSpec call sites.
        """
        self._ensure_fault_injector().schedule(
            "coordinator_outage", at_time, duration_s=duration_s
        )

    # -- run ------------------------------------------------------------

    def run(
        self,
        t_end: float,
        target_loss: float | None = None,
        max_server_steps: int | None = None,
        max_events: int | None = None,
    ) -> RunResult:
        """Execute the simulation.

        Parameters
        ----------
        t_end:
            Simulated-time horizon in seconds.
        target_loss:
            Stop as soon as *every* task's last step loss is at or below
            this (overrides the constructor's value when given).
        max_server_steps:
            Stop when any task reaches this many server steps.
        max_events:
            Hard event budget (safety valve).
        """
        target = target_loss if target_loss is not None else self.target_loss
        if not self._started:
            self._started = True
            self._heartbeat_loop()
            self._pump_loop()

        names = list(self.task_runtimes)

        def stop() -> bool:
            if target is not None and self.trace.last_loss and all(
                self.trace.last_loss.get(n, float("inf")) <= target for n in names
            ):
                return True
            if max_server_steps is not None and any(
                self.trace.step_counts.get(n, 0) >= max_server_steps for n in names
            ):
                return True
            return False

        end = self.sim.run_until(t_end, stop=stop, max_events=max_events)
        return self._build_result(end, target)

    def _build_result(self, end: float, target: float | None) -> RunResult:
        result = RunResult(duration_s=end, trace=self.trace, log=self.log)
        for name, rt in self.task_runtimes.items():
            parts = [p for p in self.trace.participations if p.task == name]
            outcomes = {o: 0 for o in Outcome}
            for p in parts:
                outcomes[p.outcome] += 1
            stales = [
                p.staleness for p in parts if p.outcome is Outcome.AGGREGATED
            ]
            result.task_stats[name] = TaskStats(
                name=name,
                server_steps=self.trace.step_counts.get(name, 0),
                final_loss=self.trace.last_loss.get(name, float("inf")),
                time_to_target=(
                    self.trace.time_to_loss(target, name) if target is not None else None
                ),
                comm_trips=outcomes[Outcome.AGGREGATED] + outcomes[Outcome.DISCARDED],
                downloads=len(parts),
                aggregated=outcomes[Outcome.AGGREGATED],
                discarded=outcomes[Outcome.DISCARDED],
                failed=outcomes[Outcome.FAILED],
                timeouts=outcomes[Outcome.TIMEOUT],
                aborted=outcomes[Outcome.ABORTED],
                mean_staleness=float(np.mean(stales)) if stales else 0.0,
            )
        if self.telemetry is not None:
            result.telemetry = self.telemetry.finalize(result)
        return result
