"""System wiring of the sharded aggregation plane (Section 6.3 at scale).

One FL task past a single aggregator: the task's
:class:`~repro.core.sharding.ShardedFedBuffAggregator` runs ``S`` shard
cores, and this module spreads those shards across *multiple*
:class:`~repro.system.aggregator.AggregatorNode` processes.

* :class:`ShardedFLTaskRuntime` owns the sharded core plus the
  shard→node placement map.  Client uploads route to the node hosting
  the client's shard (the shard itself was chosen at download time by
  the core's routing policy — :class:`HashShardRouting` or
  :class:`LoadAwareShardRouting`, re-exported here); each hosting node's
  heartbeat carries *per-shard* demand entries (``task/s3: 12``), the
  even split of the task's headroom over the live shards.
* Shard failover reuses the heartbeat/sweep machinery: when the
  Coordinator declares a node dead, the shards it hosted drop their
  partial folds and in-flight contributions
  (:meth:`ShardedFedBuffAggregator.drop_shard` — sessions routed to
  those shards are aborted, everything else keeps running), their slice
  re-routes to the surviving shards, and the Coordinator re-places each
  dead shard on the least-loaded live node, reviving it empty.  With no
  live node available the shard simply stays dead — its slice remains
  re-routed — until a recovery sweep finds capacity.

``SystemConfig(num_shards=1)`` (the default) never constructs any of
this: the single-aggregator path is the untouched, bit-identical code
that existed before sharding.
"""

from __future__ import annotations

from typing import Callable

from repro.core.sharding import (
    HashShardRouting,
    LoadAwareShardRouting,
    ShardedFedBuffAggregator,
)
from repro.core.staleness import PolynomialStaleness
from repro.core.types import TaskConfig, TrainingMode, TrainingResult
from repro.sim.engine import Simulator
from repro.sim.trace import MetricsTrace, Outcome
from repro.system.adapters import TrainerAdapter
from repro.system.aggregator import AggregatorNode, FLTaskRuntime
from repro.system.client_runtime import ClientSession, CohortDispatcher, PendingTraining
from repro.utils.logging import EventLog

__all__ = [
    "HashShardRouting",
    "LoadAwareShardRouting",
    "ShardedFLTaskRuntime",
]


class ShardedFLTaskRuntime(FLTaskRuntime):
    """Server-side runtime of one FL task whose aggregation is sharded.

    Everything the base runtime does (sessions, demand, post-step
    actions, cohort dispatch) is inherited; what changes is the
    aggregation core (``S`` shard cores + root reducer) and the hosting
    model: instead of one ``node``, a ``shard_nodes`` map places each
    shard on an :class:`AggregatorNode` (several shards may share a
    node).  ``self.node`` tracks shard 0's host — the root reducer is
    colocated with the first shard.
    """

    def __init__(
        self,
        config: TaskConfig,
        adapter: TrainerAdapter,
        sim: Simulator,
        trace: MetricsTrace,
        log: EventLog,
        on_slot_free: Callable[[], None] | None = None,
        cohort: CohortDispatcher | None = None,
        num_shards: int = 2,
        shard_routing: str = "hash",
        executor: str = "inline",
    ):
        if executor not in ("inline", "process"):
            raise ValueError(
                f"executor must be 'inline' or 'process' (got {executor!r})"
            )
        if config.mode is not TrainingMode.ASYNC:
            raise ValueError(
                "sharded aggregation requires mode=ASYNC: FedBuff's "
                "buffered fold is what the shards partially evaluate"
            )
        # Stashed before the base constructor runs, because it calls the
        # _build_core seam, which consumes them.
        self._shard_core_opts = (num_shards, shard_routing, executor)
        super().__init__(config, adapter, sim, trace, log, on_slot_free, cohort)
        self.shard_nodes: dict[int, AggregatorNode] = {}

    def _executor_event_sink(self) -> Callable[[str, dict], None]:
        """Structured-event sink for the process executor.

        Executor events (dead-worker fallback and friends) land in the
        event log under the task's name, so a trace reader can see when
        a run silently degraded to the inline fold.
        """
        sim, log, name = self.sim, self.log, self.config.name

        def _executor_event(kind: str, fields: dict) -> None:
            log.emit(sim.now, f"task:{name}", kind, **fields)

        return _executor_event

    def _build_core(self, config: TaskConfig, adapter: TrainerAdapter):
        """Stand up the sharded float core (inline or process executor)."""
        if config.secure_aggregation:
            raise ValueError(
                "secure tasks shard through the secure_sharded plane "
                "(SecureShardedFLTaskRuntime): this runtime folds float "
                "partials, not masked group sums"
            )
        num_shards, shard_routing, executor = self._shard_core_opts
        core_kwargs = dict(
            goal=config.aggregation_goal,
            num_shards=num_shards,
            routing=shard_routing,
            staleness_policy=PolynomialStaleness(0.5),
            max_staleness=config.max_staleness,
            example_weighting=adapter.recommended_example_weighting,
            normalize_by=adapter.recommended_normalization,
        )
        if executor == "process":
            # Lazy import: the single-process paths never pay for the
            # multiprocessing machinery.
            from repro.core.parallel import ProcessShardedFedBuffAggregator

            return ProcessShardedFedBuffAggregator(
                adapter.state,
                on_event=self._executor_event_sink(),
                **core_kwargs,
            )
        return ShardedFedBuffAggregator(adapter.state, **core_kwargs)

    # -- placement ------------------------------------------------------------

    def place_shard(self, shard_id: int, node: AggregatorNode) -> None:
        """Host one shard on ``node`` (initial placement or failover)."""
        if not (0 <= shard_id < self.core.num_shards):
            raise ValueError(f"no such shard {shard_id}")
        self.shard_nodes[shard_id] = node
        if shard_id == 0:
            self.node = node  # the root reducer rides with shard 0
        if node.tasks.get(self.config.name) is not self:
            node.tasks[self.config.name] = self
        self.log.emit(
            self.sim.now, f"aggregator:{node.node_id}", "shard_hosted",
            task=self.config.name, shard=shard_id,
        )

    def hosted_shards(self, node: AggregatorNode) -> list[int]:
        """Shards of this task currently hosted on ``node``."""
        return sorted(
            sid for sid, n in self.shard_nodes.items() if n is node
        )

    def unplaced_shards(self) -> list[int]:
        """Shards with no hosting node (lost their host, not yet re-placed)."""
        return [
            sid for sid in range(self.core.num_shards)
            if sid not in self.shard_nodes
        ]

    def is_routable(self) -> bool:
        """Clients can be assigned while any shard's host is alive."""
        return any(node.alive for node in self.shard_nodes.values())

    # -- per-node demand / workload (heartbeat reports) -------------------------

    def _live_shard_ids(self) -> list[int]:
        return [
            sid for sid in sorted(self.shard_nodes)
            if self.shard_nodes[sid].alive and self.core.shard_alive(sid)
        ]

    def demand_entries(self, node: AggregatorNode) -> dict[str, int]:
        """Per-shard demand entries for the shards ``node`` hosts.

        The task's headroom is split evenly over the live shards
        (remainder to the lowest shard ids), so summing every hosting
        node's heartbeat report recovers the task's total demand.
        """
        live = self._live_shard_ids()
        if not live:
            return {}
        total = self.demand()
        share, remainder = divmod(total, len(live))
        entries: dict[str, int] = {}
        for rank, sid in enumerate(live):
            if self.shard_nodes[sid] is node:
                entries[f"{self.config.name}/s{sid}"] = share + (
                    1 if rank < remainder else 0
                )
        return entries

    def workload_on(self, node: AggregatorNode) -> float:
        """This task's share of ``node``'s estimated workload.

        The placement heuristic's ``concurrency × model size`` product,
        scaled by the fraction of shards hosted there.
        """
        hosted = len(self.hosted_shards(node))
        return (
            self.config.concurrency * self.config.model_size_bytes
            * hosted / self.core.num_shards
        )

    # -- upload path ------------------------------------------------------------

    def upload_arrived(
        self, session: ClientSession, payload: "TrainingResult | PendingTraining"
    ) -> None:
        """Route the upload to the node hosting the client's shard."""
        if self.fault_gate is not None and self.fault_gate.intercept_upload(
            self, session
        ):
            return  # injected network loss dropped the upload
        shard_id = self.core.shard_of(session.device_id)
        node = self.shard_nodes.get(shard_id) if shard_id is not None else None
        if (
            shard_id is None
            or node is None
            or not node.alive
            or not self.core.shard_alive(shard_id)
        ):
            # The shard (or its host) died while the update was in
            # flight: the contribution is lost, exactly like the
            # single-aggregator dead-node path.
            self.core.client_failed(session.device_id)
            session.abort(Outcome.ABORTED)
            return
        node.enqueue_update(self, session, payload)

    # -- failure handling (Appendix E.4, per shard) -----------------------------

    def drop_shards_on(self, node: AggregatorNode) -> list[int]:
        """A hosting node died: fail over every shard it hosted.

        Each such shard's partial fold and in-flight contributions are
        dropped (their sessions aborted); the shard is left *unplaced*
        and dead — routing steers its slice to the surviving shards —
        until the Coordinator re-places it.  Sessions on other shards
        keep running: that is the whole point of partial failure.
        Returns the shard ids dropped.
        """
        dropped_shards = self.hosted_shards(node)
        for sid in dropped_shards:
            lost, dropped_clients = self.core.drop_shard(sid)
            del self.shard_nodes[sid]
            self.log.emit(
                self.sim.now, f"task:{self.config.name}", "shard_failed",
                shard=sid, node=node.node_id, lost_buffered=lost,
                dropped_clients=len(dropped_clients),
            )
            for cid in dropped_clients:
                sess = self.sessions.get(cid)
                if sess is not None:
                    sess.abort(Outcome.ABORTED)
        if dropped_shards:
            self.on_slot_free()
        return dropped_shards

    def on_reassigned(self) -> None:  # pragma: no cover - guarded by coordinator
        raise RuntimeError(
            "sharded tasks fail over per shard (drop_shards_on), never "
            "as a whole"
        )

    # -- teardown ---------------------------------------------------------------

    def close(self) -> None:
        """Release executor resources (worker processes, shared memory).

        A no-op for the inline executor; idempotent.  The process pool
        also has a GC finalizer, so forgetting to call this leaks
        nothing past interpreter exit — but tests and long-lived drivers
        should close deterministically.
        """
        close = getattr(self.core, "close", None)
        if close is not None:
            close()
