"""The Coordinator: task placement, client assignment, failure recovery.

Section 4: "there is only one Coordinator"; it (1) assigns FL tasks to
Aggregators, (2) assigns clients to FL tasks, and (3) provides centralized
coordination and ensures tasks progress in the face of Aggregator
failures.

Client assignment follows Section 6.2 exactly:

* **demand tracking** — each Aggregator reports per-task demand with its
  heartbeats; the Coordinator pools them and *explicitly accounts for
  clients that have been assigned but have not yet confirmed* (the
  ``pending_assignments`` counter on each task runtime);
* **eligibility** — a task is eligible for a client if the client is
  compatible and the task has positive demand;
* **assignment** — the Coordinator picks uniformly at random among
  eligible tasks and instructs the Selector to forward the client to the
  responsible Aggregator.

Failure handling follows Appendix E.4: aggregator death is detected by
missed heartbeats and its tasks move to the least-loaded live node;
coordinator death pauses *new* assignments only — participating clients
are unaffected — and recovery spends a configurable window rebuilding the
assignment view before resuming.
"""

from __future__ import annotations

import numpy as np

from repro.sim.engine import Simulator
from repro.system.aggregator import AggregatorNode, FLTaskRuntime
from repro.system.sharding import ShardedFLTaskRuntime
from repro.utils.backoff import RetryPolicy
from repro.utils.logging import EventLog

__all__ = ["Coordinator"]


class Coordinator:
    """Singleton control plane of the simulated deployment."""

    # Set by repro.obs.telemetry.RunTelemetry.attach when the spec
    # enables telemetry; None means zero overhead on failover paths.
    observer = None

    def __init__(
        self,
        sim: Simulator,
        log: EventLog,
        rng: np.random.Generator,
        heartbeat_interval_s: float = 10.0,
        heartbeat_miss_limit: int = 3,
        recovery_period_s: float = 30.0,
        placement_retry: RetryPolicy | None = None,
    ):
        if heartbeat_interval_s <= 0 or heartbeat_miss_limit < 1:
            raise ValueError("invalid heartbeat parameters")
        self.sim = sim
        self.log = log
        self.rng = rng
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_miss_limit = heartbeat_miss_limit
        self.recovery_period_s = recovery_period_s
        # How re-placement of unhosted tasks/shards is paced across
        # failure sweeps.  The default retries forever with no extra
        # delay — the historical behaviour, sweep-paced.
        self.placement_retry = placement_retry or RetryPolicy()

        self.aggregators: list[AggregatorNode] = []
        self.tasks: dict[str, FLTaskRuntime] = {}
        self.placement: dict[str, int] = {}  # task -> node id (root for sharded)
        self.shard_placement: dict[str, dict[int, int]] = {}  # task -> shard -> node
        self.assignment_seq = 0  # bumped on every placement change
        self.alive = True
        self._recovering_until = -1.0
        self.assignments_made = 0
        self.assignments_rejected = 0
        # Re-placement retry bookkeeping, keyed (task, shard|None).
        self._retry_counts: dict[tuple[str, int | None], int] = {}
        self._retry_after: dict[tuple[str, int | None], float] = {}
        self._retry_noted_at: dict[tuple[str, int | None], float] = {}
        self._abandoned: set[tuple[str, int | None]] = set()

    # -- registration / placement ------------------------------------------------

    def register_aggregator(self, node: AggregatorNode) -> None:
        """Add an aggregator to the pool."""
        node.last_heartbeat = self.sim.now
        self.aggregators.append(node)

    def register_task(self, task_rt: FLTaskRuntime) -> None:
        """Accept a task and place it on the least-loaded live aggregator."""
        self.tasks[task_rt.config.name] = task_rt
        self._place(task_rt)

    def _live_nodes(self) -> list[AggregatorNode]:
        return [a for a in self.aggregators if a.alive]

    def _place(self, task_rt: FLTaskRuntime) -> None:
        """Least-estimated-workload placement (Section 6.3)."""
        if isinstance(task_rt, ShardedFLTaskRuntime):
            self._place_shards(task_rt)
            return
        live = self._live_nodes()
        if not live:
            raise RuntimeError("no live aggregators to place task on")
        node = min(live, key=lambda a: a.estimated_workload())
        node.host(task_rt)
        self.placement[task_rt.config.name] = node.node_id
        self.assignment_seq += 1
        self.log.emit(
            self.sim.now, "coordinator", "task_placed",
            task=task_rt.config.name, node=node.node_id, seq=self.assignment_seq,
        )

    def _place_shards(self, task_rt: ShardedFLTaskRuntime) -> None:
        """Spread one sharded task's shards over the live aggregators.

        Greedy least-estimated-workload per shard, in ascending shard
        order — every placed shard immediately counts toward its host's
        workload, so ``S`` shards on ``N`` comparable nodes land
        ceil(S/N) per node.
        """
        name = task_rt.config.name
        live = self._live_nodes()
        if not live:
            raise RuntimeError("no live aggregators to place task shards on")
        placement = self.shard_placement.setdefault(name, {})
        for shard_id in range(task_rt.core.num_shards):
            node = min(live, key=lambda a: a.estimated_workload())
            task_rt.place_shard(shard_id, node)
            placement[shard_id] = node.node_id
        self.placement[name] = placement[0]
        self.assignment_seq += 1
        self.log.emit(
            self.sim.now, "coordinator", "task_shards_placed",
            task=name, shards=dict(placement), seq=self.assignment_seq,
        )

    def _replace_dead_shards(
        self, task_rt: ShardedFLTaskRuntime, reason: str = "node_dead"
    ) -> list[int]:
        """Re-place shards that lost their host, reviving them empty.

        With no live node (or while the retry policy's backoff holds a
        shard back) the shards stay dead — their slice remains re-routed
        to the survivors — and a later sweep retries, until the policy's
        attempt budget abandons them.
        """
        live = self._live_nodes()
        name = task_rt.config.name
        placement = self.shard_placement.setdefault(name, {})
        revived: list[int] = []
        now = self.sim.now
        for shard_id in task_rt.unplaced_shards():
            key = (name, shard_id)
            if key in self._abandoned:
                continue
            if not live:
                self._note_retry(key, reason="no_live_node")
                continue
            if now < self._retry_after.get(key, 0.0):
                continue  # backoff window still open; a later sweep retries
            node = min(live, key=lambda a: a.estimated_workload())
            task_rt.place_shard(shard_id, node)
            task_rt.core.revive_shard(shard_id)
            placement[shard_id] = node.node_id
            revived.append(shard_id)
            self.log.emit(
                now, "coordinator", "shard_replaced",
                task=name, shard=shard_id, node=node.node_id,
                reason=reason, retries=self._retry_counts.pop(key, 0),
            )
            if self.observer is not None:
                self.observer.on_failover(reason)
            self._retry_after.pop(key, None)
            self._retry_noted_at.pop(key, None)
        if revived:
            if 0 in placement:  # the root entry follows shard 0's host
                self.placement[name] = placement[0]
            self.assignment_seq += 1
            self.log.emit(
                self.sim.now, "coordinator", "shards_replaced",
                task=name, shards=revived, seq=self.assignment_seq,
            )
        return revived

    def _note_retry(self, key: tuple[str, int | None], reason: str) -> None:
        """Count one failed re-placement attempt against the retry policy.

        At most one attempt is counted per (key, sweep) — the dead-node
        pass and the re-placement pass of the same ``sweep_failures``
        call must not double-bill a shard.
        """
        now = self.sim.now
        if self._retry_noted_at.get(key) == now:
            return
        self._retry_noted_at[key] = now
        attempt = self._retry_counts.get(key, 0) + 1
        self._retry_counts[key] = attempt
        task, shard = key
        if not self.placement_retry.should_retry(attempt):
            self._abandoned.add(key)
            self.log.emit(
                now, "coordinator", "placement_abandoned",
                task=task, shard=shard, reason=reason, retries=attempt,
            )
            return
        self._retry_after[key] = now + self.placement_retry.retry_delay(
            attempt, self.rng
        )
        self.log.emit(
            now, "coordinator", "placement_retry",
            task=task, shard=shard, reason=reason, retry=attempt,
            next_attempt_s=self._retry_after[key],
        )

    # -- client assignment (Section 6.2) ----------------------------------------

    def assign_client(self, compatible_tasks: list[str] | None = None) -> FLTaskRuntime | None:
        """Pick an eligible task for a checking-in client, or reject.

        ``compatible_tasks`` restricts eligibility (multi-tenant clients
        may only be able to train some models); ``None`` means all.
        """
        if not self.alive or self.sim.now < self._recovering_until:
            self.assignments_rejected += 1
            return None
        eligible = [
            rt
            for name, rt in self.tasks.items()
            if (compatible_tasks is None or name in compatible_tasks)
            and rt.demand() > 0
            and rt.is_routable()
        ]
        if not eligible:
            self.assignments_rejected += 1
            return None
        choice = eligible[int(self.rng.integers(len(eligible)))]
        choice.pending_assignments += 1
        self.assignments_made += 1
        return choice

    # -- heartbeats + failure detection (Appendix E.4) ------------------------------

    def on_heartbeat(self, node: AggregatorNode, demand: dict[str, int]) -> None:
        """Record liveness and the node's per-task demand report."""
        node.last_heartbeat = self.sim.now
        self.log.emit(
            self.sim.now, "coordinator", "heartbeat",
            node=node.node_id, demand=sum(demand.values()),
        )

    def sweep_failures(self) -> list[str]:
        """Detect dead aggregators and reassign their tasks.

        Returns the names of reassigned tasks.  Called periodically by the
        orchestrator (and directly by failure-injection tests).  Whole
        tasks move to the least-loaded live node; sharded tasks fail over
        per shard.  During a deployment-wide outage (no live node at all)
        nothing is placed — tasks and shards stay unhosted, client
        assignment pauses, and every subsequent sweep retries until
        capacity recovers.
        """
        if not self.alive:
            return []
        deadline = self.heartbeat_miss_limit * self.heartbeat_interval_s
        moved: list[str] = []
        for node in self.aggregators:
            expired = self.sim.now - node.last_heartbeat > deadline
            if node.alive and not expired:
                continue
            if not node.tasks:
                continue
            if not node.alive or expired:
                reason = "heartbeat_expired" if node.alive else "node_dead"
                node.alive = False
                for name in list(node.tasks):
                    task_rt = node.drop_task(name)
                    if task_rt is None:
                        continue
                    if isinstance(task_rt, ShardedFLTaskRuntime):
                        # Per-shard failover: only the dead node's shards
                        # lose state; the rest of the plane keeps folding.
                        # (A sharded task spans nodes, so dedupe its name.)
                        for shard_id in task_rt.drop_shards_on(node):
                            self.shard_placement.get(name, {}).pop(shard_id, None)
                        self._replace_dead_shards(task_rt, reason=reason)
                        if name not in moved:
                            moved.append(name)
                    else:
                        task_rt.on_reassigned()
                        task_rt.node = None  # unhosted until re-placed below
                        moved.append(name)
                        self.log.emit(
                            self.sim.now, "coordinator", "task_failover",
                            task=name, node=node.node_id, reason=reason,
                            retries=self._retry_counts.get((name, None), 0),
                        )
                        if self.observer is not None:
                            self.observer.on_failover(reason)
        # Re-place every unhosted whole task (dropped above, or orphaned
        # by an earlier all-nodes-dead sweep) and retry shards that could
        # not be re-placed earlier — a recovered node picks them up.
        # With no live node anywhere, tasks simply stay unhosted (clients
        # stop being assigned via is_routable) and the next sweep retries
        # — a deployment-wide outage must not crash the heartbeat loop.
        unplaced: list[str] = []
        for task_rt in self.tasks.values():
            name = task_rt.config.name
            if isinstance(task_rt, ShardedFLTaskRuntime):
                if task_rt.unplaced_shards():
                    if self._replace_dead_shards(task_rt, reason="retry"):
                        if name not in moved:
                            moved.append(name)
                    else:
                        unplaced.append(name)
            elif task_rt.node is None:
                key = (name, None)
                if key in self._abandoned:
                    continue
                if not self._live_nodes():
                    self._note_retry(key, reason="no_live_node")
                    unplaced.append(name)
                elif self.sim.now < self._retry_after.get(key, 0.0):
                    unplaced.append(name)  # backoff window still open
                else:
                    self._place(task_rt)
                    self._retry_counts.pop(key, None)
                    self._retry_after.pop(key, None)
                    self._retry_noted_at.pop(key, None)
                    if name not in moved:
                        moved.append(name)
        if unplaced:
            self.log.emit(
                self.sim.now, "coordinator", "tasks_unplaced", tasks=unplaced,
            )
        if moved:
            self.log.emit(self.sim.now, "coordinator", "tasks_reassigned", tasks=moved)
        return moved

    def rebalance_overloaded(self, queue_threshold_s: float = 30.0) -> list[str]:
        """Move tasks off overloaded aggregators (Section 6.3).

        "The Coordinator moves tasks between Aggregators only when it
        detects failed or overloaded Aggregators."  Overload is detected
        through aggregation-queue backpressure; the lightest task of an
        overloaded multi-task node moves to the least-loaded peer.  This
        is a *planned* move: unlike failover, no state is lost — sessions
        keep running and route to the new host on their next upload.
        Sharded tasks are never whole-task move candidates (their load is
        already spread shard-wise; only failover moves shards).

        ``queue_threshold_s`` comes from
        :attr:`~repro.system.orchestrator.SystemConfig.rebalance_queue_threshold_s`
        when driven by the orchestrator's heartbeat loop.
        """
        if not self.alive:
            return []
        live = self._live_nodes()
        if len(live) < 2:
            return []
        moved: list[str] = []
        for node in live:
            queue_depth_s = node.queue_depth_seconds()
            if queue_depth_s <= queue_threshold_s or len(node.tasks) < 2:
                continue
            movable = [
                n for n, rt in node.tasks.items()
                if not isinstance(rt, ShardedFLTaskRuntime)
            ]
            if not movable:
                continue
            name = min(
                movable,
                key=lambda n: node.tasks[n].config.concurrency
                * node.tasks[n].config.model_size_bytes,
            )
            target = min(
                (a for a in live if a is not node),
                key=lambda a: a.estimated_workload(),
            )
            task_rt = node.drop_task(name)
            target.host(task_rt)
            self.placement[name] = target.node_id
            self.assignment_seq += 1
            moved.append(name)
            self.log.emit(
                self.sim.now, "coordinator", "task_rebalanced",
                task=name, source=node.node_id, target=target.node_id,
                queue_depth_s=round(queue_depth_s, 3),
                queue_threshold_s=queue_threshold_s,
                demand=task_rt.demand(),
            )
        return moved

    # -- coordinator failure (Appendix E.4) --------------------------------------

    def fail(self) -> None:
        """The Coordinator process dies.  Participating clients continue;
        no new clients are assigned until a new leader is elected."""
        self.alive = False
        self.log.emit(self.sim.now, "coordinator", "failed")

    def recover(self) -> None:
        """Leader re-elected; enter the recovery period (typically 30 s)
        rebuilding the assignment map from aggregator reports."""
        self.alive = True
        self._recovering_until = self.sim.now + self.recovery_period_s
        self.assignment_seq += 1
        self.log.emit(
            self.sim.now, "coordinator", "recovered",
            resuming_at=self._recovering_until,
        )

    @property
    def accepting_assignments(self) -> bool:
        """Whether new clients can currently be assigned."""
        return self.alive and self.sim.now >= self._recovering_until
