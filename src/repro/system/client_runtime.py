"""Client participation session — the device side of the protocol.

One :class:`ClientSession` runs the four participation stages of
Section 6.1 on the event loop:

1. **download** of model parameters/code from the CDN;
2. **train** on local data for the device's execution time — during which
   the device may drop out (~10 % do) or hit the server-imposed timeout
   (4 minutes in the paper);
3. **report** of status to the server;
4. **upload** of the update in chunks.

All stages happen inside a virtual session: transient hiccups do not kill
the session, but a dropout does, and the server only *notices* a dropout
after a failure-detection delay (missed heartbeats) — which is when the
slot frees up for a replacement client.

Cohort dispatch
---------------
With a :class:`CohortDispatcher` attached to the task runtime, the
training stage is *deferred*: the session parks a :class:`PendingTraining`
(snapshot of everything the trainer needs) instead of computing the
result at training-complete time, and schedules its upload as usual.
When the first deferred result is actually demanded — at
upload-processing time — the dispatcher drains a cohort of parked
trainings and computes them in one batched adapter call.  Deferral is
invisible to the simulation: a result is a pure function of its snapshot,
every event keeps its timestamp, and the batched engine is bit-equivalent
to the scalar one (see :mod:`repro.core.cohort`), so traces, losses, and
timings are identical to scalar dispatch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.types import TrainingResult
from repro.sim.engine import DeferredQueue, EventHandle, Simulator
from repro.sim.network import NetworkModel
from repro.sim.population import DevicePopulation, DeviceProfile
from repro.sim.trace import MetricsTrace, Outcome, ParticipationRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.adapters import TrainerAdapter
    from repro.system.aggregator import FLTaskRuntime

__all__ = ["PendingTraining", "CohortDispatcher", "ClientSession"]


class PendingTraining:
    """A deferred client training: the inputs, and eventually the result."""

    __slots__ = ("profile", "initial_model", "initial_version", "participation",
                 "result")

    def __init__(
        self,
        profile: DeviceProfile,
        initial_model: np.ndarray,
        initial_version: int,
        participation: int,
    ):
        self.profile = profile
        self.initial_model = initial_model
        self.initial_version = initial_version
        self.participation = participation
        self.result: TrainingResult | None = None


class CohortDispatcher:
    """Groups deferred client trainings into batched adapter calls.

    Parameters
    ----------
    adapter:
        The task's trainer backend; its ``train_cohort`` runs the batch.
    max_cohort:
        Upper bound on clients per batched call (the ``cohort_batch_size``
        operating-point knob).
    """

    def __init__(self, adapter: "TrainerAdapter", max_cohort: int):
        if max_cohort < 1:
            raise ValueError("max_cohort must be at least 1")
        self.adapter = adapter
        self.max_cohort = max_cohort
        self._queue: DeferredQueue[PendingTraining] = DeferredQueue()
        self.batches_run = 0
        self.trainings_run = 0

    def __len__(self) -> int:
        return len(self._queue)

    def submit(
        self,
        profile: DeviceProfile,
        initial_model: np.ndarray,
        initial_version: int,
        participation: int,
    ) -> PendingTraining:
        """Park one client's training for batched execution."""
        return self._queue.submit(
            PendingTraining(profile, initial_model, initial_version, participation)
        )

    def discard(self, pending: PendingTraining) -> None:
        """Drop a parked training whose session aborted (never computed)."""
        self._queue.discard(pending)

    def resolve(self, pending: PendingTraining) -> TrainingResult:
        """Return ``pending``'s result, computing a cohort batch if needed."""
        if pending.result is None:
            batch = self._queue.drain(pending, limit=self.max_cohort)
            results = self.adapter.train_cohort(
                [p.profile for p in batch],
                [p.initial_model for p in batch],
                [p.initial_version for p in batch],
                [p.participation for p in batch],
            )
            for member, result in zip(batch, results):
                member.result = result
                member.initial_model = None  # free the snapshot
            self.batches_run += 1
            self.trainings_run += len(batch)
        return pending.result


class ClientSession:
    """One client's participation in one task, driven by simulator events.

    Parameters
    ----------
    profile:
        The device's static characteristics.
    task_rt:
        The task runtime hosting this session (provides the aggregation
        core and upload sink).
    sim, network, population, trace:
        Simulation substrate.
    participation:
        This device's participation counter (salts training shuffles and
        dropout rolls).
    failure_detection_s:
        Delay between a silent client death and the server noticing it.
    on_end:
        Callback fired when the slot is free again (drives replacement —
        the paper's "fast client replacement").
    """

    def __init__(
        self,
        profile: DeviceProfile,
        task_rt: "FLTaskRuntime",
        sim: Simulator,
        network: NetworkModel,
        population: DevicePopulation,
        trace: MetricsTrace,
        participation: int,
        failure_detection_s: float,
        on_end: Callable[["ClientSession"], None],
    ):
        self.profile = profile
        self.task_rt = task_rt
        self.sim = sim
        self.network = network
        self.population = population
        self.trace = trace
        self.participation = participation
        self.failure_detection_s = failure_detection_s
        self.on_end = on_end

        self.device_id = profile.device_id
        self.start_time = sim.now
        self.initial_version: int | None = None
        self.initial_model = None
        self.execution_time = 0.0
        self.finished = False
        self._active = False
        self._handles: list[EventHandle] = []
        self._pending: PendingTraining | None = None

    # -- stage 1: download ------------------------------------------------------

    def begin(self) -> None:
        """Start the session: count it active and schedule the download."""
        self._active = True
        self.trace.record_active_delta(self.sim.now, +1)
        model_bytes = self.task_rt.config.model_size_bytes
        delay = self.network.download_time(self.profile, model_bytes)
        self.trace.record_download(model_bytes)
        if self.task_rt.observer is not None:
            self.task_rt.observer.on_session_begin(self)
        self._schedule(delay, self._downloaded)

    # -- stage 2: local training ----------------------------------------------------

    def _downloaded(self) -> None:
        self.initial_version, self.initial_model = self.task_rt.core.register_download(
            self.device_id
        )
        cfg = self.task_rt.config
        self.execution_time = self.profile.execution_time(
            self.population.config.overhead_s, epochs=cfg.local_epochs
        )
        drop_frac = self.population.dropout_point(self.device_id, self.participation)
        if self.task_rt.observer is not None:
            self.task_rt.observer.on_session_downloaded(self)

        if drop_frac is not None and drop_frac * self.execution_time < min(
            self.execution_time, cfg.client_timeout_s
        ):
            # Silent device death mid-training.
            self._schedule(drop_frac * self.execution_time, self._dropped)
        elif self.execution_time > cfg.client_timeout_s:
            # Server-imposed execution timeout (paper: 4 minutes).
            self._schedule(cfg.client_timeout_s, self._timed_out)
        else:
            self._schedule(self.execution_time, self._training_complete)

    # -- stages 3-4: report + upload --------------------------------------------

    def _training_complete(self) -> None:
        if self.task_rt.cohort is not None:
            # Cohort-dispatch mode: park the training inputs; the batched
            # engine computes the result when the upload is processed.
            payload: TrainingResult | PendingTraining = self.task_rt.cohort.submit(
                self.profile, self.initial_model, self.initial_version,
                self.participation,
            )
            self._pending = payload
        else:
            payload = self.task_rt.adapter.train(
                self.profile, self.initial_model, self.initial_version,
                self.participation,
            )
        self.initial_model = None  # free the snapshot
        upload_bytes = self.task_rt.config.model_size_bytes
        delay = self.network.roundtrip() + self.network.upload_time(
            self.profile, upload_bytes
        )
        self.trace.record_upload(upload_bytes)
        if self.task_rt.observer is not None:
            self.task_rt.observer.on_session_upload(self)
        self._schedule(delay, lambda: self.task_rt.upload_arrived(self, payload))

    # -- terminal transitions ------------------------------------------------------

    def _deactivate(self) -> None:
        if self._active:
            self._active = False
            self.trace.record_active_delta(self.sim.now, -1)

    def _dropped(self) -> None:
        """Device died silently; server notices after the detection delay."""
        self._deactivate()
        exec_done = self.sim.now - self.start_time

        def detect() -> None:
            self.task_rt.core.client_failed(self.device_id)
            self._finish(Outcome.FAILED, exec_done)

        self.sim.schedule(self.failure_detection_s, detect)

    def _timed_out(self) -> None:
        """Execution cap reached; server aborts the session immediately."""
        self._deactivate()
        self.task_rt.core.client_failed(self.device_id)
        self._finish(Outcome.TIMEOUT, self.task_rt.config.client_timeout_s)

    def abort(self, outcome: Outcome) -> None:
        """Server-side abort (stale client or round closed under it).

        The aggregation core has already dropped this client; we cancel
        pending device events and free the slot.
        """
        if self.finished:
            return
        for h in self._handles:
            h.cancel()
        if self._pending is not None and self.task_rt.cohort is not None:
            # Never computed and never will be: drop the parked training.
            self.task_rt.cohort.discard(self._pending)
            self._pending = None
        self._deactivate()
        self._finish(outcome, self.sim.now - self.start_time)

    def complete(self, outcome: Outcome, staleness: int) -> None:
        """Upload was processed; record the terminal outcome."""
        self._deactivate()
        self._finish(outcome, self.execution_time, staleness)

    def _finish(self, outcome: Outcome, exec_time: float, staleness: int = 0) -> None:
        if self.finished:
            return
        self.finished = True
        self.trace.record_participation(
            ParticipationRecord(
                device_id=self.device_id,
                task=self.task_rt.config.name,
                start_time=self.start_time,
                end_time=self.sim.now,
                n_examples=self.profile.n_examples,
                execution_time=exec_time,
                outcome=outcome,
                staleness=staleness,
            )
        )
        if self.task_rt.observer is not None:
            self.task_rt.observer.on_session_end(self, outcome, exec_time)
        self.on_end(self)

    # -- plumbing ------------------------------------------------------------

    def _schedule(self, delay: float, action) -> None:
        self._handles.append(self.sim.schedule(delay, action))
