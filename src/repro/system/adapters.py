"""Trainer adapters: what "a client trains" means for a simulated task.

Two interchangeable backends plug into the system layer:

* :class:`RealTrainingAdapter` — clients run actual NumPy-LSTM SGD on
  their synthetic local data; the loss curve is measured on a pooled
  held-out test set.  Used for the fidelity experiments (Table 1) and the
  examples.
* :class:`SurrogateAdapter` — clients produce analytic update-quality
  scalars and the loss comes from the calibrated convergence model.  Used
  for the fleet-scale wall-clock experiments (Figures 3, 7–10, 12, 13),
  where the system behaviour (timing, staleness, bias) is under test, not
  the gradient math.

Both expose the model-state object the aggregation cores drive, a
``train`` method, and a ``current_loss``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.client_trainer import LocalTrainer
from repro.core.cohort import CohortRequest, CohortTrainer
from repro.core.state import GlobalModelState
from repro.core.surrogate import SurrogateModelState, SurrogateParams, SurrogateTrainer
from repro.core.types import TrainingResult
from repro.data.federated import FederatedDataset
from repro.sim.population import DeviceProfile

__all__ = ["TrainerAdapter", "SurrogateAdapter", "RealTrainingAdapter"]


class TrainerAdapter(abc.ABC):
    """Backend contract for the system layer."""

    #: the model-state object the aggregation core mutates
    state: object

    @abc.abstractmethod
    def train(
        self,
        profile: DeviceProfile,
        initial_model: np.ndarray,
        initial_version: int,
        participation: int,
    ) -> TrainingResult:
        """Produce one client's training result."""

    def train_cohort(
        self,
        profiles: list[DeviceProfile],
        initial_models: list[np.ndarray],
        initial_versions: list[int],
        participations: list[int],
    ) -> list[TrainingResult]:
        """Produce a whole cohort's training results (aligned with inputs).

        The default loops over :meth:`train`; backends with a vectorized
        engine (see :class:`RealTrainingAdapter`) override it with a
        genuinely batched implementation.
        """
        return [
            self.train(profile, model, version, participation)
            for profile, model, version, participation in zip(
                profiles, initial_models, initial_versions, participations
            )
        ]

    @abc.abstractmethod
    def current_loss(self) -> float:
        """Loss of the current server model (for the training curve)."""

    @property
    def recommended_example_weighting(self) -> str:
        """Example-weighting mode the aggregation core should use."""
        return "linear"

    @property
    def recommended_normalization(self) -> str:
        """Buffer normalization the aggregation core should use."""
        return "weight_sum"


class SurrogateAdapter(TrainerAdapter):
    """Analytic convergence backend (see :mod:`repro.core.surrogate`).

    Uses weight-as-magnitude semantics: staleness weights scale each
    update's contribution directly (``normalize_by="goal"``), matching
    the original FedBuff formulation.
    """

    def __init__(self, params: SurrogateParams | None = None, seed: int = 0):
        self.params = params or SurrogateParams()
        self.state = SurrogateModelState(self.params)
        self.trainer = SurrogateTrainer(self.params, seed=seed)

    def train(
        self,
        profile: DeviceProfile,
        initial_model: np.ndarray,
        initial_version: int,
        participation: int,
    ) -> TrainingResult:
        return self.trainer.train(
            num_examples=profile.n_examples,
            client_id=profile.device_id,
            initial_version=initial_version,
            participation=participation,
        )

    def current_loss(self) -> float:
        return self.state.loss()

    @property
    def recommended_example_weighting(self) -> str:
        return "none"  # example count already enters through update quality

    @property
    def recommended_normalization(self) -> str:
        return "goal"


class RealTrainingAdapter(TrainerAdapter):
    """Real NumPy-LSTM training backend.

    Parameters
    ----------
    trainer:
        Shared local-SGD workspace.
    dataset:
        The federation; each client's data is materialized on demand with
        the example count from its device profile.
    state:
        Real model state (vector + server optimizer).
    eval_clients:
        Device ids whose held-out test splits form the pooled evaluation
        batch.
    eval_examples:
        Example count assumed for the eval clients' datasets.
    eval_every:
        Recompute the loss every this many server versions (evaluation is
        the expensive part of real-mode runs).
    """

    def __init__(
        self,
        trainer: LocalTrainer,
        dataset: FederatedDataset,
        state: GlobalModelState,
        eval_clients: list[int],
        eval_examples: list[int],
        eval_every: int = 1,
        cohort_trainer: CohortTrainer | None = None,
    ):
        if eval_every < 1:
            raise ValueError("eval_every must be at least 1")
        self.trainer = trainer
        self.dataset = dataset
        self.state = state
        self.eval_every = eval_every
        # The batched engine shares every hyperparameter with the scalar
        # trainer (bit-equivalent by construction), so it can always be
        # derived; an explicit instance is accepted for tests/tuning.
        self.cohort_trainer = cohort_trainer or CohortTrainer(
            trainer.model_config,
            lr=trainer.lr,
            batch_size=trainer.batch_size,
            epochs=trainer.epochs,
            clip_norm=trainer.clip_norm,
            seed=trainer.seed,
        )
        self._eval_x, self._eval_y = dataset.evaluation_batch(
            eval_clients, eval_examples
        )
        self._last_eval_version = -1
        self._last_loss = float("inf")
        self._versions_seen = 0

    def train(
        self,
        profile: DeviceProfile,
        initial_model: np.ndarray,
        initial_version: int,
        participation: int,
    ) -> TrainingResult:
        ds = self.dataset.client_dataset(profile.device_id, profile.n_examples)
        return self.trainer.train(initial_model, ds, initial_version, participation)

    def train_cohort(
        self,
        profiles: list[DeviceProfile],
        initial_models: list[np.ndarray],
        initial_versions: list[int],
        participations: list[int],
    ) -> list[TrainingResult]:
        """Run the whole cohort through the batched LSTM engine."""
        requests = [
            CohortRequest(
                initial_model=model,
                dataset=self.dataset.client_dataset(
                    profile.device_id, profile.n_examples
                ),
                initial_version=version,
                participation=participation,
            )
            for profile, model, version, participation in zip(
                profiles, initial_models, initial_versions, participations
            )
        ]
        return self.cohort_trainer.train_cohort(requests)

    def current_loss(self) -> float:
        self._versions_seen += 1
        if (
            self._last_eval_version < 0
            or self._versions_seen - self._last_eval_version >= self.eval_every
        ):
            self._last_loss = self.trainer.evaluate(
                self.state.current(), self._eval_x, self._eval_y
            )
            self._last_eval_version = self._versions_seen
        return self._last_loss

    def perplexity_for_clients(
        self, client_ids: list[int], n_examples: list[int], max_per_client: int = 8
    ) -> float:
        """Test perplexity of the current model on specific clients' data.

        This is the Table 1 measurement: perplexity for clients in a
        given data-volume percentile band.
        """
        x, y = self.dataset.evaluation_batch(
            client_ids, n_examples, max_per_client=max_per_client
        )
        return self.trainer.evaluate_perplexity(self.state.current(), x, y)
