"""Buffered asynchronous aggregation *through* Asynchronous SecAgg.

This is the integration the paper's abstract claims as the headline
contribution: "a novel asynchronous secure aggregation protocol ...
enables the implementation of FL with buffered asynchronous aggregation".

:class:`SecureBufferedAggregator` mirrors the interface of
:class:`repro.core.fedbuff.FedBuffAggregator` (so :class:`FLTaskRuntime`
can host either transparently) but the server-side buffer only ever holds
*masked* group vectors:

* every buffer epoch *re-keys* one long-lived TSA (``begin_round``): the
  unmask release is one-shot per round, so each server step gets its own
  Figure 16 session, but the attestation identity, verifiable log and the
  pre-minted DH leg supply (:class:`LegPool`, shared across epochs) are
  stood up once for the lifetime of the task;
* a participating client fixed-point-encodes its delta, masks it with a
  PRNG-expanded one-time pad, uploads the masked vector, and seals the
  16-byte seed to the TSA — after verifying the attestation quote and the
  verifiable-log inclusion proof;
* FedBuff's weights (example count × staleness factor) are applied
  through the *weighted unmask* extension: the server scales masked
  updates by integer weights and the TSA returns the identically weighted
  mask sum, so the server learns only the weighted aggregate;
* at the aggregation goal the epoch finalizes: unmask, decode, divide by
  the total weight, hand the average delta to the server optimizer.

The honest-but-curious server therefore never observes an individual
update in the clear — while retaining FedBuff's staleness handling,
version bookkeeping, and abort semantics exactly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.fedbuff import ServerStepInfo
from repro.core.staleness import PolynomialStaleness, StalenessPolicy
from repro.core.types import ModelUpdate, TrainingResult
from repro.secagg.attestation import SigningAuthority
from repro.secagg.client import LogBundle, SecAggClient
from repro.secagg.fixedpoint import FixedPointCodec
from repro.secagg.groups import PowerOfTwoGroup
from repro.secagg.merkle import VerifiableLog
from repro.secagg.server import LegPool, SecAggServer
from repro.secagg.tsa import TrustedSecureAggregator
from repro.utils.rng import child_rng

__all__ = ["LegPool", "SecureBufferedAggregator"]

# Staleness/example weights are reals; the group needs integers.  This is
# the fixed-point scale for *weights* (value 1.0 -> 64), giving ~1.5% weight
# resolution while keeping the overflow budget comfortable in a 64-bit group.
WEIGHT_SCALE = 64


class SecureBufferedAggregator:
    """FedBuff semantics over masked updates (drop-in for the plain core).

    Parameters
    ----------
    state:
        Model state to advance (real vector or surrogate).
    goal:
        Aggregation goal K — also the TSA threshold ``t`` of each epoch:
        the unmask cannot be requested before K clients contributed.
    vector_length:
        Elements per update (``state.size``).
    staleness_policy, max_staleness, example_weighting:
        As in :class:`repro.core.fedbuff.FedBuffAggregator`.
    clip_value:
        Fixed-point clipping bound for delta elements.
    group_bits / fp_scale:
        Group width and fixed-point scale.  The defaults give exact
        aggregation for thousands of clipped updates with scaled integer
        weights (see the overflow analysis in ``FixedPointCodec``).
    seed:
        Determinism root for DH keys, mask seeds, and client randomness.
    leg_pool_block:
        Legs minted per :class:`LegPool` refill (default: the aggregation
        goal, so one refill covers one epoch's cohort).
    cache_masks:
        Forwarded to the TSA — cache recovered masks as contiguous rows
        so the weighted release is one fused reduction (see
        :class:`repro.secagg.tsa.TrustedSecureAggregator`).
    """

    # Set by repro.obs.telemetry.RunTelemetry.attach when wall-clock
    # profiling is on: the client-side secure participation
    # ("secagg_submit") and the epoch unmask + step ("secagg_finalize")
    # feed a PhaseProfiler.  None (the default) adds no timing.
    profiler = None

    def __init__(
        self,
        state,
        goal: int,
        vector_length: int,
        staleness_policy: StalenessPolicy | None = None,
        max_staleness: int = 100,
        example_weighting: str = "linear",
        clip_value: float = 4.0,
        group_bits: int = 64,
        fp_scale: float = 2**16,
        seed: int = 0,
        leg_pool_block: int | None = None,
        cache_masks: bool = True,
    ):
        if goal < 1:
            raise ValueError("aggregation goal must be at least 1")
        if example_weighting not in ("linear", "log", "none"):
            raise ValueError(f"unknown example_weighting {example_weighting!r}")
        self.state = state
        self.goal = goal
        self.vector_length = vector_length
        self.staleness_policy = staleness_policy or PolynomialStaleness(0.5)
        self.max_staleness = max_staleness
        self.example_weighting = example_weighting
        self.clip_value = clip_value
        self.seed = seed

        self.group = PowerOfTwoGroup(group_bits)
        self.codec = FixedPointCodec(self.group, scale=fp_scale, clip_value=clip_value)
        self.authority = SigningAuthority()
        # One verifiable log for the lifetime of the task; every epoch's
        # TSA runs the same trusted binary, so one log entry suffices.
        self.log = VerifiableLog()
        self._log_bundle: LogBundle | None = None

        self.version = 0
        self.updates_received = 0
        self.epochs_completed = 0
        self.boundary_bytes_in_total = 0
        self.boundary_bytes_out_total = 0
        self._in_flight: dict[int, int] = {}
        self.step_history: list[ServerStepInfo] = []

        self._cache_masks = cache_masks
        self._leg_pool_block = leg_pool_block if leg_pool_block is not None else goal
        self._epoch_tsa: TrustedSecureAggregator | None = None
        self._epoch_server: SecAggServer | None = None
        self._leg_pool: LegPool | None = None
        self._epoch_boundary_mark = (0, 0)
        self._epoch_weights: dict[int, int] = {}
        self._epoch_weight_total = 0.0
        self._epoch_staleness: list[int] = []
        self._epoch_contributors: list[int] = []
        self._begin_epoch()

    # -- epoch management ------------------------------------------------------

    def _begin_epoch(self) -> None:
        """Open the next buffer epoch's Figure 16 session.

        The first call stands up the long-lived trusted party, publishes
        its binary to the verifiable log, and pre-mints the shared leg
        pool; every later call just re-keys a new TSA round
        (``begin_round``) — no authority, log, or mint-from-zero on the
        epoch path.
        """
        if self._epoch_tsa is None:
            tsa = TrustedSecureAggregator(
                self.group,
                self.vector_length,
                threshold=self.goal,
                authority=self.authority,
                rng=child_rng(self.seed, "tsa-epoch", 0),
                cache_masks=self._cache_masks,
            )
            entry = b"manifest|" + tsa.binary_hash
            index = self.log.append(entry)
            self._log_bundle = LogBundle(
                entry=entry,
                index=index,
                size=self.log.size,
                root=self.log.root(),
                proof=self.log.inclusion_proof(index),
            )
            self._epoch_tsa = tsa
            # Mark before the prefill so the first epoch still accounts
            # for its share of mint traffic, as the per-epoch TSA did.
            self._epoch_boundary_mark = (tsa.boundary_bytes_in, tsa.boundary_bytes_out)
            self._leg_pool = LegPool(
                tsa, block_size=self._leg_pool_block, prefill=self._leg_pool_block
            )
        else:
            self._epoch_tsa.begin_round()
            self._epoch_server.begin_round()
            self._epoch_boundary_mark = (
                self._epoch_tsa.boundary_bytes_in,
                self._epoch_tsa.boundary_bytes_out,
            )
        if self._epoch_server is None:
            self._epoch_server = SecAggServer(
                self._epoch_tsa, self.codec, leg_pool=self._leg_pool
            )
        self._epoch_weights = {}
        self._epoch_weight_total = 0.0
        self._epoch_staleness = []
        self._epoch_contributors = []

    # -- FedBuff-compatible client protocol ----------------------------------------

    def register_download(self, client_id: int) -> tuple[int, np.ndarray]:
        """Record the client's initial version; hand out the model."""
        self._in_flight[client_id] = self.version
        return self.version, self.state.current()

    def client_failed(self, client_id: int) -> None:
        """Drop an in-flight client."""
        self._in_flight.pop(client_id, None)

    def in_flight_count(self) -> int:
        """Clients currently training against this task."""
        return len(self._in_flight)

    @property
    def _count(self) -> int:
        """Buffered contributions in the open epoch.

        Named after the float cores' buffer counter so the recovery
        audit (:func:`repro.sim.faults.recovery_report`) reads the
        secure planes' buffered-now figure through the same attribute.
        """
        return len(self._epoch_contributors)

    def stale_clients(self) -> list[int]:
        """In-flight clients beyond the staleness bound (to abort)."""
        return [
            cid
            for cid, v0 in self._in_flight.items()
            if self.version - v0 > self.max_staleness
        ]

    def drop_buffer_and_inflight(self) -> tuple[int, list[int]]:
        """Aggregator failover: the epoch's masked buffer is lost too."""
        lost = len(self._epoch_contributors)
        dropped = list(self._in_flight)
        self._in_flight.clear()
        self._begin_epoch()
        return lost, dropped

    @property
    def buffered_count(self) -> int:
        """Masked updates accepted in the open epoch."""
        return len(self._epoch_contributors)

    # -- aggregation ------------------------------------------------------------

    def _example_weight(self, num_examples: int) -> float:
        if self.example_weighting == "linear":
            return float(num_examples)
        if self.example_weighting == "log":
            return float(np.log1p(num_examples))
        return 1.0

    def _prepare_submission(self, result: TrainingResult):
        """Validate one result and run the client-side secure participation.

        Returns ``(submission, weight, w_int, staleness)``; shared by the
        per-arrival and the block drain paths so their client randomness,
        weight quantization, and state checks are one definition.
        """
        initial = self._in_flight.pop(result.client_id, None)
        if initial is None:
            raise KeyError(f"client {result.client_id} is not in flight")
        if initial != result.initial_version:
            raise ValueError(
                f"client {result.client_id} reported initial version "
                f"{result.initial_version}, aggregator recorded {initial}"
            )
        staleness = self.version - result.initial_version
        weight = self._example_weight(result.num_examples) * self.staleness_policy(
            staleness
        )
        w_int = max(1, int(round(weight * WEIGHT_SCALE)))

        tsa = self._epoch_tsa
        client = SecAggClient(
            client_id=result.client_id,
            codec=self.codec,
            authority=self.authority,
            expected_binary_hash=tsa.binary_hash,
            expected_params_hash=tsa.params_hash,
            rng=child_rng(self.seed, "secagg-client", result.client_id, self.version,
                          self.updates_received),
        )
        leg = self._assign_leg(result.client_id)
        submission = client.participate(
            result.delta, leg, log_bundle=self._log_bundle,
            num_examples=result.num_examples,
        )
        return submission, weight, w_int, staleness

    def _assign_leg(self, client_id: int):
        """Hand out the DH leg for one participating client.

        Seam for the sharded subclass: there the leg must come from the
        client's *routed shard's* TSA — the client-side protocol is
        otherwise identical (its randomness never depends on the leg).
        """
        return self._epoch_server.assign_leg()

    def _submit_one(self, client_id: int, submission) -> bool:
        """Forward one scalar-path submission to its epoch server.

        Seam for the sharded subclass, which submits to the client's
        shard-local server and keeps per-shard fold accounting.
        """
        return self._epoch_server.submit(submission)

    def _record_contribution(
        self, result: TrainingResult, leg_index: int, w_int: int, staleness: int
    ) -> None:
        self._epoch_weights[leg_index] = w_int
        self._epoch_weight_total += w_int
        self._epoch_staleness.append(staleness)
        self._epoch_contributors.append(result.client_id)
        self.updates_received += 1

    def receive_update(
        self, result: TrainingResult
    ) -> tuple[ModelUpdate, ServerStepInfo | None]:
        """Run the client's secure participation, then maybe step.

        The client-side work (quote + log verification, DH completion,
        masking, sealing) happens here because in the simulation the
        "wire" is a method call; the privacy boundary is preserved — the
        epoch server only receives the masked vector and the sealed seed.
        """
        t0 = time.perf_counter() if self.profiler is not None else 0.0
        submission, weight, w_int, staleness = self._prepare_submission(result)
        if not self._submit_one(result.client_id, submission):
            raise RuntimeError("secure submission rejected by honest TSA")
        self._record_contribution(result, submission.leg_index, w_int, staleness)
        if self.profiler is not None:
            self.profiler.record("secagg_submit", time.perf_counter() - t0)

        update = ModelUpdate(result=result, arrival_version=self.version, weight=weight)
        info = None
        if len(self._epoch_contributors) >= self.goal:
            info = self._finalize_epoch()
        return update, info

    def receive_update_block(
        self, results: list[TrainingResult]
    ) -> list[tuple[ModelUpdate, ServerStepInfo | None]]:
        """Drain a cohort of training results through the block data plane.

        Semantically identical to calling :meth:`receive_update` once per
        result, in order — including epochs finalized mid-block (later
        results' staleness is measured against the stepped version) — but
        each goal-bounded chunk crosses the secure boundary as *one*
        ``submit_block``: the completing messages are forwarded at
        check-in (amortized DH legs) and the TSA expands and folds the
        chunk's masks as a single fused block.  Aggregates are
        bit-identical to the per-arrival path.

        Like the plain :meth:`FedBuffAggregator.receive_update_block
        <repro.core.fedbuff.FedBuffAggregator.receive_update_block>`,
        this is the API for direct cohort-style drivers; inside a
        simulation each upload stays its own timestamped event.
        """
        out: list[tuple[ModelUpdate, ServerStepInfo | None]] = []
        pos = 0
        while pos < len(results):
            take = min(
                len(results) - pos, self.goal - len(self._epoch_contributors)
            )
            chunk = results[pos : pos + take]
            pos += take
            server = self._epoch_server
            pending = []
            records = []  # (leg_index, w_int, epoch position) per pending
            rejected = 0
            try:
                for result in chunk:
                    submission, weight, w_int, staleness = self._prepare_submission(
                        result
                    )
                    server.complete_checkin(submission)
                    pending.append(submission)
                    records.append(
                        (submission.leg_index, w_int, len(self._epoch_contributors))
                    )
                    self._record_contribution(
                        result, submission.leg_index, w_int, staleness
                    )
                    out.append(
                        (
                            ModelUpdate(
                                result=result,
                                arrival_version=self.version,
                                weight=weight,
                            ),
                            None,
                        )
                    )
            finally:
                # On a mid-chunk validation error everything gathered so
                # far is still submitted — the state the sequential path
                # would have left behind before raising.  Contributions
                # the TSA rejects are rolled back so the epoch's weights
                # never reference a leg the TSA did not process.
                if pending:
                    flags = server.submit_block(pending)
                    for (leg_index, w_int, entry), ok in zip(
                        reversed(records), reversed(flags)
                    ):
                        if ok:
                            continue
                        rejected += 1
                        self._epoch_weights.pop(leg_index, None)
                        self._epoch_weight_total -= w_int
                        del self._epoch_staleness[entry]
                        del self._epoch_contributors[entry]
                        self.updates_received -= 1
            if rejected:
                raise RuntimeError("secure submission rejected by honest TSA")
            if len(self._epoch_contributors) >= self.goal:
                info = self._finalize_epoch()
                out[-1] = (out[-1][0], info)
        return out

    def _finalize_epoch(self) -> ServerStepInfo:
        """Unmask the weighted aggregate, step the model, roll the epoch."""
        t0 = time.perf_counter() if self.profiler is not None else 0.0
        server, tsa = self._epoch_server, self._epoch_tsa
        weighted_sum = server.finalize(
            weights=self._epoch_weights, max_abs=self.clip_value
        )
        avg = (weighted_sum / self._epoch_weight_total).astype(np.float32)
        self.state.apply(avg, len(self._epoch_contributors))
        self.version += 1
        self.epochs_completed += 1
        # The TSA is long-lived; its meters are cumulative, so the epoch's
        # share is the delta since the round was opened.
        mark_in, mark_out = self._epoch_boundary_mark
        self.boundary_bytes_in_total += tsa.boundary_bytes_in - mark_in
        self.boundary_bytes_out_total += tsa.boundary_bytes_out - mark_out
        info = ServerStepInfo(
            version=self.version,
            num_updates=len(self._epoch_contributors),
            total_weight=self._epoch_weight_total / WEIGHT_SCALE,
            mean_staleness=float(np.mean(self._epoch_staleness)),
            max_staleness=int(np.max(self._epoch_staleness)),
            contributors=tuple(self._epoch_contributors),
        )
        self.step_history.append(info)
        self._begin_epoch()
        if self.profiler is not None:
            self.profiler.record("secagg_finalize", time.perf_counter() - t0)
        return info

    def __repr__(self) -> str:
        return (
            f"SecureBufferedAggregator(goal={self.goal}, version={self.version}, "
            f"buffered={self.buffered_count}, in_flight={len(self._in_flight)})"
        )
