"""Pluggable registries for aggregation planes, routings, and trainers.

PAPAYA's value is running *many heterogeneous FL workloads* on one
platform; the construction knobs that used to be hard-coded branches in
:class:`~repro.system.orchestrator.FederatedSimulation` are registries
here, keyed by name, so a new plane/routing/trainer plugs in with one
``register_*`` call instead of an orchestrator edit:

* **Aggregation planes** — how one task's server-side aggregation is
  laid out over aggregator nodes.  A :class:`PlaneFactory` builds the
  task runtime; ``"single"`` (one :class:`~repro.system.aggregator.
  FLTaskRuntime` on one node), ``"sharded"`` (S shard cores + root
  reducer spread over the pool), ``"secure"`` (FedBuff through
  Asynchronous SecAgg) and ``"secure_sharded"`` (S shard TSA+server
  pairs under one trusted root reducer) are built in.
* **Shard routings** — client→shard policies for the sharded plane
  (``"hash"``, ``"load"``; see :mod:`repro.core.sharding`).
* **Trainer adapters** — named factories building
  :class:`~repro.system.adapters.TrainerAdapter` backends from plain
  JSON-able parameters, so a serialized :class:`repro.api.ScenarioSpec`
  can name its trainer (``"surrogate"``, ``"real_lstm"``, or
  ``"external"`` for adapters injected at deployment time).

Plane *selection* (:func:`resolve_plane`) extends the orchestrator's
historical derivation: secure tasks get the secure plane — hierarchical
(``"secure_sharded"``) when ``num_shards > 1``, since masked group sums
merge exactly across shards — ``num_shards > 1`` shards every async
non-secure task, everything else runs single.  When a task cannot run
on the requested plane the
selection reports a structured fallback (task, requested plane, reason)
that the orchestrator emits as a ``plane_fallback`` event — the
misconfiguration is visible in the log instead of silently absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Protocol

from repro.core.sharding import HashShardRouting, LoadAwareShardRouting
from repro.core.surrogate import SurrogateParams
from repro.core.types import TaskConfig, TrainingMode
from repro.system.adapters import SurrogateAdapter, TrainerAdapter
from repro.system.aggregator import FLTaskRuntime
from repro.system.secure_sharding import SecureShardedFLTaskRuntime
from repro.system.sharding import ShardedFLTaskRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.engine import Simulator
    from repro.sim.population import DevicePopulation
    from repro.sim.trace import MetricsTrace
    from repro.system.client_runtime import CohortDispatcher
    from repro.system.orchestrator import SystemConfig
    from repro.utils.logging import EventLog

__all__ = [
    "Registry",
    "PlaneContext",
    "PlaneFactory",
    "register_plane",
    "get_plane",
    "plane_names",
    "resolve_plane",
    "register_routing",
    "make_routing",
    "routing_names",
    "register_trainer",
    "build_trainer",
    "trainer_names",
]


class Registry:
    """A tiny name→factory registry with actionable lookup errors."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, Any] = {}

    def register(self, name: str, factory: Any, replace: bool = False) -> Any:
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if not replace and name in self._entries:
            raise ValueError(f"{self.kind} {name!r} already registered")
        self._entries[name] = factory
        return factory

    def get(self, name: str) -> Any:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered: "
                f"{', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries


# ---------------------------------------------------------------------------
# Aggregation planes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlaneContext:
    """Everything a plane factory needs to stand up one task runtime."""

    config: TaskConfig
    adapter: TrainerAdapter
    sim: "Simulator"
    trace: "MetricsTrace"
    log: "EventLog"
    on_slot_free: Callable[[], None]
    cohort: "CohortDispatcher | None"
    system: "SystemConfig"


class PlaneFactory(Protocol):
    """Builds the server-side runtime of one task on one plane."""

    name: str

    def build(self, ctx: PlaneContext) -> FLTaskRuntime:  # pragma: no cover
        """Construct the task runtime for ``ctx.config``."""
        ...


class SinglePlane:
    """One aggregation core hosted whole on one aggregator node."""

    name = "single"

    def build(self, ctx: PlaneContext) -> FLTaskRuntime:
        return FLTaskRuntime(
            ctx.config, ctx.adapter, ctx.sim, ctx.trace, ctx.log,
            on_slot_free=ctx.on_slot_free, cohort=ctx.cohort,
        )


class SecurePlane:
    """FedBuff through Asynchronous SecAgg (masked server-side buffer).

    The secure core rides the whole-task runtime: :class:`FLTaskRuntime`
    constructs :class:`~repro.system.secure.SecureBufferedAggregator`
    when the task config demands secure aggregation.
    """

    name = "secure"

    def build(self, ctx: PlaneContext) -> FLTaskRuntime:
        if not ctx.config.secure_aggregation:
            raise ValueError(
                f"task {ctx.config.name!r} is on the secure plane but its "
                "TaskConfig has secure_aggregation=False"
            )
        return FLTaskRuntime(
            ctx.config, ctx.adapter, ctx.sim, ctx.trace, ctx.log,
            on_slot_free=ctx.on_slot_free, cohort=ctx.cohort,
        )


class ShardedPlane:
    """S shard cores + a root reducer spread across the aggregator pool."""

    name = "sharded"

    def build(self, ctx: PlaneContext) -> FLTaskRuntime:
        return ShardedFLTaskRuntime(
            ctx.config, ctx.adapter, ctx.sim, ctx.trace, ctx.log,
            on_slot_free=ctx.on_slot_free, cohort=ctx.cohort,
            num_shards=ctx.system.num_shards,
            shard_routing=make_routing(ctx.system.shard_routing),
            executor=ctx.system.shard_executor,
        )


class SecureShardedPlane:
    """Hierarchical secure aggregation: shard TSAs under one trusted root.

    Each shard runs its own long-lived TSA + server pair over its
    arrival slice; a root reducer merges the *masked* group sums in
    deterministic ascending-shard order before the epoch's single
    unmask + decode — bit-identical to the single secure plane for any
    shard count and routing (see :mod:`repro.system.secure_sharding`).
    """

    name = "secure_sharded"

    def build(self, ctx: PlaneContext) -> FLTaskRuntime:
        if not ctx.config.secure_aggregation:
            raise ValueError(
                f"task {ctx.config.name!r} is on the secure_sharded plane "
                "but its TaskConfig has secure_aggregation=False"
            )
        return SecureShardedFLTaskRuntime(
            ctx.config, ctx.adapter, ctx.sim, ctx.trace, ctx.log,
            on_slot_free=ctx.on_slot_free, cohort=ctx.cohort,
            num_shards=ctx.system.num_shards,
            shard_routing=make_routing(ctx.system.shard_routing),
            executor=ctx.system.shard_executor,
        )


_PLANES = Registry("aggregation plane")


def register_plane(factory: PlaneFactory, replace: bool = False) -> PlaneFactory:
    """Register a plane factory under ``factory.name``."""
    return _PLANES.register(factory.name, factory, replace=replace)


def get_plane(name: str) -> PlaneFactory:
    """Look up a plane factory by name (KeyError lists known planes)."""
    return _PLANES.get(name)


def plane_names() -> list[str]:
    """Sorted names of all registered planes."""
    return _PLANES.names()


register_plane(SinglePlane())
register_plane(ShardedPlane())
register_plane(SecurePlane())
register_plane(SecureShardedPlane())


def resolve_plane(
    config: TaskConfig, system: "SystemConfig"
) -> tuple[str, dict[str, str] | None]:
    """Which plane hosts this task, and whether that is a fallback.

    With ``system.plane == "auto"`` (the default) this extends the
    derivation the orchestrator hard-coded before the registry existed:

    * ``secure_aggregation`` tasks → ``"secure"``, or
      ``"secure_sharded"`` when ``num_shards > 1`` (group sums merge
      exactly across shards, so sharding composes with SecAgg);
    * ``num_shards > 1`` → ``"sharded"`` for async non-secure tasks;
    * everything else → ``"single"``.

    A non-``"auto"`` ``system.plane`` pins every task to that registered
    plane by name (the extension point for custom planes).

    Returns ``(plane_name, fallback)`` where ``fallback`` is ``None`` on
    a direct match, or ``{"requested": ..., "reason": ...}`` when the
    deployment asked for a plane this task cannot run on and a
    compatible one was substituted — the orchestrator logs it as a
    structured ``plane_fallback`` event.
    """
    if system.plane != "auto":
        return system.plane, None
    if config.secure_aggregation:
        if system.num_shards > 1:
            return "secure_sharded", None
        return "secure", None
    if system.num_shards > 1:
        if config.mode is TrainingMode.ASYNC:
            return "sharded", None
        return "single", {
            "requested": "sharded",
            "reason": "sharded aggregation requires mode=ASYNC "
                      f"(task mode is {config.mode.value!r})",
        }
    return "single", None


# ---------------------------------------------------------------------------
# Shard routing policies
# ---------------------------------------------------------------------------

_ROUTINGS = Registry("shard routing policy")
_ROUTINGS.register("hash", HashShardRouting)
_ROUTINGS.register("load", LoadAwareShardRouting)


def register_routing(name: str, policy: Callable[[], Any], replace: bool = False):
    """Register a zero-argument routing-policy factory under ``name``."""
    return _ROUTINGS.register(name, policy, replace=replace)


def make_routing(name: str):
    """Instantiate the routing policy registered under ``name``."""
    return _ROUTINGS.get(name)()


def routing_names() -> list[str]:
    """Sorted names of all registered routing policies."""
    return _ROUTINGS.names()


# ---------------------------------------------------------------------------
# Trainer adapters
# ---------------------------------------------------------------------------

_TRAINERS = Registry("trainer adapter")

#: factory signature: (params, seed, population) -> TrainerAdapter
TrainerFactory = Callable[[Mapping[str, Any], int, "DevicePopulation"], TrainerAdapter]


def register_trainer(name: str, factory: TrainerFactory, replace: bool = False):
    """Register a trainer-adapter factory under ``name``.

    The factory receives the task's ``trainer_params`` mapping, the
    deployment seed, and the built device population, and returns a
    :class:`~repro.system.adapters.TrainerAdapter`.
    """
    return _TRAINERS.register(name, factory, replace=replace)


def build_trainer(
    name: str, params: Mapping[str, Any], seed: int, population: "DevicePopulation"
) -> TrainerAdapter:
    """Build the trainer adapter registered under ``name``."""
    return _TRAINERS.get(name)(params, seed, population)


def trainer_names() -> list[str]:
    """Sorted names of all registered trainer adapters."""
    return _TRAINERS.names()


def _build_surrogate(params, seed, population) -> SurrogateAdapter:
    """The analytic convergence backend (fleet-scale wall-clock runs)."""
    surrogate = SurrogateParams(**dict(params)) if params else None
    return SurrogateAdapter(surrogate, seed=seed)


def _build_external(params, seed, population) -> TrainerAdapter:
    """Placeholder for adapters injected via ``Deployment(adapters=...)``."""
    raise ValueError(
        "trainer 'external' has no factory: pass the prebuilt adapter to "
        "Deployment.from_spec(spec, adapters={task_name: adapter})"
    )


def _build_real_lstm(params, seed, population) -> TrainerAdapter:
    """Real NumPy-LSTM training on the synthetic non-IID corpus.

    Parameters (all optional): ``vocab_size``, ``embed_dim``,
    ``hidden_dim``, ``seq_len``, ``corpus_seed`` (default: deployment
    seed), ``model_seed`` (default: deployment seed), ``server_lr``,
    ``client_lr``, ``batch_size``, ``n_eval_clients``, ``eval_every``.
    """
    from repro.core.client_trainer import LocalTrainer
    from repro.core.server_opt import FedAdam
    from repro.core.state import GlobalModelState
    from repro.data.federated import FederatedDataset
    from repro.data.synthetic_text import CorpusSpec, TopicMarkovCorpus
    from repro.nn.model import LSTMLanguageModel, ModelConfig
    from repro.system.adapters import RealTrainingAdapter

    p = dict(params)
    vocab_size = int(p.pop("vocab_size", 32))
    model_cfg = ModelConfig(
        vocab_size=vocab_size,
        embed_dim=int(p.pop("embed_dim", 12)),
        hidden_dim=int(p.pop("hidden_dim", 24)),
    )
    corpus = TopicMarkovCorpus(
        CorpusSpec(vocab_size=vocab_size, seq_len=int(p.pop("seq_len", 10))),
        seed=int(p.pop("corpus_seed", seed)),
    )
    dataset = FederatedDataset(corpus)
    model_seed = int(p.pop("model_seed", seed))
    model = LSTMLanguageModel(model_cfg, seed=model_seed)
    state = GlobalModelState(model.get_flat(), FedAdam(lr=float(p.pop("server_lr", 0.05))))
    trainer = LocalTrainer(
        model_cfg,
        lr=float(p.pop("client_lr", 1.0)),
        batch_size=int(p.pop("batch_size", 8)),
        seed=model_seed,
    )
    eval_ids = list(range(int(p.pop("n_eval_clients", 16))))
    eval_every = int(p.pop("eval_every", 5))
    if p:
        raise ValueError(
            f"unknown real_lstm trainer params: {', '.join(sorted(p))}"
        )
    return RealTrainingAdapter(
        trainer,
        dataset,
        state,
        eval_clients=eval_ids,
        eval_examples=[population.profile(i).n_examples for i in eval_ids],
        eval_every=eval_every,
    )


register_trainer("surrogate", _build_surrogate)
register_trainer("external", _build_external)
register_trainer("real_lstm", _build_real_lstm)
