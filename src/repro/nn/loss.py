"""Cross-entropy loss and perplexity for language modelling."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "cross_entropy", "perplexity"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax over the last axis (numerically stable)."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def cross_entropy(
    logits: np.ndarray, targets: np.ndarray, with_grad: bool = True
) -> tuple[float, np.ndarray | None]:
    """Mean token-level cross-entropy.

    Parameters
    ----------
    logits:
        Unnormalized scores, shape ``(..., V)``.
    targets:
        Integer class indices with shape ``logits.shape[:-1]``.
    with_grad:
        When True, also return ``d_logits`` (same shape as ``logits``)
        for the mean loss.

    Returns
    -------
    loss:
        Scalar mean negative log-likelihood (nats per token).
    d_logits:
        Gradient, or ``None`` when ``with_grad`` is False.
    """
    V = logits.shape[-1]
    flat = logits.reshape(-1, V)
    tgt = targets.reshape(-1)
    if tgt.min() < 0 or tgt.max() >= V:
        raise ValueError("target index out of range")
    n = flat.shape[0]
    probs = softmax(flat)
    nll = -np.log(np.maximum(probs[np.arange(n), tgt], 1e-12))
    loss = float(nll.mean())
    if not with_grad:
        return loss, None
    d = probs
    d[np.arange(n), tgt] -= 1.0
    d /= n
    return loss, d.reshape(logits.shape).astype(np.float32)


def perplexity(mean_nll: float) -> float:
    """Perplexity corresponding to a mean NLL in nats (the paper's metric).

    Clipped at ``exp(30)`` to avoid inf for divergent models.
    """
    return float(np.exp(min(mean_nll, 30.0)))
