"""Cross-entropy loss and perplexity for language modelling."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "cross_entropy", "batched_cross_entropy", "perplexity"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax over the last axis (numerically stable)."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def cross_entropy(
    logits: np.ndarray, targets: np.ndarray, with_grad: bool = True
) -> tuple[float, np.ndarray | None]:
    """Mean token-level cross-entropy.

    Parameters
    ----------
    logits:
        Unnormalized scores, shape ``(..., V)``.
    targets:
        Integer class indices with shape ``logits.shape[:-1]``.
    with_grad:
        When True, also return ``d_logits`` (same shape as ``logits``)
        for the mean loss.

    Returns
    -------
    loss:
        Scalar mean negative log-likelihood (nats per token).
    d_logits:
        Gradient, or ``None`` when ``with_grad`` is False.
    """
    V = logits.shape[-1]
    flat = logits.reshape(-1, V)
    tgt = targets.reshape(-1)
    if tgt.min() < 0 or tgt.max() >= V:
        raise ValueError("target index out of range")
    n = flat.shape[0]
    probs = softmax(flat)
    nll = -np.log(np.maximum(probs[np.arange(n), tgt], 1e-12))
    loss = float(nll.mean())
    if not with_grad:
        return loss, None
    d = probs
    d[np.arange(n), tgt] -= 1.0
    d /= n
    return loss, d.reshape(logits.shape).astype(np.float32)


def batched_cross_entropy(
    logits: np.ndarray,
    targets: np.ndarray,
    with_grad: bool = True,
    valid_rows: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Per-client mean cross-entropy over a cohort.

    Array layout (leading cohort axis): ``logits`` is ``(K, B, T, V)``,
    ``targets`` ``(K, B, T)``.  Returns a ``(K,)`` loss vector and,
    when ``with_grad``, the gradient of each client's *own* mean loss
    (``(K, B, T, V)`` float32).  Slot ``k`` matches :func:`cross_entropy`
    on ``(logits[k], targets[k])`` bit for bit: softmax reduces along the
    same contiguous last axis, and each client's mean runs over the same
    ``B*T`` contiguous elements as the scalar path's flat mean.

    ``valid_rows`` supports row-padded ragged cohorts: client ``k``'s loss
    averages only its first ``valid_rows[k]`` batch rows (a contiguous
    prefix once flattened, so the reduction order still matches the scalar
    path) and the gradient of every padded position is exactly zero.
    """
    K, V = logits.shape[0], logits.shape[-1]
    B = logits.shape[1]
    flat = logits.reshape(K, -1, V)
    tgt = targets.reshape(K, -1)
    if tgt.min() < 0 or tgt.max() >= V:
        raise ValueError("target index out of range")
    n = flat.shape[1]
    span = n // B
    probs = softmax(flat)
    picked = probs[np.arange(K)[:, None], np.arange(n)[None, :], tgt]
    nll = -np.log(np.maximum(picked, 1e-12))
    if valid_rows is None:
        losses = nll.mean(axis=-1)
    else:
        losses = np.array(
            [nll[k, : int(valid_rows[k]) * span].mean() for k in range(K)],
            dtype=nll.dtype,
        )
    if not with_grad:
        return losses, None
    d = probs
    d[np.arange(K)[:, None], np.arange(n)[None, :], tgt] -= 1.0
    if valid_rows is None:
        d /= n
    else:
        for k in range(K):
            m = int(valid_rows[k]) * span
            d[k, :m] /= m
            d[k, m:] = 0.0
    return losses, d.reshape(logits.shape).astype(np.float32)


def perplexity(mean_nll: float) -> float:
    """Perplexity corresponding to a mean NLL in nats (the paper's metric).

    Clipped at ``exp(30)`` to avoid inf for divergent models.
    """
    return float(np.exp(min(mean_nll, 30.0)))
