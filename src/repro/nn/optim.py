"""Optimizers over flat parameter vectors.

Two roles in the PAPAYA setup (Section 7.1):

* **Client optimizer** — plain SGD on the local model during the client's
  one epoch of training.
* **Server optimizer** — FedAdam (Reddi et al., 2020): the aggregated
  client delta is treated as a pseudo-gradient and fed to Adam.  The
  server-side classes live in :mod:`repro.core.server_opt`; they build on
  :class:`Adam` here.

All optimizers mutate nothing: ``step`` takes ``(params, grad)`` and
returns the new parameter vector, keeping state internal.  This functional
style makes the FL bookkeeping (model versions, staleness) explicit.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["SGD", "CohortSGD", "Adam"]


class SGD:
    """Stochastic gradient descent with optional momentum and grad clipping.

    Parameters
    ----------
    lr:
        Learning rate.
    momentum:
        Heavy-ball momentum coefficient (0 disables).
    clip_norm:
        If set, gradients are rescaled to at most this L2 norm before the
        update — standard practice for LSTM language models.
    """

    def __init__(self, lr: float, momentum: float = 0.0, clip_norm: float | None = None):
        self.lr = check_positive(lr, "lr")
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.clip_norm = clip_norm
        self._velocity: np.ndarray | None = None

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Return updated parameters; state (velocity) advances internally."""
        if grad.shape != params.shape:
            raise ValueError("grad/param shape mismatch")
        g = grad
        if self.clip_norm is not None:
            norm = float(np.linalg.norm(g))
            if norm > self.clip_norm:
                g = g * (self.clip_norm / (norm + 1e-12))
        if self.momentum > 0.0:
            if self._velocity is None:
                self._velocity = np.zeros_like(params)
            self._velocity = self.momentum * self._velocity + g
            g = self._velocity
        return (params - self.lr * g).astype(np.float32)

    def reset(self) -> None:
        """Clear momentum state (fresh client)."""
        self._velocity = None


class CohortSGD:
    """SGD over a stack of K independent parameter vectors at once.

    The cohort counterpart of :class:`SGD` used by the batched training
    engine: ``params`` and ``grad`` are ``(K, P)`` matrices (leading cohort
    axis, one client per row) and every row is updated exactly as
    :class:`SGD` would update it in isolation — including the per-client
    gradient clipping, whose norms are taken row-by-row with the same
    ``np.linalg.norm`` call as the scalar path so the rescale factors are
    bit-identical.

    Momentum state, when enabled, is one velocity matrix ``(K, P)``.
    """

    def __init__(self, lr: float, momentum: float = 0.0, clip_norm: float | None = None):
        self.lr = check_positive(lr, "lr")
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.clip_norm = clip_norm
        self._velocity: np.ndarray | None = None

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Return the updated ``(K, P)`` stack; velocity advances internally."""
        if grad.shape != params.shape or params.ndim != 2:
            raise ValueError("expected matching (K, P) param/grad stacks")
        g = grad
        if self.clip_norm is not None:
            # Row-wise clipping in a small Python loop: K is tiny compared
            # to P, and the scalar path's norm (BLAS dot under
            # np.linalg.norm on a 1-D vector) must be reproduced exactly —
            # an axis-reduction norm sums in a different order.  The stack
            # is only copied once a row actually needs rescaling.
            copied = False
            for k in range(g.shape[0]):
                norm = float(np.linalg.norm(g[k]))
                if norm > self.clip_norm:
                    if not copied:
                        g = g.copy()
                        copied = True
                    g[k] = g[k] * (self.clip_norm / (norm + 1e-12))
        if self.momentum > 0.0:
            if self._velocity is None:
                self._velocity = np.zeros_like(params)
            self._velocity = self.momentum * self._velocity + g
            g = self._velocity
        return (params - self.lr * g).astype(np.float32)

    def reset(self) -> None:
        """Clear momentum state (fresh cohort)."""
        self._velocity = None


class Adam:
    """Adam optimizer (Kingma & Ba) over a flat vector.

    Used by FedAdam on the server with the aggregated client delta as the
    pseudo-gradient.  Default hyperparameters follow the paper: "we use
    Adam's default learning rate and tune the first-moment parameter".
    """

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        self.lr = check_positive(lr, "lr")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = check_positive(eps, "eps")
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    @property
    def step_count(self) -> int:
        """Number of updates applied so far."""
        return self._t

    def step(self, params: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Return updated parameters after one Adam step on ``grad``."""
        if grad.shape != params.shape:
            raise ValueError("grad/param shape mismatch")
        if self._m is None:
            self._m = np.zeros_like(params, dtype=np.float64)
            self._v = np.zeros_like(params, dtype=np.float64)
        self._t += 1
        g = grad.astype(np.float64)
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * g
        self._v = self.beta2 * self._v + (1.0 - self.beta2) * g * g
        m_hat = self._m / (1.0 - self.beta1**self._t)
        v_hat = self._v / (1.0 - self.beta2**self._t)
        update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        return (params.astype(np.float64) - update).astype(np.float32)

    def reset(self) -> None:
        """Clear moment estimates and the step counter."""
        self._m = None
        self._v = None
        self._t = 0
