"""Pure-NumPy neural-network substrate (embedding, LSTM, linear, losses).

Stands in for PyTorch Mobile in the paper's client runtime: real gradients,
real training, hand-written backprop.
"""

from repro.nn.loss import batched_cross_entropy, cross_entropy, perplexity, softmax
from repro.nn.model import BatchedLSTMLanguageModel, LSTMLanguageModel, ModelConfig
from repro.nn.optim import SGD, Adam, CohortSGD
from repro.nn.parameters import ParamSpec, zeros_like_flat

__all__ = [
    "cross_entropy",
    "batched_cross_entropy",
    "perplexity",
    "softmax",
    "LSTMLanguageModel",
    "BatchedLSTMLanguageModel",
    "ModelConfig",
    "SGD",
    "CohortSGD",
    "Adam",
    "ParamSpec",
    "zeros_like_flat",
]
