"""Pure-NumPy neural-network substrate (embedding, LSTM, linear, losses).

Stands in for PyTorch Mobile in the paper's client runtime: real gradients,
real training, hand-written backprop.
"""

from repro.nn.loss import cross_entropy, perplexity, softmax
from repro.nn.model import LSTMLanguageModel, ModelConfig
from repro.nn.optim import SGD, Adam
from repro.nn.parameters import ParamSpec, zeros_like_flat

__all__ = [
    "cross_entropy",
    "perplexity",
    "softmax",
    "LSTMLanguageModel",
    "ModelConfig",
    "SGD",
    "Adam",
    "ParamSpec",
    "zeros_like_flat",
]
