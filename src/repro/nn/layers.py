"""Neural-network layers with hand-written backprop (NumPy only).

The paper trains an LSTM language model (Kim et al., 2015) with PyTorch
Mobile on-device.  PyTorch is not available in this environment, so the
layers here implement the same computation with explicit forward/backward
passes.  Everything is vectorized over the batch dimension; only the
unavoidable recurrence loops over time steps.

Conventions
-----------
* All activations and parameters are ``float32``.
* ``forward`` returns ``(output, cache)``; ``backward`` consumes the cache
  and returns ``(d_input, grads)`` where ``grads`` maps parameter name to
  gradient array with the same shape as the parameter.
* Parameter names are namespaced by the owning layer (e.g. ``lstm.w_x``)
  at the model level, not here.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["init_embedding", "embedding_forward", "embedding_backward",
           "init_linear", "linear_forward", "linear_backward",
           "init_lstm", "lstm_forward", "lstm_backward",
           "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


# ---------------------------------------------------------------------------
# Embedding
# ---------------------------------------------------------------------------

def init_embedding(rng: np.random.Generator, vocab: int, dim: int) -> dict[str, np.ndarray]:
    """Initialize an embedding table ``(vocab, dim)`` ~ N(0, 0.1^2)."""
    return {"weight": (rng.standard_normal((vocab, dim)) * 0.1).astype(np.float32)}


def embedding_forward(
    params: dict[str, np.ndarray], tokens: np.ndarray
) -> tuple[np.ndarray, Any]:
    """Look up embeddings for integer tokens of shape ``(B, T)``.

    Returns activations of shape ``(B, T, dim)``.
    """
    weight = params["weight"]
    out = weight[tokens]
    return out, (tokens, weight.shape, weight.dtype)


def embedding_backward(cache: Any, d_out: np.ndarray) -> dict[str, np.ndarray]:
    """Scatter-add gradients back into the embedding table."""
    tokens, shape, dtype = cache
    d_weight = np.zeros(shape, dtype=dtype)
    np.add.at(d_weight, tokens.reshape(-1), d_out.reshape(-1, shape[1]))
    return {"weight": d_weight}


# ---------------------------------------------------------------------------
# Linear
# ---------------------------------------------------------------------------

def init_linear(rng: np.random.Generator, d_in: int, d_out: int) -> dict[str, np.ndarray]:
    """Initialize a dense layer with Xavier-uniform weights and zero bias."""
    bound = float(np.sqrt(6.0 / (d_in + d_out)))
    return {
        "weight": rng.uniform(-bound, bound, (d_in, d_out)).astype(np.float32),
        "bias": np.zeros(d_out, dtype=np.float32),
    }


def linear_forward(
    params: dict[str, np.ndarray], x: np.ndarray
) -> tuple[np.ndarray, Any]:
    """Affine map over the last axis: ``y = x @ W + b``."""
    y = x @ params["weight"] + params["bias"]
    return y, (x, params["weight"])


def linear_backward(cache: Any, d_out: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Backprop through the affine map; handles any leading batch axes."""
    x, weight = cache
    x2 = x.reshape(-1, x.shape[-1])
    d2 = d_out.reshape(-1, d_out.shape[-1])
    d_weight = x2.T @ d2
    d_bias = d2.sum(axis=0)
    d_x = (d2 @ weight.T).reshape(x.shape)
    dt = weight.dtype
    return d_x, {"weight": d_weight.astype(dt), "bias": d_bias.astype(dt)}


# ---------------------------------------------------------------------------
# LSTM (single layer, full-sequence forward/backward)
# ---------------------------------------------------------------------------

def init_lstm(rng: np.random.Generator, d_in: int, d_hidden: int) -> dict[str, np.ndarray]:
    """Initialize LSTM weights.

    Gate order in the fused matrices is ``[input, forget, cell, output]``.
    The forget-gate bias starts at 1.0 — the standard trick to avoid
    vanishing cell-state gradients early in training.
    """
    bound = float(np.sqrt(6.0 / (d_in + 4 * d_hidden)))
    w_x = rng.uniform(-bound, bound, (d_in, 4 * d_hidden)).astype(np.float32)
    bound_h = float(np.sqrt(6.0 / (d_hidden + 4 * d_hidden)))
    w_h = rng.uniform(-bound_h, bound_h, (d_hidden, 4 * d_hidden)).astype(np.float32)
    bias = np.zeros(4 * d_hidden, dtype=np.float32)
    bias[d_hidden : 2 * d_hidden] = 1.0
    return {"w_x": w_x, "w_h": w_h, "bias": bias}


def lstm_forward(
    params: dict[str, np.ndarray],
    x: np.ndarray,
    h0: np.ndarray | None = None,
    c0: np.ndarray | None = None,
) -> tuple[np.ndarray, Any]:
    """Run an LSTM over a full sequence.

    Parameters
    ----------
    x:
        Inputs of shape ``(B, T, d_in)``.
    h0, c0:
        Optional initial hidden/cell state ``(B, H)``; default zeros.

    Returns
    -------
    hs:
        Hidden states for every step, shape ``(B, T, H)``.
    cache:
        Opaque cache for :func:`lstm_backward`.
    """
    w_x, w_h, bias = params["w_x"], params["w_h"], params["bias"]
    B, T, _ = x.shape
    H = w_h.shape[0]
    dt = np.result_type(x.dtype, w_x.dtype)
    h = np.zeros((B, H), dtype=dt) if h0 is None else h0
    c = np.zeros((B, H), dtype=dt) if c0 is None else c0

    # Precompute the input contribution for all steps in one GEMM.
    zx = x.reshape(B * T, -1) @ w_x
    zx = zx.reshape(B, T, 4 * H)

    hs = np.empty((B, T, H), dtype=dt)
    gates = np.empty((B, T, 4 * H), dtype=dt)
    cells = np.empty((B, T, H), dtype=dt)
    h_prevs = np.empty((B, T, H), dtype=dt)
    c_prevs = np.empty((B, T, H), dtype=dt)

    for t in range(T):
        h_prevs[:, t] = h
        c_prevs[:, t] = c
        z = zx[:, t] + h @ w_h + bias
        i = sigmoid(z[:, :H])
        f = sigmoid(z[:, H : 2 * H])
        g = np.tanh(z[:, 2 * H : 3 * H])
        o = sigmoid(z[:, 3 * H :])
        c = f * c + i * g
        h = o * np.tanh(c)
        gates[:, t, :H] = i
        gates[:, t, H : 2 * H] = f
        gates[:, t, 2 * H : 3 * H] = g
        gates[:, t, 3 * H :] = o
        cells[:, t] = c
        hs[:, t] = h

    cache = (x, h_prevs, c_prevs, gates, cells, w_x, w_h)
    return hs, cache


def lstm_backward(
    cache: Any, d_hs: np.ndarray
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Backprop through time for :func:`lstm_forward`.

    Parameters
    ----------
    d_hs:
        Gradient w.r.t. every hidden state, shape ``(B, T, H)``.

    Returns
    -------
    d_x:
        Gradient w.r.t. the inputs, shape ``(B, T, d_in)``.
    grads:
        Gradients for ``w_x``, ``w_h``, ``bias``.
    """
    x, h_prevs, c_prevs, gates, cells, w_x, w_h = cache
    B, T, H = d_hs.shape
    dt = np.result_type(d_hs.dtype, w_x.dtype)

    d_h_next = np.zeros((B, H), dtype=dt)
    d_c_next = np.zeros((B, H), dtype=dt)

    # Accumulate per-step pre-activation grads, then do the big GEMMs once.
    d_z_all = np.empty((B, T, 4 * H), dtype=dt)

    for t in range(T - 1, -1, -1):
        i = gates[:, t, :H]
        f = gates[:, t, H : 2 * H]
        g = gates[:, t, 2 * H : 3 * H]
        o = gates[:, t, 3 * H :]
        c = cells[:, t]
        tanh_c = np.tanh(c)

        d_h = d_hs[:, t] + d_h_next
        d_o = d_h * tanh_c
        d_c = d_h * o * (1.0 - tanh_c * tanh_c) + d_c_next
        d_f = d_c * c_prevs[:, t]
        d_i = d_c * g
        d_g = d_c * i
        d_c_next = d_c * f

        d_z = d_z_all[:, t]
        d_z[:, :H] = d_i * i * (1.0 - i)
        d_z[:, H : 2 * H] = d_f * f * (1.0 - f)
        d_z[:, 2 * H : 3 * H] = d_g * (1.0 - g * g)
        d_z[:, 3 * H :] = d_o * o * (1.0 - o)

        d_h_next = d_z @ w_h.T

    dz2 = d_z_all.reshape(B * T, 4 * H)
    d_w_x = x.reshape(B * T, -1).T @ dz2
    d_w_h = h_prevs.reshape(B * T, H).T @ dz2
    d_bias = dz2.sum(axis=0)
    d_x = (dz2 @ w_x.T).reshape(x.shape)

    wdt = w_x.dtype
    grads = {
        "w_x": d_w_x.astype(wdt),
        "w_h": d_w_h.astype(wdt),
        "bias": d_bias.astype(wdt),
    }
    return d_x, grads
