"""Neural-network layers with hand-written backprop (NumPy only).

The paper trains an LSTM language model (Kim et al., 2015) with PyTorch
Mobile on-device.  PyTorch is not available in this environment, so the
layers here implement the same computation with explicit forward/backward
passes.  Everything is vectorized over the batch dimension; only the
unavoidable recurrence loops over time steps.

Conventions
-----------
* All activations and parameters are ``float32``.
* ``forward`` returns ``(output, cache)``; ``backward`` consumes the cache
  and returns ``(d_input, grads)`` where ``grads`` maps parameter name to
  gradient array with the same shape as the parameter.
* Parameter names are namespaced by the owning layer (e.g. ``lstm.w_x``)
  at the model level, not here.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["init_embedding", "embedding_forward", "embedding_backward",
           "init_linear", "linear_forward", "linear_backward",
           "init_lstm", "lstm_forward", "lstm_backward",
           "batched_embedding_forward", "batched_embedding_backward",
           "batched_linear_forward", "batched_linear_backward",
           "batched_lstm_forward", "batched_lstm_backward",
           "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Branchless formulation: ``exp(-|x|)`` never overflows, and the two
    ``where`` arms compute exactly ``1/(1+exp(-x))`` for ``x >= 0`` and
    ``exp(x)/(1+exp(x))`` otherwise — bit-identical to the classic
    masked-assignment version but ~3x faster (no boolean gather/scatter),
    which matters because gate activations dominate LSTM training time.
    """
    e = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


# ---------------------------------------------------------------------------
# Embedding
# ---------------------------------------------------------------------------

def init_embedding(rng: np.random.Generator, vocab: int, dim: int) -> dict[str, np.ndarray]:
    """Initialize an embedding table ``(vocab, dim)`` ~ N(0, 0.1^2)."""
    return {"weight": (rng.standard_normal((vocab, dim)) * 0.1).astype(np.float32)}


def embedding_forward(
    params: dict[str, np.ndarray], tokens: np.ndarray
) -> tuple[np.ndarray, Any]:
    """Look up embeddings for integer tokens of shape ``(B, T)``.

    Returns activations of shape ``(B, T, dim)``.
    """
    weight = params["weight"]
    out = weight[tokens]
    return out, (tokens, weight.shape, weight.dtype)


def embedding_backward(cache: Any, d_out: np.ndarray) -> dict[str, np.ndarray]:
    """Scatter-add gradients back into the embedding table."""
    tokens, shape, dtype = cache
    d_weight = np.zeros(shape, dtype=dtype)
    np.add.at(d_weight, tokens.reshape(-1), d_out.reshape(-1, shape[1]))
    return {"weight": d_weight}


# ---------------------------------------------------------------------------
# Linear
# ---------------------------------------------------------------------------

def init_linear(rng: np.random.Generator, d_in: int, d_out: int) -> dict[str, np.ndarray]:
    """Initialize a dense layer with Xavier-uniform weights and zero bias."""
    bound = float(np.sqrt(6.0 / (d_in + d_out)))
    return {
        "weight": rng.uniform(-bound, bound, (d_in, d_out)).astype(np.float32),
        "bias": np.zeros(d_out, dtype=np.float32),
    }


def linear_forward(
    params: dict[str, np.ndarray], x: np.ndarray
) -> tuple[np.ndarray, Any]:
    """Affine map over the last axis: ``y = x @ W + b``."""
    y = x @ params["weight"] + params["bias"]
    return y, (x, params["weight"])


def linear_backward(cache: Any, d_out: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Backprop through the affine map; handles any leading batch axes."""
    x, weight = cache
    x2 = x.reshape(-1, x.shape[-1])
    d2 = d_out.reshape(-1, d_out.shape[-1])
    d_weight = x2.T @ d2
    d_bias = d2.sum(axis=0)
    d_x = (d2 @ weight.T).reshape(x.shape)
    dt = weight.dtype
    return d_x, {"weight": d_weight.astype(dt), "bias": d_bias.astype(dt)}


# ---------------------------------------------------------------------------
# LSTM (single layer, full-sequence forward/backward)
# ---------------------------------------------------------------------------

def init_lstm(rng: np.random.Generator, d_in: int, d_hidden: int) -> dict[str, np.ndarray]:
    """Initialize LSTM weights.

    Gate order in the fused matrices is ``[input, forget, cell, output]``.
    The forget-gate bias starts at 1.0 — the standard trick to avoid
    vanishing cell-state gradients early in training.
    """
    bound = float(np.sqrt(6.0 / (d_in + 4 * d_hidden)))
    w_x = rng.uniform(-bound, bound, (d_in, 4 * d_hidden)).astype(np.float32)
    bound_h = float(np.sqrt(6.0 / (d_hidden + 4 * d_hidden)))
    w_h = rng.uniform(-bound_h, bound_h, (d_hidden, 4 * d_hidden)).astype(np.float32)
    bias = np.zeros(4 * d_hidden, dtype=np.float32)
    bias[d_hidden : 2 * d_hidden] = 1.0
    return {"w_x": w_x, "w_h": w_h, "bias": bias}


def lstm_forward(
    params: dict[str, np.ndarray],
    x: np.ndarray,
    h0: np.ndarray | None = None,
    c0: np.ndarray | None = None,
) -> tuple[np.ndarray, Any]:
    """Run an LSTM over a full sequence.

    Parameters
    ----------
    x:
        Inputs of shape ``(B, T, d_in)``.
    h0, c0:
        Optional initial hidden/cell state ``(B, H)``; default zeros.

    Returns
    -------
    hs:
        Hidden states for every step, shape ``(B, T, H)``.
    cache:
        Opaque cache for :func:`lstm_backward`.
    """
    w_x, w_h, bias = params["w_x"], params["w_h"], params["bias"]
    B, T, _ = x.shape
    H = w_h.shape[0]
    dt = np.result_type(x.dtype, w_x.dtype)
    h = np.zeros((B, H), dtype=dt) if h0 is None else h0
    c = np.zeros((B, H), dtype=dt) if c0 is None else c0

    # Precompute the input contribution for all steps in one GEMM, and
    # fold the bias in up front (it is constant across steps).
    zx = x.reshape(B * T, -1) @ w_x
    zx = zx.reshape(B, T, 4 * H)
    zx += bias

    hs = np.empty((B, T, H), dtype=dt)
    gates = np.empty((B, T, 4 * H), dtype=dt)
    cells = np.empty((B, T, H), dtype=dt)
    h_prevs = np.empty((B, T, H), dtype=dt)
    c_prevs = np.empty((B, T, H), dtype=dt)

    for t in range(T):
        h_prevs[:, t] = h
        c_prevs[:, t] = c
        z = zx[:, t] + h @ w_h
        i = sigmoid(z[:, :H])
        f = sigmoid(z[:, H : 2 * H])
        g = np.tanh(z[:, 2 * H : 3 * H])
        o = sigmoid(z[:, 3 * H :])
        c = f * c + i * g
        h = o * np.tanh(c)
        gates[:, t, :H] = i
        gates[:, t, H : 2 * H] = f
        gates[:, t, 2 * H : 3 * H] = g
        gates[:, t, 3 * H :] = o
        cells[:, t] = c
        hs[:, t] = h

    cache = (x, h_prevs, c_prevs, gates, cells, w_x, w_h)
    return hs, cache


def lstm_backward(
    cache: Any, d_hs: np.ndarray
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Backprop through time for :func:`lstm_forward`.

    Parameters
    ----------
    d_hs:
        Gradient w.r.t. every hidden state, shape ``(B, T, H)``.

    Returns
    -------
    d_x:
        Gradient w.r.t. the inputs, shape ``(B, T, d_in)``.
    grads:
        Gradients for ``w_x``, ``w_h``, ``bias``.
    """
    x, h_prevs, c_prevs, gates, cells, w_x, w_h = cache
    B, T, H = d_hs.shape
    dt = np.result_type(d_hs.dtype, w_x.dtype)

    d_h_next = np.zeros((B, H), dtype=dt)
    d_c_next = np.zeros((B, H), dtype=dt)

    # Accumulate per-step pre-activation grads, then do the big GEMMs once.
    d_z_all = np.empty((B, T, 4 * H), dtype=dt)

    for t in range(T - 1, -1, -1):
        i = gates[:, t, :H]
        f = gates[:, t, H : 2 * H]
        g = gates[:, t, 2 * H : 3 * H]
        o = gates[:, t, 3 * H :]
        c = cells[:, t]
        tanh_c = np.tanh(c)

        d_h = d_hs[:, t] + d_h_next
        d_o = d_h * tanh_c
        d_c = d_h * o * (1.0 - tanh_c * tanh_c) + d_c_next
        d_f = d_c * c_prevs[:, t]
        d_i = d_c * g
        d_g = d_c * i
        d_c_next = d_c * f

        # Upstream grad times the local gate derivative.  The derivative
        # factor is parenthesized as its own subexpression so the batched
        # kernel can precompute it for the whole sequence and still match
        # this path bit for bit (float multiplication is not associative).
        d_z = d_z_all[:, t]
        d_z[:, :H] = d_i * (i * (1.0 - i))
        d_z[:, H : 2 * H] = d_f * (f * (1.0 - f))
        d_z[:, 2 * H : 3 * H] = d_g * (1.0 - g * g)
        d_z[:, 3 * H :] = d_o * (o * (1.0 - o))

        d_h_next = d_z @ w_h.T

    dz2 = d_z_all.reshape(B * T, 4 * H)
    d_w_x = x.reshape(B * T, -1).T @ dz2
    d_w_h = h_prevs.reshape(B * T, H).T @ dz2
    d_bias = dz2.sum(axis=0)
    d_x = (dz2 @ w_x.T).reshape(x.shape)

    wdt = w_x.dtype
    grads = {
        "w_x": d_w_x.astype(wdt),
        "w_h": d_w_h.astype(wdt),
        "bias": d_bias.astype(wdt),
    }
    return d_x, grads


# ---------------------------------------------------------------------------
# Batched (cohort) kernels
# ---------------------------------------------------------------------------
#
# Every ``batched_*`` function is the cohort counterpart of the scalar
# kernel above: each array gains a LEADING COHORT AXIS of length K (one
# slot per client), per-client parameters included.  Slot ``k`` of every
# output is numerically identical — bit for bit — to running the scalar
# kernel on slot ``k`` of the inputs: the contractions go through
# ``np.matmul`` on stacked operands, which executes the same per-slice
# GEMM as the 2-D ``@`` in the scalar path, and every other op is either
# elementwise or reduces along an axis whose per-slice reduction order
# matches the scalar kernel's.  That is the property the differential
# equivalence suite (tests/test_batched_equivalence.py) pins down.
#
# Ragged cohorts (clients whose current mini-batches have different row
# counts) are handled by ROW PADDING: the caller zero-pads every client's
# batch to a common row count and passes ``valid_rows`` (per-client valid
# row counts) to the kernels.  Padding is exact, not approximate: all
# elementwise work runs dense over the padded arrays (padded rows never
# touch valid ones), while every BLAS contraction — including the
# row-wise ones — is issued per client on the *sliced* valid rows, so the
# GEMM calls have exactly the scalar kernel's operand shapes.  That
# slicing matters: BLAS picks different kernels for different row counts
# (GEMV at one row, tiled GEMM above), and merely-row-wise-equivalent
# calls with a padded row count can differ from the scalar result in the
# last ulp.  Bit-exactness here is by construction, not by luck of the
# BLAS build.


def batched_embedding_forward(
    params: dict[str, np.ndarray], tokens: np.ndarray
) -> tuple[np.ndarray, Any]:
    """Per-client embedding lookup.

    Array layout (leading cohort axis):

    * ``params["weight"]``: ``(K, vocab, dim)`` — client ``k``'s table.
    * ``tokens``: ``(K, B, T)`` int tokens.
    * output: ``(K, B, T, dim)``.
    """
    weight = params["weight"]
    K = weight.shape[0]
    out = weight[np.arange(K)[:, None, None], tokens]
    return out, (tokens, weight.shape, weight.dtype)


def batched_embedding_backward(cache: Any, d_out: np.ndarray) -> dict[str, np.ndarray]:
    """Scatter-add gradients into each client's embedding table.

    ``d_out`` is ``(K, B, T, dim)``; returns ``{"weight": (K, vocab, dim)}``.
    One ``np.add.at`` covers the whole cohort; slots never interact because
    the cohort index pins each update to its own table.
    """
    tokens, shape, dtype = cache
    K, dim = shape[0], shape[2]
    d_weight = np.zeros(shape, dtype=dtype)
    flat_tokens = tokens.reshape(K, -1)
    cohort_idx = np.repeat(np.arange(K), flat_tokens.shape[1])
    np.add.at(
        d_weight,
        (cohort_idx, flat_tokens.reshape(-1)),
        d_out.reshape(-1, dim),
    )
    return {"weight": d_weight}


def batched_linear_forward(
    params: dict[str, np.ndarray], x: np.ndarray, valid_rows: np.ndarray | None = None
) -> tuple[np.ndarray, Any]:
    """Per-client affine map ``y[k] = x[k] @ W[k] + b[k]``.

    Array layout (leading cohort axis): ``x`` is ``(K, B, T, d_in)``,
    ``weight`` ``(K, d_in, d_out)``, ``bias`` ``(K, d_out)``; the output is
    ``(K, B, T, d_out)``.  The contraction broadcasts the weight over the
    batch axis — per-slice ``(T, d_in) @ (d_in, d_out)`` GEMMs, the exact
    call structure of the scalar kernel's ``x @ W``.

    With ``valid_rows`` (row-padded ragged cohorts) each client's GEMMs
    cover only its own valid rows; padded output rows are zero.
    """
    weight, bias = params["weight"], params["bias"]
    K = weight.shape[0]
    if valid_rows is None:
        y = np.matmul(x, weight[:, None]) + bias[:, None, None, :]
    else:
        y = np.zeros((*x.shape[:-1], weight.shape[-1]), dtype=x.dtype)
        for k in range(K):
            b = int(valid_rows[k])
            y[k, :b] = x[k, :b] @ weight[k] + bias[k]
    return y, (x, weight)


def batched_linear_backward(
    cache: Any, d_out: np.ndarray, valid_rows: np.ndarray | None = None
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Backprop through the per-client affine map.

    ``d_out`` is ``(K, B, ..., d_out)``; returns ``d_x`` with ``x``'s shape
    and per-client grads ``weight: (K, d_in, d_out)``, ``bias: (K, d_out)``.

    ``valid_rows`` (per-client count of valid leading-batch rows, for
    row-padded ragged cohorts) restricts every contraction to each
    client's first ``valid_rows[k] * span`` flattened positions, where
    ``span`` is the product of the middle axes — exactly the scalar
    kernel's operands; padded ``d_x`` rows come out zero.
    """
    x, weight = cache
    K = weight.shape[0]
    x3 = x.reshape(K, -1, x.shape[-1])
    d3 = d_out.reshape(K, -1, d_out.shape[-1])
    dt = weight.dtype
    if valid_rows is None:
        d_x = np.matmul(d3, weight.transpose(0, 2, 1)).reshape(x.shape)
        d_weight = np.matmul(x3.transpose(0, 2, 1), d3)
        d_bias = d3.sum(axis=1)
    else:
        span = d3.shape[1] // d_out.shape[1]
        d_x3 = np.zeros_like(x3)
        d_weight = np.empty_like(weight, dtype=d3.dtype)
        d_bias = np.empty((K, d3.shape[-1]), dtype=d3.dtype)
        for k in range(K):
            m = int(valid_rows[k]) * span
            d_x3[k, :m] = d3[k, :m] @ weight[k].T
            d_weight[k] = x3[k, :m].T @ d3[k, :m]
            d_bias[k] = d3[k, :m].sum(axis=0)
        d_x = d_x3.reshape(x.shape)
    return d_x, {"weight": d_weight.astype(dt), "bias": d_bias.astype(dt)}


def batched_lstm_forward(
    params: dict[str, np.ndarray],
    x: np.ndarray,
    h0: np.ndarray | None = None,
    c0: np.ndarray | None = None,
    valid_rows: np.ndarray | None = None,
) -> tuple[np.ndarray, Any]:
    """Run K clients' LSTMs over their sequences in lockstep.

    Array layout (leading cohort axis):

    * ``x``: ``(K, B, T, d_in)`` inputs.
    * ``params``: ``w_x (K, d_in, 4H)``, ``w_h (K, H, 4H)``, ``bias (K, 4H)``.
    * ``h0``/``c0``: optional initial state ``(K, B, H)``; default zeros.
    * ``valid_rows``: per-client valid batch-row counts for row-padded
      ragged cohorts (``None`` means every row of every client is real).

    Returns hidden states ``(K, B, T, H)`` and the backward cache.  The
    recurrence still loops over time, but one iteration now advances the
    entire cohort — that collapse of the per-client Python loop is where
    the cohort engine's speedup comes from.  In ragged mode the GEMMs
    inside the loop are issued per client on the sliced valid rows (the
    scalar kernel's exact operands); all gate math stays dense.
    """
    w_x, w_h, bias = params["w_x"], params["w_h"], params["bias"]
    K, B, T, _ = x.shape
    H = w_h.shape[1]
    dt = np.result_type(x.dtype, w_x.dtype)
    h = np.zeros((K, B, H), dtype=dt) if h0 is None else h0
    c = np.zeros((K, B, H), dtype=dt) if c0 is None else c0

    # Input contribution for all clients and steps up front, with each
    # client's bias folded in (constant across steps, like the scalar
    # kernel's ``zx += bias``).
    if valid_rows is None:
        zx = np.matmul(x.reshape(K, B * T, -1), w_x).reshape(K, B, T, 4 * H)
    else:
        zx = np.zeros((K, B, T, 4 * H), dtype=dt)
        x2 = x.reshape(K, B * T, -1)
        for k in range(K):
            m = int(valid_rows[k]) * T
            zx[k].reshape(B * T, 4 * H)[:m] = x2[k, :m] @ w_x[k]
    zx += bias[:, None, None, :]

    hs = np.empty((K, B, T, H), dtype=dt)
    gates = np.empty((K, B, T, 4 * H), dtype=dt)
    cells = np.empty((K, B, T, H), dtype=dt)

    if valid_rows is not None:
        # One zero-filled pre-activation buffer serves every step: each
        # client's valid-row count is constant within the call, so padded
        # rows are never written and stay zero.
        z_buf = np.zeros((K, B, 4 * H), dtype=dt)
        rows = [int(b) for b in valid_rows]

    for t in range(T):
        if valid_rows is None:
            z = zx[:, :, t] + np.matmul(h, w_h)
        else:
            z = z_buf
            for k, b in enumerate(rows):
                z[k, :b] = zx[k, :b, t] + h[k, :b] @ w_h[k]
        # One sigmoid covers the adjacent input+forget gates (elementwise,
        # so fusing the calls changes nothing numerically).
        i_f = sigmoid(z[:, :, : 2 * H])
        i = i_f[:, :, :H]
        f = i_f[:, :, H:]
        g = np.tanh(z[:, :, 2 * H : 3 * H])
        o = sigmoid(z[:, :, 3 * H :])
        c = f * c + i * g
        h = o * np.tanh(c)
        gates[:, :, t, : 2 * H] = i_f
        gates[:, :, t, 2 * H : 3 * H] = g
        gates[:, :, t, 3 * H :] = o
        cells[:, :, t] = c
        hs[:, :, t] = h

    # Previous-step states are shifted views of hs/cells (initial state is
    # all zeros), so the forward loop never materializes h_prev/c_prev.
    cache = (x, hs, gates, cells, w_x, w_h, h0, c0)
    return hs, cache


def batched_lstm_backward(
    cache: Any, d_hs: np.ndarray, valid_rows: np.ndarray | None = None
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Backprop through time for the whole cohort.

    ``d_hs`` is ``(K, B, T, H)``; returns ``d_x (K, B, T, d_in)`` and
    per-client grads ``w_x (K, d_in, 4H)``, ``w_h (K, H, 4H)``,
    ``bias (K, 4H)``.

    ``valid_rows`` (for row-padded ragged cohorts) makes every GEMM —
    the through-time ``d_z @ w_h.T``, the weight/bias contractions, and
    ``d_x`` — run per client on the sliced valid rows, the scalar
    kernel's exact operands.  A padded row's incoming ``d_hs`` is zero
    and its recurrence grads stay exactly zero, so padded positions of
    ``d_x`` are zero too.
    """
    x, hs, gates, cells, w_x, w_h, h0, c0 = cache
    K, B, T, H = d_hs.shape
    dt = np.result_type(d_hs.dtype, w_x.dtype)

    zeros_state = np.zeros((K, B, H), dtype=dt)
    d_h_next = zeros_state
    d_c_next = zeros_state
    w_h_t = w_h.transpose(0, 2, 1)

    # Whole-sequence precomputation: cell tanhs and the local gate
    # derivatives need no recurrence, so they are computed once in a few
    # large array ops instead of ~T small ones.  Each element's expression
    # tree matches the scalar kernel's exactly — ``g_sig * (1 - g_sig)``
    # for the sigmoid gates, ``1 - g*g`` for the candidate — because the
    # scalar path parenthesizes the derivative factor the same way.
    tanh_cells = np.tanh(cells)
    one_minus_tanh2 = 1.0 - tanh_cells * tanh_cells
    gate_deriv = np.empty_like(gates)
    i_f_o = gates[:, :, :, : 2 * H]
    gate_deriv[:, :, :, : 2 * H] = i_f_o * (1.0 - i_f_o)
    o_gate = gates[:, :, :, 3 * H :]
    gate_deriv[:, :, :, 3 * H :] = o_gate * (1.0 - o_gate)
    g_gate = gates[:, :, :, 2 * H : 3 * H]
    gate_deriv[:, :, :, 2 * H : 3 * H] = 1.0 - g_gate * g_gate

    d_z_all = np.empty((K, B, T, 4 * H), dtype=dt)
    d_raw = np.empty((K, B, 4 * H), dtype=dt)

    for t in range(T - 1, -1, -1):
        i = gates[:, :, t, :H]
        f = gates[:, :, t, H : 2 * H]
        o = gates[:, :, t, 3 * H :]
        g = gates[:, :, t, 2 * H : 3 * H]
        tanh_c = tanh_cells[:, :, t]
        if t > 0:
            c_prev = cells[:, :, t - 1]
        else:
            c_prev = zeros_state if c0 is None else c0

        d_h = d_hs[:, :, t] + d_h_next
        d_c = d_h * o * one_minus_tanh2[:, :, t] + d_c_next

        # Raw upstream grads per gate, then one fused multiply by the
        # precomputed derivatives fills this step's d_z slice.
        np.multiply(d_c, g, out=d_raw[:, :, :H])            # d_i
        np.multiply(d_c, c_prev, out=d_raw[:, :, H : 2 * H])  # d_f
        np.multiply(d_c, i, out=d_raw[:, :, 2 * H : 3 * H])   # d_g
        np.multiply(d_h, tanh_c, out=d_raw[:, :, 3 * H :])    # d_o
        d_z = d_z_all[:, :, t]
        np.multiply(d_raw, gate_deriv[:, :, t], out=d_z)
        d_c_next = d_c * f

        if valid_rows is None:
            d_h_next = np.matmul(d_z, w_h_t)
        else:
            if d_h_next is zeros_state:
                # Per-call buffer; padded rows are never written (valid-row
                # counts are constant within the call) and stay zero.
                d_h_next = np.zeros((K, B, H), dtype=dt)
            for k in range(K):
                b = int(valid_rows[k])
                np.matmul(d_z[k, :b], w_h_t[k], out=d_h_next[k, :b])

    # Reconstruct the previous-step hidden states the forward pass no
    # longer stores: zeros (or h0) at t=0, then hs shifted by one step.
    h_prevs = np.empty((K, B, T, H), dtype=hs.dtype)
    h_prevs[:, :, 0] = zeros_state if h0 is None else h0
    h_prevs[:, :, 1:] = hs[:, :, : T - 1]

    dz2 = d_z_all.reshape(K, B * T, 4 * H)
    x2 = x.reshape(K, B * T, -1)
    h2 = h_prevs.reshape(K, B * T, H)
    if valid_rows is None:
        d_x = np.matmul(dz2, w_x.transpose(0, 2, 1)).reshape(x.shape)
        d_w_x = np.matmul(x2.transpose(0, 2, 1), dz2)
        d_w_h = np.matmul(h2.transpose(0, 2, 1), dz2)
        d_bias = dz2.sum(axis=1)
    else:
        d_x2 = np.zeros_like(x2, dtype=dt)
        d_w_x = np.empty_like(w_x, dtype=dt)
        d_w_h = np.empty_like(w_h, dtype=dt)
        d_bias = np.empty((K, 4 * H), dtype=dt)
        w_x_t = w_x.transpose(0, 2, 1)
        for k in range(K):
            m = int(valid_rows[k]) * T
            d_x2[k, :m] = dz2[k, :m] @ w_x_t[k]
            d_w_x[k] = x2[k, :m].T @ dz2[k, :m]
            d_w_h[k] = h2[k, :m].T @ dz2[k, :m]
            d_bias[k] = dz2[k, :m].sum(axis=0)
        d_x = d_x2.reshape(x.shape)

    wdt = w_x.dtype
    grads = {
        "w_x": d_w_x.astype(wdt),
        "w_h": d_w_h.astype(wdt),
        "bias": d_bias.astype(wdt),
    }
    return d_x, grads
