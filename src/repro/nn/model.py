"""The LSTM language model used throughout the reproduction.

Matches the paper's workload: an LSTM-based next-word-prediction model in
the style of Kim et al. (2015) — embedding, single-layer LSTM, linear
decoder — sized down so that thousands of simulated client updates run in
seconds on a CPU.  The architecture is configurable; the convergence
phenomena PAPAYA measures do not depend on model scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import layers
from repro.nn.loss import cross_entropy, perplexity
from repro.nn.parameters import ParamSpec
from repro.utils.rng import child_rng

__all__ = ["ModelConfig", "LSTMLanguageModel"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyperparameters for :class:`LSTMLanguageModel`.

    Attributes
    ----------
    vocab_size:
        Number of token types (including BOS at index 0).
    embed_dim:
        Embedding width.
    hidden_dim:
        LSTM hidden width (same for every layer).
    num_layers:
        Stacked LSTM layers (Kim et al. 2015 use 2; 1 is plenty for the
        reproduction's scaled-down workloads).
    """

    vocab_size: int = 64
    embed_dim: int = 16
    hidden_dim: int = 32
    num_layers: int = 1

    def __post_init__(self) -> None:
        for field in ("vocab_size", "embed_dim", "hidden_dim", "num_layers"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")


class LSTMLanguageModel:
    """Next-token prediction model: ``embed -> LSTM -> linear -> softmax``.

    The model holds its parameters as a dict of named float32 arrays and
    exposes flat-vector accessors (:meth:`get_flat` / :meth:`set_flat`)
    used by the federated stack, which only ever ships flat deltas.

    Parameters
    ----------
    config:
        Architecture sizes.
    seed:
        Seed for weight initialization (deterministic per seed).
    """

    def __init__(self, config: ModelConfig, seed: int = 0):
        self.config = config
        rng = child_rng(seed, "model-init")
        params: dict[str, np.ndarray] = {}
        for k, v in layers.init_embedding(rng, config.vocab_size, config.embed_dim).items():
            params[f"embed.{k}"] = v
        for layer in range(config.num_layers):
            d_in = config.embed_dim if layer == 0 else config.hidden_dim
            for k, v in layers.init_lstm(rng, d_in, config.hidden_dim).items():
                params[f"lstm{layer}.{k}"] = v
        for k, v in layers.init_linear(rng, config.hidden_dim, config.vocab_size).items():
            params[f"out.{k}"] = v
        self.params = params
        self.spec = ParamSpec.from_params(params)

    # -- parameter plumbing -------------------------------------------------

    @property
    def num_params(self) -> int:
        """Total scalar parameter count."""
        return self.spec.size

    def get_flat(self) -> np.ndarray:
        """Copy of the parameters as one flat float32 vector."""
        return self.spec.flatten(self.params)

    def set_flat(self, vec: np.ndarray) -> None:
        """Overwrite parameters from a flat vector."""
        self.params = self.spec.unflatten(vec)

    def clone(self) -> "LSTMLanguageModel":
        """Deep copy (same config, same weights, independent arrays)."""
        other = LSTMLanguageModel(self.config, seed=0)
        other.set_flat(self.get_flat())
        return other

    # -- forward / backward -------------------------------------------------

    def _split(self, prefix: str) -> dict[str, np.ndarray]:
        plen = len(prefix) + 1
        return {k[plen:]: v for k, v in self.params.items() if k.startswith(prefix + ".")}

    def forward(self, tokens: np.ndarray) -> tuple[np.ndarray, tuple]:
        """Compute logits ``(B, T, V)`` for input tokens ``(B, T)``."""
        emb, cache_e = layers.embedding_forward(self._split("embed"), tokens)
        hs = emb
        lstm_caches = []
        for layer in range(self.config.num_layers):
            hs, cache_l = layers.lstm_forward(self._split(f"lstm{layer}"), hs)
            lstm_caches.append(cache_l)
        logits, cache_o = layers.linear_forward(self._split("out"), hs)
        return logits, (cache_e, lstm_caches, cache_o)

    def loss_and_grad(
        self, tokens: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Mean cross-entropy and its gradient as a flat vector.

        ``tokens`` and ``targets`` are int arrays of shape ``(B, T)``;
        ``targets`` is ``tokens`` shifted by one in the usual LM setup.
        """
        logits, (cache_e, lstm_caches, cache_o) = self.forward(tokens)
        loss, d_logits = cross_entropy(logits, targets)
        d_hs, g_out = layers.linear_backward(cache_o, d_logits)
        grads = {f"out.{k}": v for k, v in g_out.items()}
        for layer in range(self.config.num_layers - 1, -1, -1):
            d_hs, g_lstm = layers.lstm_backward(lstm_caches[layer], d_hs)
            grads |= {f"lstm{layer}.{k}": v for k, v in g_lstm.items()}
        g_embed = layers.embedding_backward(cache_e, d_hs)
        grads |= {f"embed.{k}": v for k, v in g_embed.items()}
        return loss, self.spec.flatten(grads)

    def evaluate(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """Mean cross-entropy without gradients (test/validation)."""
        logits, _ = self.forward(tokens)
        loss, _ = cross_entropy(logits, targets, with_grad=False)
        return loss

    def evaluate_perplexity(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """Perplexity on a batch — the paper's Table 1 metric."""
        return perplexity(self.evaluate(tokens, targets))
