"""The LSTM language model used throughout the reproduction.

Matches the paper's workload: an LSTM-based next-word-prediction model in
the style of Kim et al. (2015) — embedding, single-layer LSTM, linear
decoder — sized down so that thousands of simulated client updates run in
seconds on a CPU.  The architecture is configurable; the convergence
phenomena PAPAYA measures do not depend on model scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import layers
from repro.nn.loss import batched_cross_entropy, cross_entropy, perplexity
from repro.nn.parameters import ParamSpec
from repro.utils.rng import child_rng

__all__ = ["ModelConfig", "LSTMLanguageModel", "BatchedLSTMLanguageModel"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyperparameters for :class:`LSTMLanguageModel`.

    Attributes
    ----------
    vocab_size:
        Number of token types (including BOS at index 0).
    embed_dim:
        Embedding width.
    hidden_dim:
        LSTM hidden width (same for every layer).
    num_layers:
        Stacked LSTM layers (Kim et al. 2015 use 2; 1 is plenty for the
        reproduction's scaled-down workloads).
    """

    vocab_size: int = 64
    embed_dim: int = 16
    hidden_dim: int = 32
    num_layers: int = 1

    def __post_init__(self) -> None:
        for field in ("vocab_size", "embed_dim", "hidden_dim", "num_layers"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")


class LSTMLanguageModel:
    """Next-token prediction model: ``embed -> LSTM -> linear -> softmax``.

    The model holds its parameters as a dict of named float32 arrays and
    exposes flat-vector accessors (:meth:`get_flat` / :meth:`set_flat`)
    used by the federated stack, which only ever ships flat deltas.

    Parameters
    ----------
    config:
        Architecture sizes.
    seed:
        Seed for weight initialization (deterministic per seed).
    """

    def __init__(self, config: ModelConfig, seed: int = 0):
        self.config = config
        rng = child_rng(seed, "model-init")
        params: dict[str, np.ndarray] = {}
        for k, v in layers.init_embedding(rng, config.vocab_size, config.embed_dim).items():
            params[f"embed.{k}"] = v
        for layer in range(config.num_layers):
            d_in = config.embed_dim if layer == 0 else config.hidden_dim
            for k, v in layers.init_lstm(rng, d_in, config.hidden_dim).items():
                params[f"lstm{layer}.{k}"] = v
        for k, v in layers.init_linear(rng, config.hidden_dim, config.vocab_size).items():
            params[f"out.{k}"] = v
        self.params = params
        self.spec = ParamSpec.from_params(params)

    # -- parameter plumbing -------------------------------------------------

    @property
    def num_params(self) -> int:
        """Total scalar parameter count."""
        return self.spec.size

    def get_flat(self) -> np.ndarray:
        """Copy of the parameters as one flat float32 vector."""
        return self.spec.flatten(self.params)

    def set_flat(self, vec: np.ndarray) -> None:
        """Overwrite parameters from a flat vector."""
        self.params = self.spec.unflatten(vec)

    def clone(self) -> "LSTMLanguageModel":
        """Deep copy (same config, same weights, independent arrays)."""
        other = LSTMLanguageModel(self.config, seed=0)
        other.set_flat(self.get_flat())
        return other

    # -- forward / backward -------------------------------------------------

    def _split(self, prefix: str) -> dict[str, np.ndarray]:
        plen = len(prefix) + 1
        return {k[plen:]: v for k, v in self.params.items() if k.startswith(prefix + ".")}

    def forward(self, tokens: np.ndarray) -> tuple[np.ndarray, tuple]:
        """Compute logits ``(B, T, V)`` for input tokens ``(B, T)``."""
        emb, cache_e = layers.embedding_forward(self._split("embed"), tokens)
        hs = emb
        lstm_caches = []
        for layer in range(self.config.num_layers):
            hs, cache_l = layers.lstm_forward(self._split(f"lstm{layer}"), hs)
            lstm_caches.append(cache_l)
        logits, cache_o = layers.linear_forward(self._split("out"), hs)
        return logits, (cache_e, lstm_caches, cache_o)

    def loss_and_grad(
        self, tokens: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Mean cross-entropy and its gradient as a flat vector.

        ``tokens`` and ``targets`` are int arrays of shape ``(B, T)``;
        ``targets`` is ``tokens`` shifted by one in the usual LM setup.
        """
        logits, (cache_e, lstm_caches, cache_o) = self.forward(tokens)
        loss, d_logits = cross_entropy(logits, targets)
        d_hs, g_out = layers.linear_backward(cache_o, d_logits)
        grads = {f"out.{k}": v for k, v in g_out.items()}
        for layer in range(self.config.num_layers - 1, -1, -1):
            d_hs, g_lstm = layers.lstm_backward(lstm_caches[layer], d_hs)
            grads |= {f"lstm{layer}.{k}": v for k, v in g_lstm.items()}
        g_embed = layers.embedding_backward(cache_e, d_hs)
        grads |= {f"embed.{k}": v for k, v in g_embed.items()}
        return loss, self.spec.flatten(grads)

    def evaluate(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """Mean cross-entropy without gradients (test/validation)."""
        logits, _ = self.forward(tokens)
        loss, _ = cross_entropy(logits, targets, with_grad=False)
        return loss

    def evaluate_perplexity(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """Perplexity on a batch — the paper's Table 1 metric."""
        return perplexity(self.evaluate(tokens, targets))


class BatchedLSTMLanguageModel:
    """Cohort view of :class:`LSTMLanguageModel`: K clients in lockstep.

    Holds the parameters of K independent clients stacked along a leading
    cohort axis — each named parameter is ``(K, *scalar_shape)`` — and runs
    one set of batched kernel calls (:mod:`repro.nn.layers`) instead of K
    scalar passes.  Slot ``k`` of every output is bit-identical to an
    :class:`LSTMLanguageModel` loaded with ``set_flat(stack[k])``; the
    differential suite in ``tests/test_batched_equivalence.py`` enforces
    this.

    The flat-vector interface mirrors the scalar model's, one matrix row
    per client: :meth:`set_flat_stack` / :meth:`get_flat_stack` move
    ``(K, num_params)`` float32 matrices in and out.

    Parameters
    ----------
    config:
        Architecture sizes (shared by every client in the cohort).
    cohort_size:
        K — number of client slots.
    """

    def __init__(self, config: ModelConfig, cohort_size: int):
        if cohort_size < 1:
            raise ValueError("cohort_size must be at least 1")
        self.config = config
        self.cohort_size = cohort_size
        # Same canonical name/shape/offset layout as the scalar model, so
        # row k of the stacked flat matrix is exactly a scalar flat vector.
        self.spec = LSTMLanguageModel(config, seed=0).spec
        self.params: dict[str, np.ndarray] = {
            name: np.zeros((cohort_size, *shape), dtype=np.float32)
            for name, shape in zip(self.spec.names, self.spec.shapes)
        }

    @property
    def num_params(self) -> int:
        """Scalar parameter count per client (row width of the stack)."""
        return self.spec.size

    def set_flat_stack(self, stack: np.ndarray) -> None:
        """Load the cohort's parameters from a ``(K, num_params)`` matrix."""
        K = self.cohort_size
        if stack.shape != (K, self.spec.size):
            raise ValueError(
                f"expected stack of shape {(K, self.spec.size)}, got {stack.shape}"
            )
        for name, shape, off in zip(self.spec.names, self.spec.shapes, self.spec.offsets):
            n = int(np.prod(shape)) if shape else 1
            self.params[name] = (
                stack[:, off : off + n].astype(np.float32, copy=True).reshape(K, *shape)
            )

    def get_flat_stack(self) -> np.ndarray:
        """Copy the cohort's parameters into a ``(K, num_params)`` matrix."""
        out = np.empty((self.cohort_size, self.spec.size), dtype=np.float32)
        for name, shape, off in zip(self.spec.names, self.spec.shapes, self.spec.offsets):
            n = int(np.prod(shape)) if shape else 1
            out[:, off : off + n] = self.params[name].reshape(self.cohort_size, n)
        return out

    def _flatten_grads(self, grads: dict[str, np.ndarray]) -> np.ndarray:
        out = np.empty((self.cohort_size, self.spec.size), dtype=np.float32)
        for name, shape, off in zip(self.spec.names, self.spec.shapes, self.spec.offsets):
            n = int(np.prod(shape)) if shape else 1
            out[:, off : off + n] = grads[name].reshape(self.cohort_size, n)
        return out

    def _split(self, prefix: str) -> dict[str, np.ndarray]:
        plen = len(prefix) + 1
        return {k[plen:]: v for k, v in self.params.items() if k.startswith(prefix + ".")}

    def forward(
        self, tokens: np.ndarray, valid_rows: np.ndarray | None = None
    ) -> tuple[np.ndarray, tuple]:
        """Compute logits ``(K, B, T, V)`` for input tokens ``(K, B, T)``."""
        if tokens.ndim != 3 or tokens.shape[0] != self.cohort_size:
            raise ValueError(
                f"expected tokens of shape (K={self.cohort_size}, B, T), "
                f"got {tokens.shape}"
            )
        emb, cache_e = layers.batched_embedding_forward(self._split("embed"), tokens)
        hs = emb
        lstm_caches = []
        for layer in range(self.config.num_layers):
            hs, cache_l = layers.batched_lstm_forward(
                self._split(f"lstm{layer}"), hs, valid_rows=valid_rows
            )
            lstm_caches.append(cache_l)
        logits, cache_o = layers.batched_linear_forward(
            self._split("out"), hs, valid_rows=valid_rows
        )
        return logits, (cache_e, lstm_caches, cache_o)

    def loss_and_grad(
        self,
        tokens: np.ndarray,
        targets: np.ndarray,
        valid_rows: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Each client's mean cross-entropy and flat gradient.

        ``tokens`` / ``targets`` are ``(K, B, T)`` int arrays.  Returns a
        ``(K,)`` loss vector and a ``(K, num_params)`` gradient matrix;
        row ``k`` equals the scalar model's ``loss_and_grad(tokens[k],
        targets[k])`` at parameters ``stack[k]``.

        ``valid_rows`` handles ragged cohorts: pad each client's batch
        with arbitrary rows up to the common ``B`` and pass the per-client
        valid row counts; losses and gradients then match the scalar model
        run on the *unpadded* ``tokens[k][:valid_rows[k]]`` exactly (see
        the layer-kernel notes in :mod:`repro.nn.layers`).
        """
        logits, (cache_e, lstm_caches, cache_o) = self.forward(tokens, valid_rows)
        losses, d_logits = batched_cross_entropy(logits, targets, valid_rows=valid_rows)
        d_hs, g_out = layers.batched_linear_backward(
            cache_o, d_logits, valid_rows=valid_rows
        )
        grads = {f"out.{k}": v for k, v in g_out.items()}
        for layer in range(self.config.num_layers - 1, -1, -1):
            d_hs, g_lstm = layers.batched_lstm_backward(
                lstm_caches[layer], d_hs, valid_rows=valid_rows
            )
            grads |= {f"lstm{layer}.{k}": v for k, v in g_lstm.items()}
        g_embed = layers.batched_embedding_backward(cache_e, d_hs)
        grads |= {f"embed.{k}": v for k, v in g_embed.items()}
        return losses, self._flatten_grads(grads)

    def evaluate(self, tokens: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Per-client mean cross-entropy without gradients, shape ``(K,)``."""
        logits, _ = self.forward(tokens)
        losses, _ = batched_cross_entropy(logits, targets, with_grad=False)
        return losses
