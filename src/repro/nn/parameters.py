"""Flat-vector views of model parameters.

The entire FL stack — server optimizers, FedBuff buffers, secure
aggregation — operates on model *deltas* as flat ``float32`` vectors
(that is what crosses the wire in PAPAYA).  :class:`ParamSpec` is the
bridge between a model's named-array parameters and that flat view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ParamSpec", "zeros_like_flat"]


@dataclass(frozen=True)
class ParamSpec:
    """Immutable description of a parameter collection's layout.

    Attributes
    ----------
    names:
        Parameter names in canonical (sorted) order.
    shapes:
        Shape of each parameter, aligned with ``names``.
    offsets:
        Start offset of each parameter in the flat vector.
    size:
        Total number of scalar parameters.
    """

    names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]
    offsets: tuple[int, ...]
    size: int

    @classmethod
    def from_params(cls, params: dict[str, np.ndarray]) -> "ParamSpec":
        """Build a spec from a name->array mapping (order-insensitive)."""
        names = tuple(sorted(params))
        shapes = tuple(tuple(params[n].shape) for n in names)
        offsets: list[int] = []
        pos = 0
        for shape in shapes:
            offsets.append(pos)
            pos += int(np.prod(shape)) if shape else 1
        return cls(names=names, shapes=shapes, offsets=tuple(offsets), size=pos)

    def flatten(self, params: dict[str, np.ndarray]) -> np.ndarray:
        """Pack named arrays into one contiguous float32 vector."""
        out = np.empty(self.size, dtype=np.float32)
        for name, shape, off in zip(self.names, self.shapes, self.offsets):
            arr = params[name]
            if tuple(arr.shape) != shape:
                raise ValueError(
                    f"parameter {name!r} has shape {arr.shape}, spec says {shape}"
                )
            n = int(np.prod(shape)) if shape else 1
            out[off : off + n] = arr.reshape(-1).astype(np.float32, copy=False)
        return out

    def unflatten(self, vec: np.ndarray) -> dict[str, np.ndarray]:
        """Unpack a flat vector into named float32 arrays (copies)."""
        if vec.ndim != 1 or vec.size != self.size:
            raise ValueError(f"expected flat vector of size {self.size}, got {vec.shape}")
        params: dict[str, np.ndarray] = {}
        for name, shape, off in zip(self.names, self.shapes, self.offsets):
            n = int(np.prod(shape)) if shape else 1
            params[name] = (
                vec[off : off + n].astype(np.float32, copy=True).reshape(shape)
            )
        return params

    def slot(self, name: str) -> slice:
        """Slice of the flat vector occupied by parameter ``name``."""
        idx = self.names.index(name)
        n = int(np.prod(self.shapes[idx])) if self.shapes[idx] else 1
        return slice(self.offsets[idx], self.offsets[idx] + n)


def zeros_like_flat(spec: ParamSpec) -> np.ndarray:
    """A zero flat vector matching ``spec`` (float32)."""
    return np.zeros(spec.size, dtype=np.float32)
