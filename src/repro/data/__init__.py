"""Synthetic federated text corpus (stand-in for production typing data)."""

from repro.data.federated import ClientDataset, FederatedDataset
from repro.data.synthetic_text import CorpusSpec, TopicMarkovCorpus
from repro.data.vocab import BOS_ID, Vocabulary

__all__ = [
    "ClientDataset",
    "FederatedDataset",
    "CorpusSpec",
    "TopicMarkovCorpus",
    "BOS_ID",
    "Vocabulary",
]
