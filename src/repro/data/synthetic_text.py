"""Synthetic non-IID text generator (stand-in for production typing data).

The paper trains next-word prediction on real user text, which is both
private and heavily non-IID across users.  We reproduce the statistical
structure that matters for the experiments:

* a **Zipfian global unigram distribution** (natural-language shaped);
* **topic-mixture Markov dynamics**: a small set of topic transition
  kernels; each client draws a Dirichlet mixture over topics, so clients
  are non-IID but share global structure (federated LM setting of
  Hard et al., 2019 / LEAF);
* **heavy-tailed per-client example counts**, supplied externally by the
  device population model so they can be *correlated with device speed*
  (the mechanism behind the paper's Figure 11 fairness result).

Generation is vectorized: a batch of sequences advances one Markov step at
a time via inverse-CDF sampling against the client's cumulative transition
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.vocab import BOS_ID
from repro.utils.rng import child_rng

__all__ = ["CorpusSpec", "TopicMarkovCorpus"]


@dataclass(frozen=True)
class CorpusSpec:
    """Hyperparameters of the synthetic corpus.

    Attributes
    ----------
    vocab_size:
        Token types including BOS (index 0; never emitted mid-sequence).
    n_topics:
        Number of latent topic kernels.
    seq_len:
        Tokens per example (the model sees ``seq_len`` inputs/targets).
    zipf_exponent:
        Exponent of the global unigram Zipf law (~1 for natural text).
    topic_concentration:
        Dirichlet concentration for client topic mixtures; smaller values
        give more non-IID clients.
    topic_sharpness:
        How strongly each topic kernel deviates from the global unigram
        background (0 = IID across topics).
    volume_topic_coupling:
        Strength (0–1) of the data-volume → topic-identity coupling:
        heavy-data clients lean toward topic 0.  Real keyboard data has
        this structure (prolific users have distinctive usage), and it is
        what makes over-selection bias *measurable in model quality* —
        dropping heavy clients underfits their topic (paper Table 1:
        +50 % perplexity for the 99th data-volume percentile under
        over-selection).  0 disables the coupling.
    reference_examples:
        Example count at which the coupling is at half strength.
    """

    vocab_size: int = 64
    n_topics: int = 4
    seq_len: int = 16
    zipf_exponent: float = 1.1
    topic_concentration: float = 0.3
    topic_sharpness: float = 3.0
    volume_topic_coupling: float = 0.0
    reference_examples: float = 30.0

    def __post_init__(self) -> None:
        if self.vocab_size < 4:
            raise ValueError("vocab_size must be at least 4")
        if self.n_topics < 1:
            raise ValueError("n_topics must be at least 1")
        if self.seq_len < 2:
            raise ValueError("seq_len must be at least 2")
        if self.topic_concentration <= 0:
            raise ValueError("topic_concentration must be positive")
        if not (0.0 <= self.volume_topic_coupling <= 1.0):
            raise ValueError("volume_topic_coupling must be in [0, 1]")
        if self.reference_examples <= 0:
            raise ValueError("reference_examples must be positive")


class TopicMarkovCorpus:
    """Deterministic factory for per-client token sequences.

    The corpus-level structure (unigram law, topic kernels) is built once
    from ``seed``; each client's data is then generated independently and
    reproducibly from ``(seed, client_id)``, so a population of 100k
    clients costs no memory until a client is actually sampled.

    Parameters
    ----------
    spec:
        Corpus hyperparameters.
    seed:
        Root seed for corpus structure and all client streams.
    """

    def __init__(self, spec: CorpusSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        rng = child_rng(seed, "corpus-structure")
        V, K = spec.vocab_size, spec.n_topics

        # Global Zipf unigram over real words (indices 1..V-1).
        ranks = np.arange(1, V, dtype=np.float64)
        weights = ranks ** (-spec.zipf_exponent)
        unigram = np.zeros(V, dtype=np.float64)
        unigram[1:] = weights / weights.sum()
        self.unigram = unigram

        # Topic kernels: each row is a convex blend of the global unigram
        # and a topic-specific Dirichlet draw, sharpened per topic.
        kernels = np.empty((K, V, V), dtype=np.float64)
        for k in range(K):
            pref = rng.dirichlet(np.full(V - 1, 0.5), size=V)
            rows = np.zeros((V, V), dtype=np.float64)
            rows[:, 1:] = pref
            lam = spec.topic_sharpness / (1.0 + spec.topic_sharpness)
            kernels[k] = (1.0 - lam) * unigram[None, :] + lam * rows
            kernels[k, :, BOS_ID] = 0.0
            kernels[k] /= kernels[k].sum(axis=1, keepdims=True)
        self.kernels = kernels

    # -- client-level structure ---------------------------------------------

    def client_topic_mixture(
        self, client_id: int, n_examples: int | None = None
    ) -> np.ndarray:
        """Dirichlet topic mixture of one client (deterministic).

        With ``volume_topic_coupling`` enabled and ``n_examples`` given,
        the mixture is pulled toward topic 0 in proportion to the client's
        data volume: heavy users share a distinctive topic.
        """
        rng = child_rng(self.seed, "client-mixture", client_id)
        alpha = np.full(self.spec.n_topics, self.spec.topic_concentration)
        mix = rng.dirichlet(alpha)
        coupling = self.spec.volume_topic_coupling
        if coupling > 0.0 and n_examples is not None:
            # Saturating volume factor in [0, 1): 0.5 at the reference count.
            vol = n_examples / (n_examples + self.spec.reference_examples)
            lam = coupling * vol
            heavy = np.zeros(self.spec.n_topics)
            heavy[0] = 1.0
            mix = (1.0 - lam) * mix + lam * heavy
        return mix

    def client_transition_matrix(
        self, client_id: int, n_examples: int | None = None
    ) -> np.ndarray:
        """Row-stochastic transition matrix of one client."""
        mix = self.client_topic_mixture(client_id, n_examples)
        mat = np.tensordot(mix, self.kernels, axes=1)
        return mat / mat.sum(axis=1, keepdims=True)

    # -- sequence generation --------------------------------------------------

    def generate_sequences(
        self, client_id: int, n_sequences: int, salt: object = "data"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``n_sequences`` examples for a client.

        Returns
        -------
        x, y:
            int32 arrays of shape ``(n_sequences, seq_len)``; ``x`` starts
            with BOS, and ``y`` is ``x`` shifted left by one token (the
            next-word-prediction targets).
        """
        if n_sequences <= 0:
            raise ValueError("n_sequences must be positive")
        T = self.spec.seq_len
        rng = child_rng(self.seed, "client-sequences", client_id, salt)
        trans = self.client_transition_matrix(client_id, n_examples=n_sequences)
        cum = np.cumsum(trans, axis=1)
        cum[:, -1] = 1.0  # guard against float round-off

        seq = np.empty((n_sequences, T + 1), dtype=np.int32)
        seq[:, 0] = BOS_ID
        # First real token from the client's BOS row; afterwards follow the
        # chain.  All steps vectorized over the batch of sequences.
        cur = np.full(n_sequences, BOS_ID, dtype=np.int64)
        u = rng.random((n_sequences, T))
        for t in range(T):
            rows = cum[cur]
            cur = (rows < u[:, t : t + 1]).sum(axis=1)
            seq[:, t + 1] = cur
        return seq[:, :-1].copy(), seq[:, 1:].copy()

    def stationary_sample(self, rng: np.random.Generator, n_tokens: int) -> np.ndarray:
        """Draw tokens from the global unigram (for centralized eval sets)."""
        return rng.choice(self.spec.vocab_size, size=n_tokens, p=self.unigram)
