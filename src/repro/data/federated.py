"""Federated dataset views: per-client train/val/test partitions.

Mirrors the paper's setup (Section 7.1): "We partition each client's data
into train, test, and validation sets randomly."  Client datasets are
materialized lazily from the deterministic corpus so that populations of
hundreds of thousands of clients cost nothing until touched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic_text import TopicMarkovCorpus
from repro.utils.rng import child_rng

__all__ = ["ClientDataset", "FederatedDataset"]


@dataclass(frozen=True)
class ClientDataset:
    """One client's local data, already split.

    ``num_train_examples`` is the weighting quantity used by the
    aggregation algorithms (each update "is weighted by the number of
    examples the client trained on", Section 3.1).
    """

    client_id: int
    train_x: np.ndarray
    train_y: np.ndarray
    val_x: np.ndarray
    val_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def num_train_examples(self) -> int:
        """Number of local training sequences."""
        return int(self.train_x.shape[0])

    def train_batches(
        self, batch_size: int, rng: np.random.Generator
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Shuffled mini-batches covering one local epoch."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        n = self.num_train_examples
        order = rng.permutation(n)
        return [
            (self.train_x[order[i : i + batch_size]], self.train_y[order[i : i + batch_size]])
            for i in range(0, n, batch_size)
        ]


class FederatedDataset:
    """Lazily materialized federation of client datasets.

    Parameters
    ----------
    corpus:
        Deterministic sequence factory.
    val_fraction, test_fraction:
        Per-client split fractions; at least one training example is always
        retained.
    """

    def __init__(
        self,
        corpus: TopicMarkovCorpus,
        val_fraction: float = 0.1,
        test_fraction: float = 0.2,
    ):
        if not (0.0 <= val_fraction < 1.0 and 0.0 <= test_fraction < 1.0):
            raise ValueError("fractions must be in [0, 1)")
        if val_fraction + test_fraction >= 1.0:
            raise ValueError("val+test fractions must leave room for training data")
        self.corpus = corpus
        self.val_fraction = val_fraction
        self.test_fraction = test_fraction
        self._cache: dict[tuple[int, int], ClientDataset] = {}

    def client_dataset(self, client_id: int, n_examples: int) -> ClientDataset:
        """Materialize (and cache) one client's split dataset.

        ``n_examples`` comes from the device-population model, which is
        where the paper's slow-device/large-data correlation is planted.
        """
        if n_examples < 1:
            raise ValueError("n_examples must be at least 1")
        key = (client_id, n_examples)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        x, y = self.corpus.generate_sequences(client_id, n_examples)
        rng = child_rng(self.corpus.seed, "client-split", client_id)
        order = rng.permutation(n_examples)
        n_val = int(n_examples * self.val_fraction)
        n_test = int(n_examples * self.test_fraction)
        n_train = max(1, n_examples - n_val - n_test)
        idx_train = order[:n_train]
        idx_val = order[n_train : n_train + n_val]
        idx_test = order[n_train + n_val :]
        ds = ClientDataset(
            client_id=client_id,
            train_x=x[idx_train],
            train_y=y[idx_train],
            val_x=x[idx_val],
            val_y=y[idx_val],
            test_x=x[idx_test],
            test_y=y[idx_test],
        )
        self._cache[key] = ds
        return ds

    def evaluation_batch(
        self, client_ids: list[int], n_examples: list[int], max_per_client: int = 8
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pooled held-out test batch across many clients.

        Used to measure global test loss/perplexity the way the paper's
        server-side eval does.
        """
        xs, ys = [], []
        for cid, n in zip(client_ids, n_examples):
            ds = self.client_dataset(cid, n)
            take = min(max_per_client, ds.test_x.shape[0])
            if take > 0:
                xs.append(ds.test_x[:take])
                ys.append(ds.test_y[:take])
        if not xs:
            raise ValueError("no test examples available in the given clients")
        return np.concatenate(xs, axis=0), np.concatenate(ys, axis=0)

    def clear_cache(self) -> None:
        """Drop memoized client datasets."""
        self._cache.clear()
