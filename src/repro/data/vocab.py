"""Vocabulary for the synthetic next-word-prediction corpus.

Tokens are integers throughout the stack; the vocabulary only provides
human-readable pseudo-words (deterministic syllable strings) for demos and
examples.  Index 0 is reserved for the beginning-of-sequence marker.
"""

from __future__ import annotations

__all__ = ["BOS_ID", "Vocabulary"]

BOS_ID = 0

_ONSETS = ["b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"]
_NUCLEI = ["a", "e", "i", "o", "u"]
_CODAS = ["", "n", "r", "s", "t"]


class Vocabulary:
    """Fixed-size vocabulary with deterministic pseudo-word spellings.

    Parameters
    ----------
    size:
        Number of token types, including the BOS marker at index 0.
    """

    def __init__(self, size: int):
        if size < 2:
            raise ValueError("vocabulary needs at least BOS plus one word")
        self.size = size

    def word(self, token_id: int) -> str:
        """Readable spelling of a token id (stable across runs)."""
        if not (0 <= token_id < self.size):
            raise ValueError(f"token id {token_id} out of range [0, {self.size})")
        if token_id == BOS_ID:
            return "<s>"
        n = token_id - 1
        syllables = []
        while True:
            onset = _ONSETS[n % len(_ONSETS)]
            n //= len(_ONSETS)
            nucleus = _NUCLEI[n % len(_NUCLEI)]
            n //= len(_NUCLEI)
            coda = _CODAS[n % len(_CODAS)]
            n //= len(_CODAS)
            syllables.append(onset + nucleus + coda)
            if n == 0:
                break
        return "".join(syllables)

    def decode(self, token_ids) -> str:
        """Space-joined spelling of a token sequence."""
        return " ".join(self.word(int(t)) for t in token_ids)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"Vocabulary(size={self.size})"
