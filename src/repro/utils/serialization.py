"""Serialization of model updates for the simulated wire protocol.

PAPAYA clients upload serialized model updates in chunks (Section 6.1,
stage 4), and Aggregators deserialize them off an in-memory queue
(Section 6.3).  This module provides the byte-level encoding used by the
simulated transport: a small header (dtype tag, element count, CRC32) plus
the raw little-endian vector payload, and helpers to split/reassemble the
payload into fixed-size chunks.
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence

import numpy as np

__all__ = [
    "serialize_vector",
    "deserialize_vector",
    "chunk_payload",
    "reassemble_chunks",
    "SerializationError",
]

_MAGIC = b"PAPY"
_DTYPE_TAGS = {"<f4": 1, "<f8": 2, "<u4": 3, "<u8": 4, "<i4": 5, "<i8": 6}
_TAG_DTYPES = {v: k for k, v in _DTYPE_TAGS.items()}
_HEADER = struct.Struct("<4sBQI")  # magic, dtype tag, count, crc32


class SerializationError(ValueError):
    """Raised when a payload fails structural or integrity checks."""


def serialize_vector(vec: np.ndarray) -> bytes:
    """Encode a 1-D vector as ``header || raw little-endian data``.

    The header carries a CRC32 of the payload so the simulated transport
    (and the tamper-injection tests) can detect corruption exactly like a
    production wire format would.
    """
    if vec.ndim != 1:
        raise SerializationError(f"expected 1-D vector, got shape {vec.shape}")
    data = np.ascontiguousarray(vec).astype(vec.dtype.newbyteorder("<"), copy=False)
    key = data.dtype.str
    if key not in _DTYPE_TAGS:
        raise SerializationError(f"unsupported dtype {vec.dtype}")
    payload = data.tobytes()
    header = _HEADER.pack(_MAGIC, _DTYPE_TAGS[key], data.size, zlib.crc32(payload))
    return header + payload


def deserialize_vector(blob: bytes) -> np.ndarray:
    """Decode a payload produced by :func:`serialize_vector`.

    Raises
    ------
    SerializationError
        If the magic, dtype tag, length, or CRC32 do not check out.
    """
    if len(blob) < _HEADER.size:
        raise SerializationError("payload shorter than header")
    magic, tag, count, crc = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise SerializationError("bad magic")
    if tag not in _TAG_DTYPES:
        raise SerializationError(f"unknown dtype tag {tag}")
    dtype = np.dtype(_TAG_DTYPES[tag])
    payload = blob[_HEADER.size :]
    if len(payload) != count * dtype.itemsize:
        raise SerializationError("payload length mismatch")
    if zlib.crc32(payload) != crc:
        raise SerializationError("CRC mismatch: payload corrupted")
    return np.frombuffer(payload, dtype=dtype).copy()


def chunk_payload(blob: bytes, chunk_size: int) -> list[bytes]:
    """Split a payload into chunks of at most ``chunk_size`` bytes.

    Mirrors the client upload protocol: "the client uploads the model in
    chunks" (Section 6.1).  An empty payload yields one empty chunk so the
    receiver always observes at least one message.
    """
    if chunk_size <= 0:
        raise SerializationError("chunk_size must be positive")
    if not blob:
        return [b""]
    return [blob[i : i + chunk_size] for i in range(0, len(blob), chunk_size)]


def reassemble_chunks(chunks: Sequence[bytes]) -> bytes:
    """Concatenate chunks back into the original payload."""
    return b"".join(chunks)
