"""Small argument-validation helpers shared across the library.

Centralizing these keeps error messages consistent and the call sites
one-liners, in the spirit of scikit-learn's ``check_*`` utilities.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_vector",
]


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not isinstance(value, numbers.Real) or not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if not isinstance(value, numbers.Real) or value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not isinstance(value, numbers.Real) or not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Require ``low <= value <= high``; return it for chaining."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_vector(arr: np.ndarray, name: str, size: int | None = None) -> np.ndarray:
    """Require a 1-D ndarray (optionally of a given size); return it."""
    if not isinstance(arr, np.ndarray) or arr.ndim != 1:
        raise ValueError(f"{name} must be a 1-D ndarray")
    if size is not None and arr.size != size:
        raise ValueError(f"{name} must have size {size}, got {arr.size}")
    return arr
