"""Shared infrastructure: RNG streams, serialization, validation, logging."""

from repro.utils.logging import EventLog, EventRecord
from repro.utils.rng import child_rng, make_rng, spawn_rngs, stable_hash64
from repro.utils.serialization import (
    SerializationError,
    chunk_payload,
    deserialize_vector,
    reassemble_chunks,
    serialize_vector,
)
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_vector,
)

__all__ = [
    "EventLog",
    "EventRecord",
    "child_rng",
    "make_rng",
    "spawn_rngs",
    "stable_hash64",
    "SerializationError",
    "chunk_payload",
    "deserialize_vector",
    "reassemble_chunks",
    "serialize_vector",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_vector",
]
