"""Unified retry/backoff policies for control-plane timing decisions.

PAPAYA's control plane retries constantly — device check-in pacing,
selector pump intervals, task/shard re-placement after node death, fleet
sleep backoff — and before this module each site hard-coded its own
constants (``uniform(0.5, 1.5)`` jitter in the orchestrator pump, a
``0.5 + random()`` spread in the fleet scheduler, unconditional
re-placement in the coordinator).  :class:`BackoffPolicy` and
:class:`RetryPolicy` factor those decisions into one declarative,
string-configurable layer threaded through ``SystemConfig`` and
``FleetConfig``.

Policies are compact strings so they can live in frozen specs (the spec
layer freezes scalars, not nested objects)::

    "fixed"                               # constant base delay, no jitter
    "fixed,jitter=0.5"                    # base * uniform(0.5, 1.5)
    "exponential,base=10,cap=120"         # 10, 20, 40, 80, 120, 120, ...
    "always" / "never" / "max=5"          # retry policies
    "max=5,exponential,base=10,jitter=0.1"

**Bit-identity contract.**  The default policies reproduce the legacy
hard-coded delays *exactly*, drawing the same values from the same RNG
streams: ``delay`` consumes one ``rng.uniform(1-j, 1+j)`` scalar
(matching the orchestrator's historical ``uniform(0.5, 1.5)`` call) and
``delay_block`` consumes one ``rng.random(n)`` block (matching the fleet
scheduler's ``0.5 + random(n)`` spread).  A jitter of exactly ``0``
makes **no** RNG call at all, so jitter-free policies leave every
downstream stream untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["BackoffPolicy", "RetryPolicy"]

_BACKOFF_KINDS = ("fixed", "exponential")


def _parse_tokens(text: str, context: str) -> tuple[str | None, dict[str, str]]:
    """Split ``"kind,key=value,..."`` into the kind token and key/value pairs."""
    kind: str | None = None
    pairs: dict[str, str] = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" in token:
            key, _, value = token.partition("=")
            key, value = key.strip(), value.strip()
            if key in pairs:
                raise ValueError(f"{context}: duplicate {key!r} in {text!r}")
            pairs[key] = value
        else:
            if kind is not None:
                raise ValueError(
                    f"{context}: two kind tokens ({kind!r}, {token!r}) in {text!r}"
                )
            kind = token
    return kind, pairs


def _float_field(pairs: dict[str, str], key: str, context: str) -> float | None:
    if key not in pairs:
        return None
    try:
        return float(pairs.pop(key))
    except ValueError:
        raise ValueError(f"{context}: {key} must be a number") from None


@dataclass(frozen=True)
class BackoffPolicy:
    """How long to wait before attempt ``n`` (0-based), with seeded jitter.

    ``fixed`` waits ``base_s`` for every attempt; ``exponential`` waits
    ``min(base_s * factor**attempt, cap_s)``.  ``jitter=j`` multiplies
    the delay by ``uniform(1-j, 1+j)`` drawn from the caller's RNG
    (callers own their streams; the policy is stateless).
    """

    kind: str = "fixed"
    base_s: float = 1.0
    factor: float = 2.0
    cap_s: float = math.inf
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _BACKOFF_KINDS:
            raise ValueError(
                f"backoff kind must be one of {_BACKOFF_KINDS}, got {self.kind!r}"
            )
        if not (self.base_s >= 0.0):
            raise ValueError(f"backoff base must be >= 0, got {self.base_s}")
        if not (self.factor >= 1.0):
            raise ValueError(f"backoff factor must be >= 1, got {self.factor}")
        if not (self.cap_s > 0.0):
            raise ValueError(f"backoff cap must be > 0, got {self.cap_s}")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError(f"backoff jitter must be in [0, 1), got {self.jitter}")

    @classmethod
    def parse(cls, text: str, default_base: float = 1.0) -> "BackoffPolicy":
        """Parse ``"kind,base=...,factor=...,cap=...,jitter=..."``.

        ``default_base`` supplies ``base_s`` when the string omits
        ``base=`` — this is how ``SystemConfig`` keeps one timing knob
        (e.g. ``pump_interval_s``) as the base while the policy string
        only describes shape and jitter.
        """
        context = f"backoff policy {text!r}"
        kind, pairs = _parse_tokens(text, context)
        base = _float_field(pairs, "base", context)
        factor = _float_field(pairs, "factor", context)
        cap = _float_field(pairs, "cap", context)
        jitter = _float_field(pairs, "jitter", context)
        if pairs:
            raise ValueError(
                f"{context}: unknown key(s) {', '.join(sorted(pairs))}; "
                "use base/factor/cap/jitter"
            )
        try:
            return cls(
                kind=kind or "fixed",
                base_s=float(default_base) if base is None else base,
                factor=2.0 if factor is None else factor,
                cap_s=math.inf if cap is None else cap,
                jitter=0.0 if jitter is None else jitter,
            )
        except ValueError as exc:
            raise ValueError(f"{context}: {exc}") from None

    def to_string(self) -> str:
        """Canonical round-trippable policy string."""
        parts = [self.kind, f"base={self.base_s:g}"]
        if self.kind == "exponential":
            parts.append(f"factor={self.factor:g}")
        if math.isfinite(self.cap_s):
            parts.append(f"cap={self.cap_s:g}")
        if self.jitter:
            parts.append(f"jitter={self.jitter:g}")
        return ",".join(parts)

    def _raw(self, attempt: int) -> float:
        if self.kind == "fixed":
            return min(self.base_s, self.cap_s)
        return min(self.base_s * self.factor**attempt, self.cap_s)

    def delay(self, rng: np.random.Generator, attempt: int = 0) -> float:
        """One delay sample.  Consumes one ``uniform`` draw iff jittered."""
        raw = self._raw(attempt)
        if self.jitter == 0.0:
            return raw
        return raw * float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))

    def delay_block(
        self, n: int, rng: np.random.Generator, attempt: int = 0
    ) -> np.ndarray:
        """``n`` delay samples at once (the fleet scheduler's batched path).

        Consumes one ``rng.random(n)`` block iff jittered, reproducing
        the legacy ``base * (lo + random(n) * span)`` draws bit-exactly.
        """
        raw = self._raw(attempt)
        if self.jitter == 0.0:
            return np.full(n, raw)
        lo = 1.0 - self.jitter
        span = 2.0 * self.jitter
        return raw * (lo + rng.random(n) * span)


@dataclass(frozen=True)
class RetryPolicy:
    """Whether (and after how long) to retry a failed attempt.

    ``max_attempts=None`` retries forever; ``0`` never retries.
    ``backoff=None`` retries with zero added delay (the caller's own
    cadence — e.g. the coordinator's heartbeat sweep — paces attempts).
    """

    max_attempts: int | None = None
    backoff: BackoffPolicy | None = None

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 0:
            raise ValueError(f"max_attempts must be >= 0, got {self.max_attempts}")

    @classmethod
    def parse(cls, text: str, default_base: float = 1.0) -> "RetryPolicy":
        """Parse ``"always"``, ``"never"``, or ``"max=N[,<backoff tokens>]"``."""
        context = f"retry policy {text!r}"
        kind, pairs = _parse_tokens(text, context)
        max_attempts: int | None = None
        if "max" in pairs:
            try:
                max_attempts = int(pairs.pop("max"))
            except ValueError:
                raise ValueError(f"{context}: max must be an integer") from None
        if kind == "always":
            kind = None
        elif kind == "never":
            if max_attempts is not None:
                raise ValueError(f"{context}: 'never' excludes max=")
            max_attempts = 0
            kind = None
        backoff: BackoffPolicy | None = None
        if kind is not None or pairs:
            tokens = ([kind] if kind else []) + [f"{k}={v}" for k, v in pairs.items()]
            backoff = BackoffPolicy.parse(",".join(tokens), default_base=default_base)
        try:
            return cls(max_attempts=max_attempts, backoff=backoff)
        except ValueError as exc:
            raise ValueError(f"{context}: {exc}") from None

    def to_string(self) -> str:
        """Canonical round-trippable policy string."""
        if self.max_attempts == 0:
            return "never"
        head = "always" if self.max_attempts is None else f"max={self.max_attempts}"
        if self.backoff is None:
            return head
        return f"{head},{self.backoff.to_string()}"

    def should_retry(self, attempt: int) -> bool:
        """True when attempt number ``attempt`` (1-based count of failures) may retry."""
        return self.max_attempts is None or attempt <= self.max_attempts

    def retry_delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Extra delay before the next attempt (0 without a backoff policy)."""
        if self.backoff is None:
            return 0.0
        return self.backoff.delay(rng, attempt=max(0, attempt - 1))
