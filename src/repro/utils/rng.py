"""Deterministic, hierarchical random-number streams.

Every stochastic component in the reproduction (device population, data
generation, client training, dropout injection, secure-aggregation seeds)
draws from an independent, seeded stream so that experiments are exactly
repeatable and components can be re-seeded in isolation.

The scheme is a seed tree: a root :class:`numpy.random.SeedSequence` is
spawned into named children, so ``child_rng(seed, "population")`` and
``child_rng(seed, "data", 42)`` are independent streams that never collide
regardless of call order.
"""

from __future__ import annotations

import hashlib
import numpy as np

__all__ = ["make_rng", "child_rng", "stable_hash64", "spawn_rngs"]


def stable_hash64(*parts: object) -> int:
    """Hash arbitrary labels to a stable 64-bit integer.

    Python's builtin ``hash`` is salted per process, which would break
    run-to-run determinism, so we hash the ``repr`` of each part with
    SHA-256 instead.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest()[:8], "little")


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create the root generator for an experiment.

    Parameters
    ----------
    seed:
        Root seed. ``None`` draws entropy from the OS (non-reproducible;
        only useful for exploratory runs).
    """
    return np.random.default_rng(seed)


def child_rng(seed: int, *labels: object) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a label path.

    The same ``(seed, labels)`` pair always yields the same stream, and
    distinct label paths yield streams that are independent to the quality
    of PCG64 streams seeded from distinct SeedSequence entropy.

    Examples
    --------
    >>> r1 = child_rng(0, "population")
    >>> r2 = child_rng(0, "population")
    >>> float(r1.random()) == float(r2.random())
    True
    """
    entropy = (seed & 0xFFFFFFFFFFFFFFFF, stable_hash64(*labels))
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_rngs(seed: int, label: object, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators under one label, one per index."""
    return [child_rng(seed, label, i) for i in range(n)]
