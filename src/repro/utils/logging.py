"""Structured event logging for simulated system components.

Production PAPAYA emits telemetry from every Coordinator/Selector/Aggregator
interaction; the reproduction records the same events as in-memory structured
records so tests and the experiment harness can assert on system behaviour
(e.g. "no client was assigned to a task with zero demand") without parsing
text logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["EventRecord", "EventLog"]


@dataclass(frozen=True)
class EventRecord:
    """One structured telemetry event.

    Attributes
    ----------
    time:
        Simulated time at which the event occurred (seconds).
    component:
        Emitting component, e.g. ``"coordinator"`` or ``"aggregator:0"``.
    kind:
        Event type, e.g. ``"client_assigned"`` or ``"heartbeat_missed"``.
    detail:
        Free-form payload for assertions and debugging.
    """

    time: float
    component: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only in-memory event log with simple query helpers."""

    def __init__(self) -> None:
        self._records: list[EventRecord] = []

    def emit(self, time: float, component: str, kind: str, **detail: Any) -> None:
        """Append one event."""
        self._records.append(EventRecord(time, component, kind, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> list[EventRecord]:
        """All events with the given ``kind``, in emission order."""
        return [r for r in self._records if r.kind == kind]

    def from_component(self, component: str) -> list[EventRecord]:
        """All events emitted by ``component``, in emission order."""
        return [r for r in self._records if r.component == component]

    def where(self, predicate: Callable[[EventRecord], bool]) -> list[EventRecord]:
        """All events matching an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def count(self, kind: str) -> int:
        """Number of events of the given kind."""
        return sum(1 for r in self._records if r.kind == kind)

    def clear(self) -> None:
        """Drop all records (used between experiment repetitions)."""
        self._records.clear()
