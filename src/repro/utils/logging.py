"""Structured event logging for simulated system components.

Production PAPAYA emits telemetry from every Coordinator/Selector/Aggregator
interaction; the reproduction records the same events as in-memory structured
records so tests and the experiment harness can assert on system behaviour
(e.g. "no client was assigned to a task with zero demand") without parsing
text logs.

Two scale features keep the log usable on million-client runs:

* **bounded retention** — ``EventLog(max_records=N)`` keeps only the most
  recent ``N`` records in a ring while per-kind *tallies* stay exact
  (mirroring :class:`repro.sim.trace.BoundedMetricsTrace`'s
  retained-vs-exact split), so a fleet-scale run never grows its log
  without bound;
* **kind indexing** — :meth:`EventLog.of_kind` / :meth:`EventLog.count`
  read a per-kind index instead of scanning every record, so the
  assertion-heavy test suites and the chaos experiment stop paying O(n)
  per lookup.

:meth:`EventLog.to_jsonl` serializes the retained records as JSON lines —
the same export path the observability plane (:mod:`repro.obs`) uses for
spans, so structured events (``plane_fallback``, ``executor_fallback``,
``task_failover``, ``shard_replaced``, ``placement_retry``, ...) ride
along in run exports.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["EventRecord", "EventLog"]


def _json_default(value: Any) -> Any:
    """JSON fallback for event details (numpy scalars, sets, arrays)."""
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return item()
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy array
        return tolist()
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    return repr(value)


@dataclass(frozen=True)
class EventRecord:
    """One structured telemetry event.

    Attributes
    ----------
    time:
        Simulated time at which the event occurred (seconds).
    component:
        Emitting component, e.g. ``"coordinator"`` or ``"aggregator:0"``.
    kind:
        Event type, e.g. ``"client_assigned"`` or ``"heartbeat_missed"``.
    detail:
        Free-form payload for assertions and debugging.
    """

    time: float
    component: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able document of this event (detail keys flattened under
        ``detail`` so the envelope schema is stable)."""
        return {
            "time": self.time,
            "component": self.component,
            "kind": self.kind,
            "detail": dict(self.detail),
        }

    def to_json(self) -> str:
        """One JSON line; non-JSON detail values degrade to lists/repr."""
        return json.dumps(
            self.to_dict(), sort_keys=True, default=_json_default
        )


class EventLog:
    """In-memory event log with indexed queries and optional bounded retention.

    ``max_records=None`` (the default) is the historical append-only log:
    every record is retained and every query helper sees all of them.
    With ``max_records=N`` the log keeps a ring of the newest ``N``
    records — :meth:`count` still returns **exact** per-kind totals over
    the whole run (the tallies are never evicted), while ``of_kind`` /
    iteration / ``to_jsonl`` see only the retained window.
    """

    def __init__(self, max_records: int | None = None) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be at least 1 (or None)")
        self.max_records = max_records
        self._records: deque[EventRecord] = deque()
        #: retained records per kind (rings evict in lockstep with _records)
        self._by_kind: dict[str, deque[EventRecord]] = {}
        #: exact per-kind totals over the whole run (never decremented)
        self._kind_totals: dict[str, int] = {}
        self.evicted = 0

    def emit(self, time: float, component: str, kind: str, **detail: Any) -> None:
        """Append one event (evicting the oldest when over the bound)."""
        record = EventRecord(time, component, kind, detail)
        self._records.append(record)
        self._by_kind.setdefault(kind, deque()).append(record)
        self._kind_totals[kind] = self._kind_totals.get(kind, 0) + 1
        if self.max_records is not None and len(self._records) > self.max_records:
            oldest = self._records.popleft()
            self._by_kind[oldest.kind].popleft()
            self.evicted += 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> list[EventRecord]:
        """Retained events with the given ``kind``, in emission order.

        Indexed: O(matches), not a scan over the whole log.
        """
        return list(self._by_kind.get(kind, ()))

    def from_component(self, component: str) -> list[EventRecord]:
        """All retained events emitted by ``component``, in emission order."""
        return [r for r in self._records if r.component == component]

    def where(self, predicate: Callable[[EventRecord], bool]) -> list[EventRecord]:
        """All retained events matching an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def count(self, kind: str) -> int:
        """Exact number of events of the given kind over the whole run.

        With bounded retention this may exceed ``len(of_kind(kind))`` —
        the tally survives eviction, the records do not.
        """
        return self._kind_totals.get(kind, 0)

    def kind_totals(self) -> dict[str, int]:
        """Exact per-kind event totals (sorted by kind), eviction-proof."""
        return {k: self._kind_totals[k] for k in sorted(self._kind_totals)}

    def to_jsonl(self) -> str:
        """Retained records as JSON lines (one event per line).

        The same export envelope the observability plane uses for spans
        (:mod:`repro.obs.export`), so events and spans interleave into
        one trace file cleanly.
        """
        return "\n".join(r.to_json() for r in self._records)

    def clear(self) -> None:
        """Drop all records and tallies (used between experiment repetitions)."""
        self._records.clear()
        self._by_kind.clear()
        self._kind_totals.clear()
        self.evicted = 0
