"""Canonical experiment constants and scaling presets.

The paper's headline numbers come from ~100 M devices with concurrency up
to 2600 and aggregation goals up to 1300.  The harness regenerates every
figure at a configurable scale: ``PAPER`` mirrors the published operating
points (slow — minutes per figure), ``DEFAULT`` divides client counts by
10 (the shapes are scale-free), and ``SMOKE`` divides by ~40 for CI and
pytest-benchmark runs.

Scaling divides concurrency/goals but keeps the *ratios* the paper fixes:
30 % over-selection, K ≈ 8–10 % of concurrency for the headline async
configuration, timeout at 4 simulated minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Scale", "PAPER", "DEFAULT", "SMOKE",
           "OVER_SELECTION", "CLIENT_TIMEOUT_S", "MODEL_BYTES_20MB"]

OVER_SELECTION = 0.3          # Bonawitz et al. 2019, used throughout the paper
CLIENT_TIMEOUT_S = 240.0      # "we set the timeout to 4 minutes"
MODEL_BYTES_20MB = 20 * 1024 * 1024  # Figure 6's model size


@dataclass(frozen=True)
class Scale:
    """One scaling preset.

    Attributes
    ----------
    name:
        Preset label used in printed reports.
    base_concurrency:
        The paper's headline 1300, scaled.
    base_goal:
        The paper's headline K=100, scaled.
    concurrency_sweep:
        The Figure 3/8/9 sweep (paper: 130…2600), scaled.
    goal_sweep:
        The Figure 10 sweep (paper: 100…1300), scaled.
    population:
        Device-population size to simulate against.
    sim_hours:
        Default simulated-time horizon per run.
    critical_goal:
        ``K_c`` of the surrogate convergence model, scaled with the goal
        sweep so the large-cohort effect sits at the same *relative*
        position as in the paper (K_c ≈ 3× the headline K).
    """

    name: str
    base_concurrency: int
    base_goal: int
    concurrency_sweep: tuple[int, ...]
    goal_sweep: tuple[int, ...]
    population: int
    sim_hours: float
    critical_goal: float = 300.0

    @property
    def sim_seconds(self) -> float:
        """Horizon in simulated seconds."""
        return self.sim_hours * 3600.0


PAPER = Scale(
    name="paper",
    base_concurrency=1300,
    base_goal=100,
    concurrency_sweep=(130, 260, 650, 1300, 2600),
    goal_sweep=(100, 200, 400, 700, 1000, 1300),
    population=500_000,
    sim_hours=24.0,
    critical_goal=300.0,
)

DEFAULT = Scale(
    name="default",
    base_concurrency=130,
    base_goal=10,
    concurrency_sweep=(13, 26, 65, 130, 260),
    goal_sweep=(10, 20, 40, 70, 100, 130),
    population=50_000,
    sim_hours=8.0,
    critical_goal=30.0,
)

SMOKE = Scale(
    name="smoke",
    base_concurrency=32,
    base_goal=4,
    concurrency_sweep=(8, 16, 32, 64),
    goal_sweep=(4, 8, 16, 32),
    population=10_000,
    sim_hours=3.0,
    critical_goal=10.0,
)
