"""Performance experiments: the cohort-engine speedup operating curve.

The ``cohort`` experiment measures the batched cohort execution engine
(:class:`repro.core.cohort.CohortTrainer`) against the scalar per-client
path (:class:`repro.core.client_trainer.LocalTrainer`) on the real-
training workload behind the paper's convergence figures: the scaled-down
LSTM language model, clients drawn from the heterogeneous device
population (so cohorts carry realistic ragged example counts), one local
epoch of clipped SGD per client.  For every cohort size K it reports
scalar and batched wall-clock, the speedup, and the maximum per-client
delta divergence — which the equivalence guarantee keeps at 0.0.

Run / sweep it through the PR-1 harness layer::

    python -m repro.harness cohort
    python -m repro.harness sweep cohort --seeds 0..4 --json cohort.json

so before/after JSON reports of future engine changes land in the same
cache + CI-artifact pipeline as every figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.client_trainer import LocalTrainer
from repro.core.cohort import CohortRequest, CohortTrainer
from repro.data.federated import FederatedDataset
from repro.data.synthetic_text import CorpusSpec, TopicMarkovCorpus
from repro.harness import registry
from repro.harness.configs import Scale
from repro.harness.report import print_table
from repro.harness.runner import make_population
from repro.nn.model import LSTMLanguageModel, ModelConfig
from repro.utils.rng import child_rng

__all__ = ["CohortPoint", "CohortResult", "cohort_speedup", "print_cohort"]


@dataclass(frozen=True)
class CohortPoint:
    """One cohort-size operating point of the engine comparison."""

    cohort_size: int
    scalar_s: float
    batched_s: float
    speedup: float
    max_delta_diff: float
    max_loss_diff: float
    equivalent: bool  # within the 1e-8 differential bound


@dataclass(frozen=True)
class CohortResult:
    """Scalar-vs-batched training comparison across cohort sizes."""

    points: list[CohortPoint]
    clients_mean_examples: float
    batch_size: int
    local_epochs: int
    num_params: int


EQUIVALENCE_ATOL = 1e-8


def cohort_speedup(
    cohort_sizes: tuple[int, ...] = (4, 16, 32, 64),
    mean_examples: float = 40.0,
    batch_size: int = 8,
    local_epochs: int = 1,
    client_lr: float = 1.0,
    vocab_size: int = 24,
    repeats: int = 3,
    seed: int = 0,
) -> CohortResult:
    """Measure batched-vs-scalar cohort training on the real workload.

    Both engines train identical client sets from identical initial
    models; the scalar path is timed as the K sequential ``LocalTrainer``
    calls the simulator would otherwise make.
    """
    model_cfg = ModelConfig(vocab_size=vocab_size, embed_dim=8, hidden_dim=16)
    corpus = TopicMarkovCorpus(
        CorpusSpec(vocab_size=vocab_size, seq_len=10, volume_topic_coupling=0.8,
                   reference_examples=mean_examples),
        seed=seed,
    )
    dataset = FederatedDataset(corpus)
    # Same cap ratio as the table1 real-training population (max = 4x
    # mean): without it a single data-rich straggler serializes the tail
    # of every cohort and the comparison measures that client, not the
    # engine.
    pop = make_population(
        100_000, seed=seed, mean_examples=mean_examples,
        max_examples=int(mean_examples * 4),
    )
    base_model = LSTMLanguageModel(model_cfg, seed=seed).get_flat()
    rng = child_rng(seed, "cohort-perf")

    points: list[CohortPoint] = []
    for size in cohort_sizes:
        profiles = pop.sample_profiles(size, rng)
        requests = [
            CohortRequest(
                initial_model=base_model,
                dataset=dataset.client_dataset(p.device_id, p.n_examples),
                initial_version=0,
                participation=0,
            )
            for p in profiles
        ]
        scalar = LocalTrainer(
            model_cfg, lr=client_lr, batch_size=batch_size,
            epochs=local_epochs, seed=seed,
        )
        batched = CohortTrainer(
            model_cfg, lr=client_lr, batch_size=batch_size,
            epochs=local_epochs, seed=seed,
        )
        batched.train_cohort(requests[: min(2, size)])  # warm workspaces

        best_scalar = best_batched = float("inf")
        scalar_results = batched_results = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            scalar_results = [
                scalar.train(r.initial_model, r.dataset, r.initial_version,
                             r.participation)
                for r in requests
            ]
            best_scalar = min(best_scalar, time.perf_counter() - t0)
            t0 = time.perf_counter()
            batched_results = batched.train_cohort(requests)
            best_batched = min(best_batched, time.perf_counter() - t0)

        delta_diff = max(
            float(np.max(np.abs(a.delta - b.delta)))
            for a, b in zip(scalar_results, batched_results)
        )
        loss_diff = max(
            abs(a.train_loss - b.train_loss)
            for a, b in zip(scalar_results, batched_results)
        )
        points.append(
            CohortPoint(
                cohort_size=size,
                scalar_s=best_scalar,
                batched_s=best_batched,
                speedup=best_scalar / best_batched if best_batched > 0 else float("inf"),
                max_delta_diff=delta_diff,
                max_loss_diff=loss_diff,
                equivalent=(delta_diff <= EQUIVALENCE_ATOL
                            and loss_diff <= EQUIVALENCE_ATOL),
            )
        )
    return CohortResult(
        points=points,
        clients_mean_examples=mean_examples,
        batch_size=batch_size,
        local_epochs=local_epochs,
        num_params=scalar.num_params,
    )


def print_cohort(res: CohortResult) -> None:
    """Render the cohort-engine comparison as text."""
    print_table(
        ["K", "scalar (ms)", "batched (ms)", "speedup", "max |Δdelta|", "equivalent"],
        [
            [p.cohort_size, p.scalar_s * 1e3, p.batched_s * 1e3, p.speedup,
             p.max_delta_diff, p.equivalent]
            for p in res.points
        ],
        title=(
            f"Cohort engine — batched vs scalar local training "
            f"({res.num_params} params, B={res.batch_size}, "
            f"E={res.local_epochs}, mean {res.clients_mean_examples:.0f} "
            f"examples/client)"
        ),
    )


def _run_cohort(scale: Scale, seed: int, **params) -> CohortResult:
    return cohort_speedup(seed=seed, **params)


registry.register(
    registry.ExperimentSpec(
        "cohort",
        _run_cohort,
        print_cohort,
        CohortResult,
        description="batched cohort engine vs scalar training: speedup + equivalence",
        default_grid={},
        uses_scale=False,
    ),
    replace=True,
)
