"""Performance experiments: the engine/data-plane speedup operating curves.

The ``cohort`` experiment measures the batched cohort execution engine
(:class:`repro.core.cohort.CohortTrainer`) against the scalar per-client
path (:class:`repro.core.client_trainer.LocalTrainer`) on the real-
training workload behind the paper's convergence figures: the scaled-down
LSTM language model, clients drawn from the heterogeneous device
population (so cohorts carry realistic ragged example counts), one local
epoch of clipped SGD per client.  For every cohort size K it reports
scalar and batched wall-clock, the speedup, and the maximum per-client
delta divergence — which the equivalence guarantee keeps at 0.0.

The ``secagg`` experiment does the same for the secure-aggregation
server+TSA *data plane*: for each (cohort size K, vector length ℓ) it
drives one set of client submissions through the scalar per-client
protocol path (sequential ``submit`` calls plus the pre-vectorization
sequential weighted finalize, kept here as a reference replica) and
through the block path (``submit_block`` + fused weighted finalize),
reporting both wall clocks, the speedup, and the decoded aggregates' max
divergence — exactly 0 by the bit-identity contract.  The DH handshake
(leg minting and completion) is control-plane work amortized at check-in
time by :class:`repro.system.secure.LegPool` /
``TrustedSecureAggregator.complete_leg``; it is identical in both arms,
runs outside the timed segment, and is reported separately per point.

The ``shards`` experiment measures the *scale-out* axis: the sharded
hierarchical aggregation plane
(:class:`repro.core.sharding.ShardedFedBuffAggregator`) against the
single :class:`~repro.core.fedbuff.FedBuffAggregator` on identical
arrival sequences.  Unlike the cohort/secagg experiments — which
vectorize in place and time one process doing less work — sharding
spreads the *same* folds over ``S`` parallel shard cores, so the plane's
latency is a critical path, not a single timer: every admission+fold's
measured wall-clock cost is charged to its shard's lane and every root
merge + server step barriers across all lanes
(:class:`~repro.core.sharding.AggregationPlaneClock`).  For each (shard
count × population size) point it reports the single aggregator's
sequential wall-clock, the sharded plane's critical-path latency, the
speedup, the per-shard load skew (max lifetime folds over the ideal even
share), and the final-model max divergence — bounded by float64-rounding
reassociation surviving the float32 state cast (the differential suite,
``tests/test_sharded_equivalence.py``, pins the tight per-step bound).

Next to that *modeled* critical path, each point also drives the same
arrival sequence through the **process executor**
(:class:`repro.core.parallel.ProcessShardedFedBuffAggregator`): shard
folds on real worker processes over shared-memory slabs, timed as plain
wall-clock on this machine.  The measured speedup and the modeled−measured
gap are first-class output columns — the gap is exactly what the model
abstracts away (dispatch overhead, memory bandwidth, core count; on a
single-core runner the measured speedup is ~1x and the whole modeled
speedup shows up as gap).  ``process_identical`` pins the executor's
bit-identity contract point by point.

The ``secure_shards`` experiment composes the two scale axes the paper
runs together: buffered asynchronous **secure** aggregation sharded
across ``S`` shard TSAs under one trusted root reducer
(:class:`repro.system.secure_sharding.SecureShardedAggregator`).  For
each (shard count × aggregation goal × vector length) point it drives
identical arrival sequences through the single secure plane, the inline
sharded plane (whose :class:`~repro.core.sharding.AggregationPlaneClock`
yields the modeled lane critical path), and the process executor
(:class:`repro.system.secure_sharding.ProcessSecureShardedAggregator` —
each shard's full secure pipeline, modexps included, on its own worker),
reporting the modeled and the **measured** wall-clock speedups over the
single plane, per-shard load skew, and two exactness columns the secure
contract pins with ``==`` rather than a tolerance: final states and step
structure bit-identical, boundary-byte meters equal across all three
arms.

The ``million`` experiment measures the *population* axis: the columnar
struct-of-arrays fleet (:class:`repro.sim.population
.ColumnarDevicePopulation`) driven by the batched tick loop
(:class:`repro.sim.fleet.FleetSimulation`) over the calendar-queue
event engine, sweeping the fleet from 10k to 1M devices.  For each
population size it reports wall-clock, events fired, events/sec,
µs/event, peak RSS, the columns' numpy footprint, and the bounded
trace's record count; the headline is *flatness* — the max/min ratio of
per-event cost across the sweep, ~1 when cost per event is independent
of fleet size.

Run / sweep them through the PR-1 harness layer::

    python -m repro.harness cohort
    python -m repro.harness secagg
    python -m repro.harness shards
    python -m repro.harness secure_shards
    python -m repro.harness million
    python -m repro.harness sweep secagg --seeds 0..2 --json secagg.json
    python -m repro.harness sweep shards --seeds 0..2 --json shards.json
    python -m repro.harness sweep secure_shards --json secure-shards.json
    python -m repro.harness sweep million --json million.json

so before/after JSON reports of future engine changes land in the same
cache + CI-artifact pipeline as every figure.
"""

from __future__ import annotations

import os
import resource
import time
from dataclasses import dataclass

import numpy as np

from repro.core.client_trainer import LocalTrainer
from repro.core.cohort import CohortRequest, CohortTrainer
from repro.core.fedbuff import FedBuffAggregator
from repro.core.parallel import ProcessShardedFedBuffAggregator, ShardWorkerPool
from repro.core.server_opt import FedAdam
from repro.core.sharding import AggregationPlaneClock, ShardedFedBuffAggregator
from repro.core.state import GlobalModelState
from repro.core.types import TrainingResult
from repro.data.federated import FederatedDataset
from repro.data.synthetic_text import CorpusSpec, TopicMarkovCorpus
from repro.api import PopulationSpec, build_population
from repro.harness import registry
from repro.harness.configs import Scale
from repro.harness.report import print_table
from repro.nn.model import LSTMLanguageModel, ModelConfig
from repro.sim.fleet import FleetConfig, FleetSimulation
from repro.sim.trace import BoundedMetricsTrace
from repro.secagg.attestation import SigningAuthority
from repro.secagg.client import SecAggClient
from repro.secagg.fixedpoint import FixedPointCodec
from repro.secagg.groups import PowerOfTwoGroup
from repro.secagg.prng import expand_mask
from repro.secagg.server import SecAggServer
from repro.secagg.tsa import TrustedSecureAggregator
from repro.system.secure import SecureBufferedAggregator
from repro.system.secure_sharding import (
    ProcessSecureShardedAggregator,
    SecureShardedAggregator,
)
from repro.utils.rng import child_rng

__all__ = [
    "CohortPoint",
    "CohortResult",
    "cohort_speedup",
    "print_cohort",
    "SecAggPoint",
    "SecAggResult",
    "secagg_speedup",
    "print_secagg",
    "ShardPoint",
    "ShardsResult",
    "shards_speedup",
    "print_shards",
    "SecureShardPoint",
    "SecureShardsResult",
    "secure_shards_speedup",
    "print_secure_shards",
]


@dataclass(frozen=True)
class CohortPoint:
    """One cohort-size operating point of the engine comparison."""

    cohort_size: int
    scalar_s: float
    batched_s: float
    speedup: float
    max_delta_diff: float
    max_loss_diff: float
    equivalent: bool  # within the 1e-8 differential bound


@dataclass(frozen=True)
class CohortResult:
    """Scalar-vs-batched training comparison across cohort sizes."""

    points: list[CohortPoint]
    clients_mean_examples: float
    batch_size: int
    local_epochs: int
    num_params: int


EQUIVALENCE_ATOL = 1e-8


def cohort_speedup(
    cohort_sizes: tuple[int, ...] = (4, 16, 32, 64),
    mean_examples: float = 40.0,
    batch_size: int = 8,
    local_epochs: int = 1,
    client_lr: float = 1.0,
    vocab_size: int = 24,
    repeats: int = 3,
    seed: int = 0,
) -> CohortResult:
    """Measure batched-vs-scalar cohort training on the real workload.

    Both engines train identical client sets from identical initial
    models; the scalar path is timed as the K sequential ``LocalTrainer``
    calls the simulator would otherwise make.
    """
    model_cfg = ModelConfig(vocab_size=vocab_size, embed_dim=8, hidden_dim=16)
    corpus = TopicMarkovCorpus(
        CorpusSpec(vocab_size=vocab_size, seq_len=10, volume_topic_coupling=0.8,
                   reference_examples=mean_examples),
        seed=seed,
    )
    dataset = FederatedDataset(corpus)
    # Same cap ratio as the table1 real-training population (max = 4x
    # mean): without it a single data-rich straggler serializes the tail
    # of every cohort and the comparison measures that client, not the
    # engine.
    pop = build_population(
        PopulationSpec(
            n_devices=100_000,
            seed=seed,
            overrides={
                "mean_examples": mean_examples,
                "max_examples": int(mean_examples * 4),
            },
        )
    )
    base_model = LSTMLanguageModel(model_cfg, seed=seed).get_flat()
    rng = child_rng(seed, "cohort-perf")

    points: list[CohortPoint] = []
    for size in cohort_sizes:
        profiles = pop.sample_profiles(size, rng)
        requests = [
            CohortRequest(
                initial_model=base_model,
                dataset=dataset.client_dataset(p.device_id, p.n_examples),
                initial_version=0,
                participation=0,
            )
            for p in profiles
        ]
        scalar = LocalTrainer(
            model_cfg, lr=client_lr, batch_size=batch_size,
            epochs=local_epochs, seed=seed,
        )
        batched = CohortTrainer(
            model_cfg, lr=client_lr, batch_size=batch_size,
            epochs=local_epochs, seed=seed,
        )
        batched.train_cohort(requests[: min(2, size)])  # warm workspaces

        best_scalar = best_batched = float("inf")
        scalar_results = batched_results = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            scalar_results = [
                scalar.train(r.initial_model, r.dataset, r.initial_version,
                             r.participation)
                for r in requests
            ]
            best_scalar = min(best_scalar, time.perf_counter() - t0)
            t0 = time.perf_counter()
            batched_results = batched.train_cohort(requests)
            best_batched = min(best_batched, time.perf_counter() - t0)

        delta_diff = max(
            float(np.max(np.abs(a.delta - b.delta)))
            for a, b in zip(scalar_results, batched_results)
        )
        loss_diff = max(
            abs(a.train_loss - b.train_loss)
            for a, b in zip(scalar_results, batched_results)
        )
        points.append(
            CohortPoint(
                cohort_size=size,
                scalar_s=best_scalar,
                batched_s=best_batched,
                speedup=best_scalar / best_batched if best_batched > 0 else float("inf"),
                max_delta_diff=delta_diff,
                max_loss_diff=loss_diff,
                equivalent=(delta_diff <= EQUIVALENCE_ATOL
                            and loss_diff <= EQUIVALENCE_ATOL),
            )
        )
    return CohortResult(
        points=points,
        clients_mean_examples=mean_examples,
        batch_size=batch_size,
        local_epochs=local_epochs,
        num_params=scalar.num_params,
    )


def print_cohort(res: CohortResult) -> None:
    """Render the cohort-engine comparison as text."""
    print_table(
        ["K", "scalar (ms)", "batched (ms)", "speedup", "max |Δdelta|", "equivalent"],
        [
            [p.cohort_size, p.scalar_s * 1e3, p.batched_s * 1e3, p.speedup,
             p.max_delta_diff, p.equivalent]
            for p in res.points
        ],
        title=(
            f"Cohort engine — batched vs scalar local training "
            f"({res.num_params} params, B={res.batch_size}, "
            f"E={res.local_epochs}, mean {res.clients_mean_examples:.0f} "
            f"examples/client)"
        ),
    )


def _run_cohort(scale: Scale, seed: int, **params) -> CohortResult:
    return cohort_speedup(seed=seed, **params)


registry.register(
    registry.ExperimentSpec(
        "cohort",
        _run_cohort,
        print_cohort,
        CohortResult,
        description="batched cohort engine vs scalar training: speedup + equivalence",
        default_grid={},
        uses_scale=False,
    ),
    replace=True,
)


# ---------------------------------------------------------------------------
# Secure-aggregation data plane: scalar vs block server+TSA wall clock
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SecAggPoint:
    """One (cohort size, vector length) operating point of the comparison."""

    cohort_size: int
    vector_length: int
    scalar_s: float  # sequential server+TSA data plane (best-of)
    block_s: float  # vectorized block data plane (best-of)
    speedup: float
    handshake_s: float  # one client's DH completion, off the timed path
    max_divergence: float  # |block - scalar| over decoded aggregates
    bit_identical: bool  # aggregates AND release vectors exactly equal
    boundary_match: bool  # TSA boundary meters equal between arms


@dataclass(frozen=True)
class SecAggResult:
    """Scalar-vs-block secure-aggregation comparison across K × ℓ."""

    points: list[SecAggPoint]
    group_bits: int
    fp_scale: float
    clip_value: float
    repeats: int


def _scalar_reference_finalize(server, seeds_by_leg, weights, clip_value):
    """The pre-vectorization sequential weighted finalize, replicated.

    This is the scalar baseline's data plane, kept verbatim so the sweep
    keeps measuring the protocol the block path replaced: the server
    scales and folds each accepted masked update one at a time, and the
    trusted party re-expands every seed and folds ``w·m`` one leg at a
    time.  Returns the decoded aggregate and the unmask vector (the
    latter is pinned bit-equal to the TSA's vectorized release).
    """
    group = server.codec.group
    length = server.tsa.vector_length
    masked = group.zeros(length)
    total_w = 0
    for sub in server.accepted_submissions:
        w = weights.get(sub.leg_index, 0)
        if w:
            masked = group.add(masked, group.scale(sub.masked_update, w))
            total_w += abs(w)
    unmask = group.zeros(length)
    for leg_index, w in weights.items():
        if w:
            mask = expand_mask(seeds_by_leg[leg_index], length, group)
            unmask = group.add(unmask, group.scale(mask, w))
    aggregate = server.codec.decode_sum(
        group.sub(masked, unmask), max(total_w, 1), clip_value
    )
    return aggregate, unmask


def secagg_speedup(
    cohort_sizes: tuple[int, ...] = (8, 16, 32, 64),
    vector_lengths: tuple[int, ...] = (25_000, 200_000),
    repeats: int = 4,
    group_bits: int = 64,
    fp_scale: float = 2**16,
    clip_value: float = 1.0,
    seed: int = 0,
) -> SecAggResult:
    """Measure block-vs-scalar secure aggregation on the server+TSA path.

    Both arms process identical client submissions (same seeds, same DH
    legs — the arms' TSAs draw from identical randomness streams) and are
    pinned bit-identical: decoded aggregates, release vectors, and
    boundary byte meters must agree exactly.  Each repeat re-keys the
    arms with ``begin_round`` and fresh legs/submissions, so the block
    arm is measured in its steady state (row caches warm across epochs,
    exactly as :class:`repro.system.secure.SecureBufferedAggregator`
    runs it).
    """
    group = PowerOfTwoGroup(group_bits)
    codec = FixedPointCodec(group, scale=fp_scale, clip_value=clip_value)
    authority = SigningAuthority()
    rng = child_rng(seed, "secagg-perf")

    points: list[SecAggPoint] = []
    for length in vector_lengths:
        arms = {}
        servers = {}
        for arm in ("scalar", "block"):
            # Identical rng streams => identical legs: one set of client
            # submissions opens against either arm.  Arms and servers are
            # long-lived across cohort sizes and repeats (re-keyed with
            # begin_round), so the block arm is measured in its warm
            # steady state, exactly as the system layer runs it.
            arms[arm] = TrustedSecureAggregator(
                group,
                length,
                threshold=1,  # the sweep releases after exactly K submits
                authority=authority,
                rng=child_rng(seed, "secagg-perf-tsa", length),
                cache_masks=(arm == "block"),
            )
            servers[arm] = SecAggServer(
                arms[arm], codec, initial_legs=max(cohort_sizes)
            )
        for size in cohort_sizes:
            updates = rng.uniform(-1.0, 1.0, size=(size, length))
            weights = {i: (i % 7) + 1 for i in range(size)}
            best_scalar = best_block = best_handshake = float("inf")
            agg_scalar = agg_block = None
            bit_identical = True
            for _ in range(max(1, repeats)):
                for arm in arms.values():
                    arm.begin_round()
                for server in servers.values():
                    server.begin_round()
                legs = [servers["scalar"].assign_leg() for _ in range(size)]
                block_legs = [servers["block"].assign_leg() for _ in range(size)]
                assert [leg.index for leg in legs] == [
                    leg.index for leg in block_legs
                ]
                submissions = []
                seeds_by_leg = {}
                weight_map = {}
                for i in range(size):
                    client = SecAggClient(
                        client_id=i,
                        codec=codec,
                        authority=authority,
                        expected_binary_hash=arms["scalar"].binary_hash,
                        expected_params_hash=arms["scalar"].params_hash,
                        rng=child_rng(seed, "secagg-perf-client", length, i),
                    )
                    sub = client.participate(updates[i], legs[i])
                    submissions.append(sub)
                    seeds_by_leg[sub.leg_index] = client.last_seed
                    weight_map[sub.leg_index] = weights[i]
                # Control plane, off the timed path: forward every
                # completing message at check-in (amortized DH legs).
                t0 = time.perf_counter()
                for sub in submissions:
                    for server in servers.values():
                        server.complete_checkin(sub)
                # 2 arms x K clients completed above -> per-client cost.
                best_handshake = min(
                    best_handshake, (time.perf_counter() - t0) / (2 * size)
                )

                t0 = time.perf_counter()
                for sub in submissions:
                    if not servers["scalar"].submit(sub):
                        raise RuntimeError("scalar arm rejected a submission")
                agg_scalar, ref_unmask = _scalar_reference_finalize(
                    servers["scalar"], seeds_by_leg, weight_map, clip_value
                )
                best_scalar = min(best_scalar, time.perf_counter() - t0)

                t0 = time.perf_counter()
                flags = servers["block"].submit_block(submissions)
                agg_block = servers["block"].finalize(
                    weights=weight_map, max_abs=clip_value
                )
                best_block = min(best_block, time.perf_counter() - t0)
                if not all(flags):
                    raise RuntimeError("block arm rejected a submission")

                # Pin the vectorized release against the sequential one
                # (untimed; also keeps the arms' boundary meters aligned).
                released = arms["scalar"].release_unmask(
                    {k: v for k, v in weight_map.items() if v}
                )
                bit_identical = bit_identical and np.array_equal(
                    released, ref_unmask
                )
            bit_identical = bit_identical and np.array_equal(agg_scalar, agg_block)
            divergence = float(np.max(np.abs(agg_block - agg_scalar)))
            points.append(
                SecAggPoint(
                    cohort_size=size,
                    vector_length=length,
                    scalar_s=best_scalar,
                    block_s=best_block,
                    speedup=best_scalar / best_block if best_block > 0 else float("inf"),
                    handshake_s=best_handshake,
                    max_divergence=divergence,
                    bit_identical=bool(bit_identical),
                    boundary_match=(
                        arms["scalar"].boundary_bytes_in
                        == arms["block"].boundary_bytes_in
                        and arms["scalar"].boundary_bytes_out
                        == arms["block"].boundary_bytes_out
                    ),
                )
            )
    return SecAggResult(
        points=points,
        group_bits=group_bits,
        fp_scale=fp_scale,
        clip_value=clip_value,
        repeats=repeats,
    )


def print_secagg(res: SecAggResult) -> None:
    """Render the secagg data-plane comparison as text."""
    print_table(
        [
            "K",
            "len",
            "scalar (ms)",
            "block (ms)",
            "speedup",
            "handshake/client (ms)",
            "max |div|",
            "bit-identical",
            "boundary ok",
        ],
        [
            [
                p.cohort_size,
                p.vector_length,
                p.scalar_s * 1e3,
                p.block_s * 1e3,
                p.speedup,
                p.handshake_s * 1e3,
                p.max_divergence,
                p.bit_identical,
                p.boundary_match,
            ]
            for p in res.points
        ],
        title=(
            f"SecAgg data plane — block vs scalar server+TSA wall clock "
            f"(Z_2^{res.group_bits}, scale 2^{int(np.log2(res.fp_scale))}, "
            f"best of {res.repeats})"
        ),
    )


def _run_secagg(scale: Scale, seed: int, **params) -> SecAggResult:
    return secagg_speedup(seed=seed, **params)


registry.register(
    registry.ExperimentSpec(
        "secagg",
        _run_secagg,
        print_secagg,
        SecAggResult,
        description=(
            "secure-aggregation block vs scalar data plane: speedup + bit-identity"
        ),
        default_grid={},
        uses_scale=False,
    ),
    replace=True,
)


# ---------------------------------------------------------------------------
# Sharded aggregation plane: critical-path latency vs the single aggregator
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardPoint:
    """One (shard count, population size) operating point."""

    num_shards: int
    routing: str
    population: int     # distinct clients the arrival stream draws from
    arrivals: int       # updates driven through both planes
    single_s: float     # single-aggregator sequential wall clock (best-of)
    sharded_s: float    # sharded plane critical-path latency (best-of)
    speedup: float      # modeled: single_s / sharded_s
    load_skew: float    # max shard lifetime folds / ideal even share
    max_divergence: float  # |sharded - single| over the final model state
    equivalent: bool    # within SHARD_EQUIV_ATOL, same step structure
    process_s: float    # process-executor measured wall clock (best-of)
    measured_speedup: float  # single_s / process_s, on this machine
    speedup_gap: float  # modeled speedup − measured speedup
    process_identical: bool  # process state bit-equal to inline sharded state
    process_fallbacks: int   # executor fallbacks across the repeats (0 = clean)


@dataclass(frozen=True)
class ShardsResult:
    """Single-vs-sharded aggregation plane across S × population."""

    points: list[ShardPoint]
    vector_length: int
    goal: int
    routing: str
    repeats: int
    cpu_count: int      # cores available to the measured process arm


# The sharded merge only reassociates the single plane's float64 folds
# (~1e-16 relative per step), but each server step casts the averaged
# delta to the float32 model state, where a reassociation that lands on
# a rounding boundary surfaces as one float32 ulp (~1e-7 for O(1)
# values).  1e-6 cleanly separates that from any real divergence; the
# differential suite pins the tight per-step float64 bound.
SHARD_EQUIV_ATOL = 1e-6


def _arrival_stream(population: int, arrivals: int, vector_length: int, rng):
    """Client-id sequence (waves of unique ids) + their training results."""
    ids: list[int] = []
    while len(ids) < arrivals:
        wave = rng.permutation(population)[: arrivals - len(ids)]
        ids.extend(int(i) for i in wave)
    return [
        TrainingResult(
            client_id=cid,
            delta=rng.standard_normal(vector_length).astype(np.float32),
            num_examples=int(rng.integers(1, 50)),
            train_loss=float(rng.random()),
            initial_version=0,
        )
        for cid in ids
    ]


def _drive_single(results, vector_length, goal, seed):
    """Sequential single-aggregator drive; returns (data-plane seconds, agg).

    Only the aggregation path (admission + fold + step) is timed — the
    per-arrival ``register_download`` model-copy is selection-time
    control plane, excluded from both arms identically.
    """
    state = GlobalModelState(
        child_rng(seed, "shards-init").standard_normal(vector_length).astype(np.float32),
        FedAdam(lr=0.1),
    )
    agg = FedBuffAggregator(state, goal=goal)
    elapsed = 0.0
    for r in results:
        agg.register_download(r.client_id)
        arrival = TrainingResult(r.client_id, r.delta, r.num_examples,
                                 r.train_loss, agg.version)
        t0 = time.perf_counter()
        agg.receive_update(arrival)
        elapsed += time.perf_counter() - t0
    return elapsed, agg


def _drive_sharded(results, vector_length, goal, seed, num_shards, routing):
    """Sharded drive; returns (critical-path seconds, agg, clock)."""
    state = GlobalModelState(
        child_rng(seed, "shards-init").standard_normal(vector_length).astype(np.float32),
        FedAdam(lr=0.1),
    )
    clock = AggregationPlaneClock(num_shards)
    agg = ShardedFedBuffAggregator(
        state, goal=goal, num_shards=num_shards, routing=routing, clock=clock
    )
    for r in results:
        agg.register_download(r.client_id)
        arrival = TrainingResult(r.client_id, r.delta, r.num_examples,
                                 r.train_loss, agg.version)
        agg.receive_update(arrival)
    return clock.elapsed, agg, clock


def _drive_process(results, vector_length, goal, seed, num_shards, routing, pool):
    """Process-executor drive; returns (measured wall seconds, agg).

    Same timing discipline as :func:`_drive_single` — admission + fold +
    step per arrival, ``register_download`` excluded — plus one final
    ``drain()`` barrier so dispatched folds of the trailing incomplete
    buffer are paid for inside the measurement.  Unlike the modeled arm
    this is real elapsed time on this machine's cores.
    """
    state = GlobalModelState(
        child_rng(seed, "shards-init").standard_normal(vector_length).astype(np.float32),
        FedAdam(lr=0.1),
    )
    agg = ProcessShardedFedBuffAggregator(
        state, goal=goal, num_shards=num_shards, routing=routing, pool=pool
    )
    elapsed = 0.0
    for r in results:
        agg.register_download(r.client_id)
        arrival = TrainingResult(r.client_id, r.delta, r.num_examples,
                                 r.train_loss, agg.version)
        t0 = time.perf_counter()
        agg.receive_update(arrival)
        elapsed += time.perf_counter() - t0
    t0 = time.perf_counter()
    agg.drain()
    elapsed += time.perf_counter() - t0
    return elapsed, agg


def shards_speedup(
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    populations: tuple[int, ...] = (192, 4096),
    arrivals: int = 512,
    vector_length: int = 50_000,
    goal: int = 128,
    routing: str = "hash",
    repeats: int = 3,
    seed: int = 0,
) -> ShardsResult:
    """Measure the sharded aggregation plane against the single aggregator.

    Both planes consume *identical* arrival sequences (same deltas, same
    example counts, same order; each client registers immediately before
    its upload at the plane's current version, so admission weights are
    identical too).  The single arm's cost is its sequential data-plane
    wall clock; the sharded arm's cost is the
    :class:`~repro.core.sharding.AggregationPlaneClock` critical path —
    measured per-fold costs on ``S`` parallel lanes, root merges
    barriering across them.  Divergence compares the final float32 model
    states; step structure (count, versions) must match exactly.

    The process arm re-drives each point on real worker processes
    (shared across a point's repeats — spawn cost is pool setup, not
    steady state) and must reproduce the inline sharded plane's final
    float32 state *bit-for-bit* (``process_identical``); its measured
    speedup sits next to the modeled one with the gap as its own column.
    """
    points: list[ShardPoint] = []
    for population in populations:
        stream_rng = child_rng(seed, "shards-stream", population)
        results = _arrival_stream(population, arrivals, vector_length, stream_rng)
        best_single = float("inf")
        single_agg = None
        for _ in range(max(1, repeats)):
            single_s, single_agg = _drive_single(
                results, vector_length, goal, seed
            )
            best_single = min(best_single, single_s)
        for num_shards in shard_counts:
            best_sharded = float("inf")
            sharded_agg = None
            for _ in range(max(1, repeats)):
                sharded_s, sharded_agg, _ = _drive_sharded(
                    results, vector_length, goal, seed, num_shards, routing
                )
                best_sharded = min(best_sharded, sharded_s)
            best_process = float("inf")
            process_fallbacks = 0
            process_identical = True
            with ShardWorkerPool(
                num_shards=num_shards,
                vector_length=vector_length,
                slots=2 * goal,
            ) as pool:
                for _ in range(max(1, repeats)):
                    shared = pool if pool.healthy and not pool.closed else None
                    process_s, process_agg = _drive_process(
                        results, vector_length, goal, seed, num_shards,
                        routing, shared,
                    )
                    best_process = min(best_process, process_s)
                    process_fallbacks += process_agg.executor_fallbacks
                    process_identical = process_identical and bool(
                        np.array_equal(
                            process_agg.state.current(),
                            sharded_agg.state.current(),
                        )
                        and len(process_agg.step_history)
                        == len(sharded_agg.step_history)
                    )
                    if process_agg.pool_active:
                        # Leave the shared pool empty for the next repeat
                        # (frees epoch slots, zeroes the partial slab).
                        process_agg.drop_buffer_and_inflight()
                    process_agg.close()
            divergence = float(
                np.max(np.abs(single_agg.state.current()
                              - sharded_agg.state.current()))
            )
            same_steps = (
                len(single_agg.step_history) == len(sharded_agg.step_history)
                and all(
                    a.version == b.version and a.num_updates == b.num_updates
                    for a, b in zip(
                        single_agg.step_history, sharded_agg.step_history
                    )
                )
            )
            loads = sharded_agg.shard_loads()
            ideal = arrivals / num_shards
            speedup = (
                best_single / best_sharded
                if best_sharded > 0 else float("inf")
            )
            measured = (
                best_single / best_process
                if best_process > 0 else float("inf")
            )
            points.append(
                ShardPoint(
                    num_shards=num_shards,
                    routing=routing,
                    population=population,
                    arrivals=arrivals,
                    single_s=best_single,
                    sharded_s=best_sharded,
                    speedup=speedup,
                    load_skew=max(loads) / ideal,
                    max_divergence=divergence,
                    equivalent=bool(
                        same_steps and divergence <= SHARD_EQUIV_ATOL
                    ),
                    process_s=best_process,
                    measured_speedup=measured,
                    speedup_gap=speedup - measured,
                    process_identical=process_identical,
                    process_fallbacks=process_fallbacks,
                )
            )
    return ShardsResult(
        points=points,
        vector_length=vector_length,
        goal=goal,
        routing=routing,
        repeats=repeats,
        cpu_count=len(os.sched_getaffinity(0)),
    )


def print_shards(res: ShardsResult) -> None:
    """Render the sharded-plane comparison as text."""
    print_table(
        [
            "S",
            "pop",
            "single (ms)",
            "sharded (ms)",
            "modeled x",
            "process (ms)",
            "measured x",
            "gap",
            "load skew",
            "max |div|",
            "equivalent",
            "bit-identical",
        ],
        [
            [
                p.num_shards,
                p.population,
                p.single_s * 1e3,
                p.sharded_s * 1e3,
                p.speedup,
                p.process_s * 1e3,
                p.measured_speedup,
                p.speedup_gap,
                p.load_skew,
                p.max_divergence,
                p.equivalent,
                p.process_identical,
            ]
            for p in res.points
        ],
        title=(
            f"Sharded aggregation plane — modeled critical path + measured "
            f"process executor vs single aggregator "
            f"({res.vector_length} params, K={res.goal}, "
            f"{res.routing} routing, best of {res.repeats}, "
            f"{res.cpu_count} cores)"
        ),
    )


def _run_shards(scale: Scale, seed: int, **params) -> ShardsResult:
    return shards_speedup(seed=seed, **params)


registry.register(
    registry.ExperimentSpec(
        "shards",
        _run_shards,
        print_shards,
        ShardsResult,
        description=(
            "sharded aggregation plane vs single aggregator: modeled and "
            "measured multi-core speedup + load skew + equivalence"
        ),
        default_grid={},
        uses_scale=False,
    ),
    replace=True,
)


# ---------------------------------------------------------------------------
# Secure sharded plane: hierarchical secure aggregation vs the single plane
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SecureShardPoint:
    """One (shard count, goal, vector length) secure operating point."""

    num_shards: int
    routing: str
    goal: int
    vector_length: int
    arrivals: int       # updates driven through all arms
    single_s: float     # single secure plane full-drive wall clock (best-of)
    serial_path_s: float  # S=1 clocked run: serial fold + merge path
    sharded_path_s: float  # inline S-lane critical path (best-of)
    speedup: float      # modeled: serial_path_s / sharded_path_s
    process_s: float    # process-executor full-drive wall clock (best-of)
    measured_speedup: float  # single_s / process_s, on this machine
    load_skew: float    # max shard lifetime folds / ideal even share
    bit_identical: bool  # states + step structure exactly equal, all arms
    boundary_match: bool  # boundary-byte meters equal across all arms
    process_fallbacks: int  # executor fallbacks across the repeats (0 = clean)


@dataclass(frozen=True)
class SecureShardsResult:
    """Single-vs-hierarchical secure aggregation across S × K × ℓ."""

    points: list[SecureShardPoint]
    routing: str
    repeats: int
    cpu_count: int      # cores available to the measured process arm


def _secure_state(vector_length: int, seed: int):
    return GlobalModelState(
        child_rng(seed, "secure-shards-init")
        .standard_normal(vector_length)
        .astype(np.float32),
        FedAdam(lr=0.1),
    )


def _drive_secure(agg, results, *, drain: bool = False) -> float:
    """Drive one secure arm; returns the full data-plane wall clock.

    Times each ``receive_update`` — client participation, admission,
    fold, and any epoch finalize — excluding the selection-time
    ``register_download`` model copy, identically in every arm.  With
    ``drain`` a final worker barrier is paid for inside the measurement
    (process arm only).
    """
    elapsed = 0.0
    for r in results:
        agg.register_download(r.client_id)
        arrival = TrainingResult(r.client_id, r.delta, r.num_examples,
                                 r.train_loss, agg.version)
        t0 = time.perf_counter()
        agg.receive_update(arrival)
        elapsed += time.perf_counter() - t0
    if drain:
        t0 = time.perf_counter()
        agg.drain()
        elapsed += time.perf_counter() - t0
    return elapsed


def _secure_fingerprint(agg):
    """Everything the exactness contract compares between arms."""
    return (
        agg.state.current().copy(),
        [(i.version, i.num_updates, i.total_weight, i.contributors)
         for i in agg.step_history],
        agg.boundary_bytes_in_total,
        agg.boundary_bytes_out_total,
    )


def secure_shards_speedup(
    shard_counts: tuple[int, ...] = (1, 2, 4),
    goals: tuple[int, ...] = (8, 24),
    vector_lengths: tuple[int, ...] = (4096, 16384),
    epochs: int = 3,
    population_factor: int = 4,
    routing: str = "hash",
    repeats: int = 2,
    seed: int = 0,
) -> SecureShardsResult:
    """Measure hierarchical secure aggregation against the single plane.

    All arms consume *identical* arrival sequences (same deltas,
    example counts, order; each client registers immediately before its
    upload, so versions, staleness, and the clients' global-counter-keyed
    randomness match).  Two speedups come out:

    * **modeled** — the :class:`~repro.core.sharding.AggregationPlaneClock`
      critical path of the inline ``S``-shard plane (measured per-shard
      fold costs on ``S`` lanes, the root merge barriering across them)
      against the *same clocked quantity at S=1*, the serial fold lane.
      The clock charges server-side work only, so this isolates what
      hierarchy buys the aggregation plane itself, independent of
      client-side modexp cost.
    * **measured** — the process executor's full-drive wall clock (each
      shard's whole secure pipeline — client participation, leg mint,
      admit — on its own worker process) against the single plane's full
      sequential drive, on this machine's real cores.

    Exactness is checked with ``==``: final model states, step
    structure, and boundary-byte meters must agree across all arms at
    every point — the group-sum merge reassociates exact uint64 math,
    so there is no tolerance to hide behind.
    """
    points: list[SecureShardPoint] = []
    for length in vector_lengths:
        for goal in goals:
            arrivals = epochs * goal
            stream_rng = child_rng(seed, "secure-shards-stream", length, goal)
            results = _arrival_stream(
                population_factor * goal, arrivals, length, stream_rng
            )
            best_single = float("inf")
            single_fp = None
            for _ in range(max(1, repeats)):
                single = SecureBufferedAggregator(
                    _secure_state(length, seed), goal, length, seed=seed
                )
                best_single = min(
                    best_single, _drive_secure(single, results)
                )
                single_fp = _secure_fingerprint(single)
            # Serial modeled baseline: the same plane clocked at S=1, so
            # the modeled speedup divides like for like (fold + merge
            # path, no client-side crypto in either side of the ratio).
            best_serial = float("inf")
            for _ in range(max(1, repeats)):
                serial_clock = AggregationPlaneClock(1)
                serial = SecureShardedAggregator(
                    _secure_state(length, seed), goal, length,
                    num_shards=1, routing=routing,
                    clock=serial_clock, seed=seed,
                )
                _drive_secure(serial, results)
                best_serial = min(best_serial, serial_clock.elapsed)
            for num_shards in shard_counts:
                best_path = float("inf")
                sharded_fp = None
                loads = None
                for _ in range(max(1, repeats)):
                    clock = AggregationPlaneClock(num_shards)
                    sharded = SecureShardedAggregator(
                        _secure_state(length, seed), goal, length,
                        num_shards=num_shards, routing=routing,
                        clock=clock, seed=seed,
                    )
                    _drive_secure(sharded, results)
                    best_path = min(best_path, clock.elapsed)
                    sharded_fp = _secure_fingerprint(sharded)
                    loads = sharded.shard_loads()
                best_process = float("inf")
                process_fallbacks = 0
                process_fp = None
                for _ in range(max(1, repeats)):
                    process = ProcessSecureShardedAggregator(
                        _secure_state(length, seed), goal, length,
                        num_shards=num_shards, routing=routing, seed=seed,
                    )
                    try:
                        best_process = min(
                            best_process,
                            _drive_secure(process, results, drain=True),
                        )
                        process_fallbacks += process.executor_fallbacks
                        process_fp = _secure_fingerprint(process)
                    finally:
                        process.close()
                identical = bool(
                    np.array_equal(single_fp[0], sharded_fp[0])
                    and np.array_equal(single_fp[0], process_fp[0])
                    and single_fp[1] == sharded_fp[1] == process_fp[1]
                )
                boundary = (
                    single_fp[2:] == sharded_fp[2:] == process_fp[2:]
                )
                points.append(
                    SecureShardPoint(
                        num_shards=num_shards,
                        routing=routing,
                        goal=goal,
                        vector_length=length,
                        arrivals=arrivals,
                        single_s=best_single,
                        serial_path_s=best_serial,
                        sharded_path_s=best_path,
                        speedup=(
                            best_serial / best_path
                            if best_path > 0 else float("inf")
                        ),
                        process_s=best_process,
                        measured_speedup=(
                            best_single / best_process
                            if best_process > 0 else float("inf")
                        ),
                        load_skew=max(loads) / (arrivals / num_shards),
                        bit_identical=identical,
                        boundary_match=bool(boundary),
                        process_fallbacks=process_fallbacks,
                    )
                )
    return SecureShardsResult(
        points=points,
        routing=routing,
        repeats=repeats,
        cpu_count=len(os.sched_getaffinity(0)),
    )


def print_secure_shards(res: SecureShardsResult) -> None:
    """Render the secure sharded-plane comparison as text."""
    print_table(
        [
            "S",
            "K",
            "len",
            "single (ms)",
            "serial path (ms)",
            "path (ms)",
            "modeled x",
            "process (ms)",
            "measured x",
            "load skew",
            "bit-identical",
            "boundary ok",
            "fallbacks",
        ],
        [
            [
                p.num_shards,
                p.goal,
                p.vector_length,
                p.single_s * 1e3,
                p.serial_path_s * 1e3,
                p.sharded_path_s * 1e3,
                p.speedup,
                p.process_s * 1e3,
                p.measured_speedup,
                p.load_skew,
                p.bit_identical,
                p.boundary_match,
                p.process_fallbacks,
            ]
            for p in res.points
        ],
        title=(
            f"Secure sharded plane — hierarchical secure aggregation vs the "
            f"single secure plane ({res.routing} routing, best of "
            f"{res.repeats}, {res.cpu_count} cores)"
        ),
    )


def _run_secure_shards(scale: Scale, seed: int, **params) -> SecureShardsResult:
    return secure_shards_speedup(seed=seed, **params)


registry.register(
    registry.ExperimentSpec(
        "secure_shards",
        _run_secure_shards,
        print_secure_shards,
        SecureShardsResult,
        description=(
            "hierarchical secure aggregation vs the single secure plane: "
            "modeled and measured speedup + exact equivalence"
        ),
        default_grid={},
        uses_scale=False,
    ),
    replace=True,
)


# ---------------------------------------------------------------------------
# Million-client fleet: per-event cost vs population size
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MillionPoint:
    """One population-size operating point of the columnar fleet."""

    population: int
    demand: int             # concurrent-session capacity at this size
    horizon_s: float        # simulated span driven
    events: int             # engine events fired
    sessions: int           # sessions completed
    wall_s: float           # wall-clock of the run() call
    events_per_sec: float
    us_per_event: float
    peak_rss_mb: float      # ru_maxrss after the point (process lifetime max)
    columns_mb: float       # struct-of-arrays footprint of the fleet
    trace_records: int      # participation records the bounded trace holds
    total_participations: int  # exact tally (sampled records notwithstanding)


@dataclass(frozen=True)
class MillionResult:
    """Fleet-scaling sweep 10k→1M devices."""

    points: list[MillionPoint]
    flatness: float         # max/min us_per_event across points (~1 = flat)
    tick_s: float
    mean_sleep_s: float
    max_trace_records: int


def million_scaling(
    populations: tuple[int, ...] = (10_000, 100_000, 1_000_000),
    horizon_s: float = 1800.0,
    demand_divisor: int = 200,
    min_demand: int = 64,
    tick_s: float = 60.0,
    mean_sleep_s: float = 7200.0,
    max_trace_records: int = 10_000,
    seed: int = 0,
) -> MillionResult:
    """Drive the columnar fleet at each population size; measure per-event cost.

    Demand (concurrent-session capacity) scales with the population
    (``population // demand_divisor``) so the event load grows with the
    fleet — the claim under test is that the *per-event* cost does not:
    arrivals, eligibility and session setup are batched per tick over the
    struct-of-arrays columns, and the calendar queue keeps scheduling
    O(1) as the pending-event count grows.  ``peak_rss_mb`` is the
    process-lifetime high-water mark (``ru_maxrss``), so within one sweep
    it is non-decreasing across points; the 1M point's value is the
    honest fleet-scale figure.
    """
    points: list[MillionPoint] = []
    for population in populations:
        fleet_pop = build_population(
            PopulationSpec(n_devices=population, seed=seed, columnar=True)
        )
        trace = BoundedMetricsTrace(max_records=max_trace_records, seed=seed)
        fleet = FleetSimulation(
            fleet_pop,
            FleetConfig(
                tick_s=tick_s,
                demand=max(min_demand, population // demand_divisor),
                mean_sleep_s=mean_sleep_s,
            ),
            trace=trace,
            seed=seed,
        )
        t0 = time.perf_counter()
        fleet.run(horizon_s)
        wall = time.perf_counter() - t0
        events = fleet.sim.events_fired
        points.append(
            MillionPoint(
                population=population,
                demand=fleet.config.demand,
                horizon_s=horizon_s,
                events=events,
                sessions=fleet.sessions_completed,
                wall_s=wall,
                events_per_sec=events / wall if wall > 0 else float("inf"),
                us_per_event=wall / events * 1e6 if events else float("nan"),
                peak_rss_mb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                / 1024.0,
                columns_mb=fleet_pop.columns_nbytes() / 1e6,
                trace_records=len(trace.participations),
                total_participations=trace.total_participations,
            )
        )
    costs = [p.us_per_event for p in points if p.events]
    flatness = max(costs) / min(costs) if costs else float("nan")
    return MillionResult(
        points=points,
        flatness=flatness,
        tick_s=tick_s,
        mean_sleep_s=mean_sleep_s,
        max_trace_records=max_trace_records,
    )


def print_million(res: MillionResult) -> None:
    """Render the fleet-scaling sweep as text."""
    print_table(
        [
            "population",
            "demand",
            "events",
            "sessions",
            "wall (s)",
            "events/s",
            "µs/event",
            "peak RSS (MB)",
            "columns (MB)",
            "trace recs",
        ],
        [
            [
                p.population,
                p.demand,
                p.events,
                p.sessions,
                p.wall_s,
                p.events_per_sec,
                p.us_per_event,
                p.peak_rss_mb,
                p.columns_mb,
                p.trace_records,
            ]
            for p in res.points
        ],
        title=(
            f"Columnar fleet scaling — per-event cost vs population "
            f"(tick {res.tick_s:g}s, mean sleep {res.mean_sleep_s:g}s, "
            f"flatness {res.flatness:.2f}x)"
        ),
    )


def _run_million(scale: Scale, seed: int, **params) -> MillionResult:
    # The smoke scale trims the simulated span so CI stays fast; the
    # population axis is the experiment's point and is never scaled down.
    params.setdefault("horizon_s", float(min(1800.0, scale.sim_hours * 200.0)))
    return million_scaling(seed=seed, **params)


registry.register(
    registry.ExperimentSpec(
        "million",
        _run_million,
        print_million,
        MillionResult,
        description=(
            "columnar fleet 10k→1M devices: events/sec, per-event cost "
            "flatness, peak RSS"
        ),
        default_grid={},
    ),
    replace=True,
)
