"""First-class experiment registry for the reproduction harness.

Every figure/table regenerator is described by an :class:`ExperimentSpec`
— name, runner, printer, result type, optional parameter grid — and
registered in a process-wide registry.  The CLI (``repro.harness.__main__``),
the sweep executor (``repro.harness.sweep``) and the benchmark suite all
dispatch through this registry instead of ad-hoc lambda tables, so new
experiments only need one ``register()`` call to become runnable,
sweepable, cacheable and benchmarkable.

Results are plain (frozen) dataclasses; the registry provides a generic,
type-driven JSON codec (:func:`to_jsonable` / :func:`from_jsonable`) so
every result can be serialized to a machine-readable form for the on-disk
sweep cache and CI artifacts, and reconstructed losslessly for the
``print_*`` renderers.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import importlib
import inspect
import pathlib
import types
import typing
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

__all__ = [
    "ExperimentSpec",
    "register",
    "get",
    "find",
    "names",
    "specs",
    "code_digest",
    "to_jsonable",
    "from_jsonable",
]


# ---------------------------------------------------------------------------
# Generic JSON codec for experiment results
# ---------------------------------------------------------------------------

def to_jsonable(obj: Any) -> Any:
    """Convert a result object into JSON-serializable primitives.

    Dataclasses become dicts of their fields, numpy arrays become (nested)
    lists, tuples become lists.  The inverse, :func:`from_jsonable`, is
    driven entirely by the result type's annotations, so no type tags are
    embedded in the output.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialize {type(obj).__name__} to JSON")


def from_jsonable(tp: Any, data: Any) -> Any:
    """Reconstruct a value of annotated type ``tp`` from :func:`to_jsonable` output."""
    if tp is Any or tp is None or tp is type(None):
        return data
    origin = typing.get_origin(tp)
    args = typing.get_args(tp)

    if origin in (typing.Union, types.UnionType):
        if data is None:
            return None
        non_none = [a for a in args if a is not type(None)]
        return from_jsonable(non_none[0], data) if len(non_none) == 1 else data
    if dataclasses.is_dataclass(tp) and isinstance(tp, type):
        hints = typing.get_type_hints(tp)
        kwargs = {
            f.name: from_jsonable(hints.get(f.name, Any), data[f.name])
            for f in dataclasses.fields(tp)
        }
        return tp(**kwargs)
    if tp is np.ndarray:
        # No dtype coercion: tolist() preserved int-ness, so integer
        # arrays (e.g. client counts) round-trip as integer arrays.
        return np.asarray(data)
    if origin is list:
        elem = args[0] if args else Any
        return [from_jsonable(elem, v) for v in data]
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(from_jsonable(args[0], v) for v in data)
        if args:
            return tuple(from_jsonable(a, v) for a, v in zip(args, data))
        return tuple(data)
    if origin is dict:
        key_tp = args[0] if args else Any
        val_tp = args[1] if len(args) > 1 else Any
        return {from_jsonable(key_tp, k): from_jsonable(val_tp, v) for k, v in data.items()}
    if tp is float:
        return None if data is None else float(data)
    if tp in (int, str, bool):
        return data if data is None else tp(data)
    return data


# ---------------------------------------------------------------------------
# ExperimentSpec and the registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment (a figure or table of the paper).

    Attributes
    ----------
    name:
        Registry key, e.g. ``"fig9"``.
    runner:
        ``runner(scale, seed, **params) -> result``.  Must be a module-level
        callable whose defining module performs the ``register()`` call at
        import time: sweep worker processes import that module (recorded on
        each cell as ``runner_module``) to rebuild the registry under
        spawn-start multiprocessing.
    printer:
        Renders a result as text (the ``print_*`` companion).
    result_type:
        The result dataclass, used to reconstruct cached JSON results.
    default_grid:
        Optional parameter grid the sweep executor fans out over in
        addition to seeds; maps runner keyword names to value tuples.
    description:
        One-line summary shown by ``--list``.
    uses_seed / uses_scale:
        Whether the runner's output actually depends on the seed / scale.
        ``build_cells`` collapses the invariant axis to a single cell so a
        deterministic experiment (e.g. a closed-form cost model) isn't
        recomputed and aggregated once per seed.
    """

    name: str
    runner: Callable[..., Any]
    printer: Callable[[Any], None]
    result_type: type | None = None
    default_grid: Mapping[str, tuple] = field(default_factory=dict)
    description: str = ""
    uses_seed: bool = True
    uses_scale: bool = True

    def run(self, scale, seed: int = 0, **params) -> Any:
        """Execute the experiment at ``scale`` with ``seed`` and grid params."""
        return self.runner(scale, seed, **params)

    def serialize(self, result: Any) -> Any:
        """Result object → JSON-serializable payload."""
        return to_jsonable(result)

    def deserialize(self, payload: Any) -> Any:
        """JSON payload → result object (requires ``result_type``)."""
        if self.result_type is None:
            return payload
        return from_jsonable(self.result_type, payload)


@functools.lru_cache(maxsize=None)
def _module_digest(module_name: str) -> str | None:
    """SHA-256 (truncated) of the source of a module's whole package.

    Hashing every ``.py`` sibling of the module (not just its own file)
    means an edit anywhere in the package — e.g. ``harness/runner.py`` or
    ``harness/configs.py``, which the figure runners call into — changes
    the digest, not only edits to the defining file itself.
    """
    try:
        mod = importlib.import_module(module_name)
        path = inspect.getsourcefile(mod)
        if path is None:
            return None
        h = hashlib.sha256()
        for p in sorted(pathlib.Path(path).parent.glob("*.py")):
            h.update(p.name.encode())
            h.update(p.read_bytes())
        return h.hexdigest()[:16]
    except Exception:
        return None


def code_digest(name: str) -> str | None:
    """Code-identity fingerprint of an experiment.

    Folded into every cache fingerprint so editing the package that
    defines an experiment's runner invalidates its cached results — a
    reproduction harness must never serve numbers computed by old code.
    Coarse by design (any edit in the defining package invalidates all of
    its experiments); dependencies outside the package (``core/``,
    ``sim/``) are not tracked, so bump ``CACHE_VERSION`` in
    :mod:`repro.harness.cache` for cross-cutting changes there.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        return None
    module = getattr(spec.runner, "__module__", None)
    return _module_digest(module) if module else None


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec, replace: bool = False) -> ExperimentSpec:
    """Add a spec to the registry; ``replace=True`` overwrites an existing name."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"experiment {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a spec (used by tests injecting temporary experiments)."""
    _REGISTRY.pop(name, None)


def find(name: str) -> ExperimentSpec | None:
    """Like :func:`get` but returns None for unknown names."""
    return _REGISTRY.get(name)


def get(name: str) -> ExperimentSpec:
    """Look up a spec by name; raises ``KeyError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {', '.join(names())}"
        ) from None


def names() -> list[str]:
    """Sorted names of all registered experiments."""
    return sorted(_REGISTRY)


def specs() -> list[ExperimentSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[n] for n in names()]
