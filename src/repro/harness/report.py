"""Plain-text rendering of experiment results (tables and series).

Every figure regenerator prints "the same rows/series the paper reports"
through these helpers, so benchmark output is directly comparable to the
paper's plots.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "print_table", "format_series", "print_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> None:
    """Print an aligned ASCII table."""
    print(format_table(headers, rows, title))
    print()


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], width: int = 48
) -> str:
    """Render a series as a crude ASCII sparkline plus min/max labels."""
    if not len(xs):
        return f"{name}: (empty)"
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    marks = "▁▂▃▄▅▆▇█"
    step = max(1, len(ys) // width)
    sampled = list(ys)[::step][:width]
    line = "".join(marks[int((y - lo) / span * (len(marks) - 1))] for y in sampled)
    return f"{name} [{lo:.4g}..{hi:.4g}]: {line}"


def print_series(
    name: str, xs: Sequence[float], ys: Sequence[float], width: int = 48
) -> None:
    """Print a series as an ASCII sparkline."""
    print(format_series(name, xs, ys, width))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
