"""Plain-text rendering of experiment results (tables, series, aggregates).

Every figure regenerator prints "the same rows/series the paper reports"
through these helpers, so benchmark output is directly comparable to the
paper's plots.  Multi-seed sweeps (``repro.harness.sweep``) render their
mean / stddev / min-max aggregates through :func:`format_aggregate`.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = [
    "format_table",
    "print_table",
    "format_series",
    "print_series",
    "format_aggregate",
    "print_aggregate",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> None:
    """Print an aligned ASCII table."""
    print(format_table(headers, rows, title))
    print()


def _sample(values: Sequence, width: int) -> list:
    """Downsample to at most ``width`` points spanning the whole series.

    Evenly spaced indices that always include both endpoints, so the
    rendered sparkline reaches the series' first and last values (a
    stride-based cut can silently drop the tail).
    """
    values = list(values)
    n = len(values)
    if n <= width:
        return values
    if width <= 1:
        return values[:1]
    return [values[round(i * (n - 1) / (width - 1))] for i in range(width)]


def _sparkline(values: Sequence[float | None], lo: float, hi: float) -> str:
    """Map values onto block marks; ``None`` renders as a ``·`` gap."""
    marks = "▁▂▃▄▅▆▇█"
    span = (hi - lo) or 1.0
    return "".join(
        "·" if v is None else marks[int((v - lo) / span * (len(marks) - 1))]
        for v in values
    )


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], width: int = 48
) -> str:
    """Render a series as a crude ASCII sparkline plus min/max labels."""
    if not len(xs):
        return f"{name}: (empty)"
    lo, hi = min(ys), max(ys)
    line = _sparkline(_sample(ys, width), lo, hi)
    return f"{name} [{lo:.4g}..{hi:.4g}]: {line}"


def print_series(
    name: str, xs: Sequence[float], ys: Sequence[float], width: int = 48
) -> None:
    """Print a series as an ASCII sparkline."""
    print(format_series(name, xs, ys, width))


def _is_stat(node: Any, kind: str) -> bool:
    return isinstance(node, dict) and node.get("kind") == kind


def _flatten_aggregate(
    node: Any, path: str, scalars: list, series: list
) -> None:
    """Walk an aggregate tree collecting scalar-stat rows and band series."""
    if _is_stat(node, "scalar"):
        scalars.append([path or "value", node["mean"], node["std"],
                        node["min"], node["max"], node["n"]])
        return
    if _is_stat(node, "series"):
        series.append((path or "series", node))
        return
    if _is_stat(node, "ragged"):
        length = node["length"]
        scalars.append([f"{path}.len", length["mean"], length["std"],
                        length["min"], length["max"], length["n"]])
        per_seed = node.get("per_seed_mean")
        if per_seed:
            scalars.append([f"{path}.seed-mean", per_seed["mean"], per_seed["std"],
                            per_seed["min"], per_seed["max"], per_seed["n"]])
        return
    if _is_stat(node, "const"):
        return
    if isinstance(node, dict):
        for k, v in node.items():
            _flatten_aggregate(v, f"{path}.{k}" if path else str(k), scalars, series)
        return
    if isinstance(node, list):
        for i, v in enumerate(node):
            _flatten_aggregate(v, f"{path}[{i}]", scalars, series)


def format_aggregate(aggregate: Any, title: str | None = None) -> str:
    """Render a multi-seed aggregate tree (see ``sweep.aggregate_payloads``).

    Scalar fields become one table row each (mean ± std, min–max band, n
    seeds); equal-length series become a sparkline of the seed-mean with
    the average band width noted alongside.
    """
    scalars: list = []
    series: list = []
    _flatten_aggregate(aggregate, "", scalars, series)
    blocks = []
    if scalars:
        blocks.append(format_table(
            ["field", "mean", "std", "min", "max", "n"], scalars, title=title))
    elif title:
        blocks.append(title)
    for path, node in series:
        blocks.append(_format_band_series(path, node["mean"], node["std"]))
    return "\n".join(blocks)


def _format_band_series(
    path: str, means: Sequence[float | None], stds: Sequence[float | None],
    width: int = 48,
) -> str:
    """Sparkline of a seed-mean series; all-missing columns render as gaps.

    Positions are preserved (a ``·`` marks a column with no data in any
    seed) so each mark still lines up with its operating point, and the
    quoted band averages only the stds of plotted columns.
    """
    # The band is averaged over exactly the columns the sparkline plots,
    # so the quoted ± always describes the rendered marks.
    sampled = _sample(list(zip(means, stds)), width)
    present = [m for m, _ in sampled if m is not None]
    if not present:
        return f"{path}: (no numeric data)"
    lo, hi = min(present), max(present)
    line = _sparkline([m for m, _ in sampled], lo, hi)
    band_stds = [s for m, s in sampled if m is not None and s is not None]
    band = sum(band_stds) / len(band_stds) if band_stds else 0.0
    shown = "" if len(sampled) == len(means) else f", {len(sampled)}/{len(means)} cols"
    return (f"{path} [{lo:.4g}..{hi:.4g}]: {line}  "
            f"(seed-mean, avg band ±{_fmt(band)}{shown})")


def print_aggregate(aggregate: Any, title: str | None = None) -> None:
    """Print a multi-seed aggregate tree."""
    print(format_aggregate(aggregate, title))
    print()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
