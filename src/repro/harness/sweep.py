"""Parallel experiment-sweep executor with multi-seed aggregation.

A sweep fans a grid of cells — (experiment × seed × operating point) —
out across worker processes, caches every cell result as content-addressed
JSON (see :mod:`repro.harness.cache`), and folds the per-seed results into
mean / stddev / min-max aggregates that the text renderers and CI
artifacts consume.

Typical use::

    from repro.harness import SMOKE
    from repro.harness.sweep import build_cells, run_sweep

    cells = build_cells(["fig9"], SMOKE, seeds=[0, 1, 2])
    sweep = run_sweep(cells, jobs=4)
    for group in sweep.groups():
        print(group.describe())

Determinism: each cell is seeded independently, so the aggregated output
of a sweep is identical whatever ``jobs`` is, and re-runs are free once
the cache is warm.  The CLI front-end lives in ``repro.harness.__main__``
(``python -m repro.harness sweep fig9 --seeds 0..4 --jobs 8``).
"""

from __future__ import annotations

import functools
import importlib
import itertools
import json
import math
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.harness import registry
from repro.harness.cache import CACHE_VERSION, ResultCache, cell_fingerprint
from repro.harness.configs import Scale

__all__ = [
    "SweepCell",
    "CellResult",
    "SweepGroup",
    "SweepResult",
    "SweepError",
    "cell_payload",
    "expand_grid",
    "build_cells",
    "build_scenario_cells",
    "run_sweep",
    "aggregate_payloads",
]


# ---------------------------------------------------------------------------
# Cells
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: an experiment at one (scale, seed, params).

    ``runner_module`` records where the experiment's runner is defined so
    worker processes on spawn-start platforms (macOS/Windows) can import
    it — importing the defining module re-runs its ``registry.register``
    side effect, which fork-start workers get for free by inheritance.
    It does not participate in the cache fingerprint.
    """

    experiment: str
    scale: Scale
    seed: int
    params: tuple[tuple[str, Any], ...] = ()
    runner_module: str | None = None

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def fingerprint(self) -> str:
        return cell_fingerprint(self.experiment, self.scale, self.seed, self.params_dict)

    def label(self) -> str:
        extra = "".join(f" {k}={_fmt_param(v)}" for k, v in self.params)
        return f"{self.experiment} scale={self.scale.name} seed={self.seed}{extra}"


def _fmt_param(value: Any) -> str:
    """Human-readable param value; long ones (spec documents) are elided."""
    text = str(value)
    return text if len(text) <= 64 else f"<{len(text)}-char document>"


def expand_grid(grid: Mapping[str, Sequence[Any]] | None) -> list[dict[str, Any]]:
    """Cartesian product of a param grid; ``{}``/``None`` yields one empty point."""
    if not grid:
        return [{}]
    keys = sorted(grid)
    return [dict(zip(keys, combo)) for combo in itertools.product(*(grid[k] for k in keys))]


def build_cells(
    experiments: Iterable[str],
    scale: Scale,
    seeds: Sequence[int],
    grid: Mapping[str, Sequence[Any]] | None = None,
) -> list[SweepCell]:
    """The full cell list for a sweep.

    ``grid`` overrides each spec's ``default_grid``; cells are ordered
    (experiment, operating point, seed) so serial runs group naturally.
    """
    cells = []
    for name in experiments:
        spec = registry.get(name)  # raises KeyError for unknown names up-front
        points = expand_grid(grid if grid is not None else spec.default_grid)
        # A seed-invariant experiment gets exactly one cell per point,
        # pinned to the canonical seed 0 the fingerprint uses — labeling
        # it seeds[0] would let a cell badged "seed=3" serve a payload
        # recorded (and cached) as seed 0, and vice versa.
        seed_axis = list(seeds) if spec.uses_seed else [0]
        for params in points:
            for seed in seed_axis:
                cells.append(
                    SweepCell(
                        experiment=name,
                        scale=scale,
                        seed=int(seed),
                        params=tuple(sorted(params.items())),
                        runner_module=getattr(spec.runner, "__module__", None),
                    )
                )
    return cells


def build_scenario_cells(
    spec,
    seeds: Sequence[int],
    grid: Mapping[str, Sequence[Any]] | None = None,
    scale: Scale | None = None,
) -> list[SweepCell]:
    """Sweep cells gridding directly over :class:`ScenarioSpec` fields.

    ``spec`` is the base :class:`repro.api.ScenarioSpec`; ``grid`` keys
    are dotted ``spec.override`` paths (``plane.num_shards``,
    ``tasks.0.concurrency``, ``system.cohort_batch_size``, ...) fanned
    out as a cartesian product on top of it.  Every cell runs the
    ``scenario`` experiment with the serialized spec as a parameter, so
    caching, parallel execution, and multi-seed aggregation work exactly
    as for the figure experiments.  Grid paths are validated up-front
    against the spec (a typo fails before any cell runs).
    """
    from repro.harness import scenario as scenario_module
    from repro.harness.configs import SMOKE

    if grid:
        for path, values in grid.items():
            if not values:
                raise ValueError(f"scenario grid axis {path!r} has no values")
    points = expand_grid(grid)
    # Validate every actual cell's override combination atomically, so a
    # typo'd path or an invalid combination fails before any cell runs —
    # and interdependent multi-axis grids (plane.name × plane.num_shards)
    # are judged as the cells will apply them, not axis-by-axis.
    for params in points:
        spec.with_overrides(params)
    # The spec rides along as canonical JSON (cells must stay hashable
    # for result grouping, and the fingerprint must not depend on dict
    # ordering).
    spec_doc = json.dumps(spec.to_dict(), sort_keys=True)
    cells = []
    for params in points:
        for seed in seeds:
            cells.append(
                SweepCell(
                    experiment="scenario",
                    scale=scale if scale is not None else SMOKE,
                    seed=int(seed),
                    params=tuple(sorted({"spec": spec_doc, **params}.items())),
                    runner_module=scenario_module.__name__,
                )
            )
    return cells


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

class SweepError(RuntimeError):
    """One or more sweep cells failed (successful cells were still cached).

    ``result`` holds the partial :class:`SweepResult` over the cells that
    did complete, so callers (the CLI's ``--json`` path, CI) can still
    report the work that succeeded.
    """

    def __init__(
        self,
        failures: list[tuple["SweepCell", Exception]],
        result: "SweepResult | None" = None,
    ):
        self.failures = failures
        self.result = result
        # Full tracebacks (including the worker-side remote traceback,
        # which ProcessPoolExecutor chains via __cause__) for diagnosis;
        # the message itself stays a short summary.
        self.tracebacks = [
            "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
            for _, exc in failures
        ]
        lines = [f"{len(failures)} sweep cell(s) failed:"]
        lines += [f"  {cell.label()}: {exc!r}" for cell, exc in failures]
        super().__init__("\n".join(lines))


def cell_payload(cell: SweepCell, result: Any, elapsed_s: float) -> dict:
    """The canonical cached-payload document for one finished cell.

    Every cache writer (sweep workers, the benchmark ``cached_run``
    fixture) must build payloads through this function so the schema
    cannot drift between them.
    """
    return {
        "version": CACHE_VERSION,
        "experiment": cell.experiment,
        "scale": cell.scale.name,
        "seed": cell.seed,
        "params": cell.params_dict,
        "elapsed_s": elapsed_s,
        "result": registry.get(cell.experiment).serialize(result),
    }


def _execute_cell(cell: SweepCell) -> dict:
    """Run one cell and return its JSON payload (runs in worker processes)."""
    if cell.runner_module and cell.experiment not in registry.names():
        # Spawn-start workers only have the registrations that package
        # imports perform; importing the runner's defining module re-runs
        # its register() side effect.
        importlib.import_module(cell.runner_module)
    spec = registry.get(cell.experiment)
    start = time.perf_counter()
    result = spec.run(cell.scale, cell.seed, **cell.params_dict)
    return cell_payload(cell, result, time.perf_counter() - start)


@dataclass(frozen=True)
class CellResult:
    """One finished cell: its JSON payload plus provenance."""

    cell: SweepCell
    payload: dict
    cached: bool

    @property
    def elapsed_s(self) -> float:
        return float(self.payload.get("elapsed_s", 0.0))

    def result(self) -> Any:
        """The reconstructed result object (for ``print_*`` renderers)."""
        return registry.get(self.cell.experiment).deserialize(self.payload["result"])


@dataclass(frozen=True)
class SweepGroup:
    """All seeds of one (experiment × operating point), plus their aggregate."""

    experiment: str
    scale: Scale
    params: tuple[tuple[str, Any], ...]
    cells: list[CellResult]

    @property
    def seeds(self) -> list[int]:
        return [c.cell.seed for c in self.cells]

    @functools.cached_property
    def aggregate(self) -> Any:
        """Mean/std/min/max over seeds of every numeric field of the result."""
        return aggregate_payloads([c.payload["result"] for c in self.cells])

    def describe(self) -> str:
        extra = "".join(f" {k}={_fmt_param(v)}" for k, v in self.params)
        return (
            f"{self.experiment} scale={self.scale.name}{extra} "
            f"seeds={self.seeds}"
        )


@dataclass
class SweepResult:
    """Everything a finished sweep produced."""

    cells: list[CellResult]
    jobs: int
    duration_s: float
    hits: int = 0
    misses: int = 0
    extra: dict = field(default_factory=dict)

    @functools.cached_property
    def _groups(self) -> list[SweepGroup]:
        keyed: dict[tuple, list[CellResult]] = {}
        order: list[tuple] = []
        for c in self.cells:
            key = (c.cell.experiment, c.cell.scale, c.cell.params)
            if key not in keyed:
                keyed[key] = []
                order.append(key)
            keyed[key].append(c)
        return [
            SweepGroup(experiment=k[0], scale=k[1], params=k[2], cells=keyed[k])
            for k in order
        ]

    def groups(self) -> list[SweepGroup]:
        """Cells grouped by (experiment, params), seeds aggregated together.

        Memoized so renderers and :meth:`to_jsonable` share group
        instances (and therefore each group's cached aggregate).
        """
        return self._groups

    def to_jsonable(self) -> dict:
        """Machine-readable sweep report (dumped by ``--json`` and CI)."""
        return {
            "jobs": self.jobs,
            "duration_s": self.duration_s,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cells": [
                {**c.payload, "cached": c.cached, "fingerprint": c.cell.fingerprint}
                for c in self.cells
            ],
            "aggregates": [
                {
                    "experiment": g.experiment,
                    "scale": g.scale.name,
                    "params": dict(g.params),
                    "seeds": g.seeds,
                    "aggregate": g.aggregate,
                }
                for g in self.groups()
            ],
        }


def run_sweep(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Execute a sweep, fanning cache misses out over ``jobs`` processes.

    With ``jobs <= 1`` everything runs in-process (easier to debug, and
    what the determinism tests compare the parallel path against).  Cell
    order in the returned result matches the input order regardless of
    completion order.

    A failing cell does not abandon its siblings: every other cell still
    runs and is cached, then a :class:`SweepError` naming the failed
    cells is raised — so a resume after fixing the bug only pays for the
    cells that actually failed.
    """
    say = progress or (lambda _msg: None)
    cache = cache if cache is not None else (ResultCache() if use_cache else None)
    start = time.perf_counter()

    results: dict[int, CellResult] = {}
    pending: list[int] = []
    hits = 0
    for i, cell in enumerate(cells):
        payload = cache.load(cell.fingerprint) if cache is not None else None
        if payload is not None:
            results[i] = CellResult(cell=cell, payload=payload, cached=True)
            hits += 1
            say(f"[cache hit ] {cell.label()}")
        else:
            pending.append(i)

    def finish(i: int, payload: dict) -> None:
        cell = cells[i]
        if cache is not None:
            try:
                cache.store(cell.fingerprint, payload)
            except OSError as exc:
                # A cache-write problem must not discard a computed result
                # or masquerade as an experiment failure.
                say(f"[cache-store failed] {cell.label()}: {exc!r}")
        results[i] = CellResult(cell=cell, payload=payload, cached=False)
        say(f"[ran {payload['elapsed_s']:6.1f}s] {cell.label()}")

    failures: list[tuple[SweepCell, Exception]] = []
    if pending and jobs > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(_execute_cell, cells[i]): i for i in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in done:
                    i = futures[fut]
                    try:
                        finish(i, fut.result())
                    except Exception as exc:
                        failures.append((cells[i], exc))
                        say(f"[FAILED    ] {cells[i].label()}: {exc!r}")
    else:
        for i in pending:
            try:
                finish(i, _execute_cell(cells[i]))
            except Exception as exc:
                failures.append((cells[i], exc))
                say(f"[FAILED    ] {cells[i].label()}: {exc!r}")

    if failures:
        partial = SweepResult(
            cells=[results[i] for i in sorted(results)],
            jobs=jobs,
            duration_s=time.perf_counter() - start,
            hits=hits,
            # Failed cells produced no result; count only completed runs.
            misses=len(results) - hits,
        )
        raise SweepError(failures, result=partial)

    return SweepResult(
        cells=[results[i] for i in range(len(cells))],
        jobs=jobs,
        duration_s=time.perf_counter() - start,
        hits=hits,
        misses=len(pending),
    )


# ---------------------------------------------------------------------------
# Multi-seed aggregation
# ---------------------------------------------------------------------------

def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _scalar_stat(values: list) -> dict:
    """Mean/std/min/max over seeds, ``None`` entries counted as missing."""
    present = [float(v) for v in values if _is_number(v)]
    n = len(present)
    if n == 0:
        return {"kind": "scalar", "mean": None, "std": None, "min": None,
                "max": None, "n": 0, "n_missing": len(values)}
    mean = sum(present) / n
    var = sum((v - mean) ** 2 for v in present) / n
    return {
        "kind": "scalar",
        "mean": mean,
        "std": math.sqrt(var),
        "min": min(present),
        "max": max(present),
        "n": n,
        "n_missing": len(values) - n,
    }


def aggregate_payloads(payloads: Sequence[Any]) -> Any:
    """Fold structurally-identical JSON results from several seeds into one.

    Numeric leaves become ``{"kind": "scalar", mean, std, min, max, n}``;
    equal-length numeric lists become elementwise band series
    ``{"kind": "series", mean, std, min, max}``; ragged numeric lists are
    summarized by their length and per-seed mean.  Containers recurse;
    non-numeric leaves keep the first seed's value.

    Seeds may disagree structurally (a conditional metric emitted by
    only some seeds): a dict key missing from some payloads — or present
    where the payload isn't a dict at all — counts as a missing value
    (numeric leaves fold it into ``n_missing``; containers aggregate the
    seeds that do carry it and annotate ``n_missing``), and keys only
    later seeds emit still appear, in first-seen order.
    """
    if not payloads:
        return None
    first = payloads[0]

    if all(v is None or _is_number(v) for v in payloads):
        return _scalar_stat(list(payloads))

    if isinstance(first, dict):
        keys = list(first)
        for p in payloads[1:]:
            if isinstance(p, dict):
                keys.extend(k for k in p if k not in keys)
        out = {}
        for k in keys:
            vals = [p.get(k) if isinstance(p, dict) else None for p in payloads]
            if all(v is None or _is_number(v) for v in vals):
                out[k] = _scalar_stat(vals)
                continue
            present = [v for v in vals if v is not None]
            agg = aggregate_payloads(present)
            n_missing = len(vals) - len(present)
            if n_missing and isinstance(agg, dict):
                agg = {**agg, "n_missing": n_missing}
            out[k] = agg
        return out

    if isinstance(first, list):
        numeric = all(
            isinstance(p, list) and all(v is None or _is_number(v) for v in p)
            for p in payloads
        )
        if numeric:
            lengths = {len(p) for p in payloads}
            if lengths == {len(first)} and first:
                cols = [_scalar_stat([p[j] for p in payloads]) for j in range(len(first))]
                return {
                    "kind": "series",
                    "length": len(first),
                    "mean": [c["mean"] for c in cols],
                    "std": [c["std"] for c in cols],
                    "min": [c["min"] for c in cols],
                    "max": [c["max"] for c in cols],
                }
            per_seed_mean = []
            for p in payloads:
                nums = [v for v in p if _is_number(v)]
                # A seed with no numeric entries is missing, not 0.0.
                per_seed_mean.append(sum(nums) / len(nums) if nums else None)
            return {
                "kind": "ragged",
                "length": _scalar_stat([len(p) for p in payloads]),
                "per_seed_mean": _scalar_stat(per_seed_mean),
            }
        if all(isinstance(p, list) and len(p) == len(first) for p in payloads):
            return [
                aggregate_payloads([p[j] for p in payloads]) for j in range(len(first))
            ]
        return {"kind": "ragged", "length": _scalar_stat([len(p) for p in payloads])}

    return {"kind": "const", "value": first}
