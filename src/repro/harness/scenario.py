"""The ``scenario`` experiment: sweep arbitrary declarative deployments.

Every figure/table experiment encodes one fixed deployment topology; the
``scenario`` experiment instead takes a whole serialized
:class:`~repro.api.ScenarioSpec` as its parameter, so *any* deployment a
spec can describe — population size, task mix, plane, privacy, system
knobs — is runnable and sweepable through the PR-1 harness layer without
writing a new runner::

    python -m repro.harness scenario --spec my_scenario.json
    python -m repro.harness sweep scenario --spec my_scenario.json \
        --seeds 0..4 --grid plane.num_shards=1,2,4

Grid keys are dotted :meth:`ScenarioSpec.override` paths applied on top
of the base spec (the sweep seed always overrides ``execution.seed``),
so sweeps grid directly over scenario fields.  The spec must carry an
``execution.t_end_s`` horizon.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.api import Deployment, ScenarioSpec, SpecError
from repro.harness import registry
from repro.harness.configs import Scale
from repro.harness.report import print_table

__all__ = [
    "ScenarioTaskSummary",
    "ScenarioRunSummary",
    "run_scenario",
    "print_scenario",
]


@dataclass(frozen=True)
class ScenarioTaskSummary:
    """One task's outcome counters (a JSON-able TaskStats)."""

    name: str
    server_steps: int
    final_loss: float
    time_to_target_s: float | None
    comm_trips: int
    downloads: int
    aggregated: int
    discarded: int
    failed: int
    timeouts: int
    aborted: int
    mean_staleness: float


@dataclass(frozen=True)
class ScenarioRunSummary:
    """Everything one scenario run reports to the sweep layer."""

    duration_s: float
    plane: str
    num_shards: int
    tasks: list[ScenarioTaskSummary]


def run_scenario(
    spec: ScenarioSpec | Mapping[str, Any] | str,
    seed: int | None = None,
    overrides: Mapping[str, Any] | None = None,
) -> ScenarioRunSummary:
    """Build + run one scenario through :class:`~repro.api.Deployment`.

    ``spec`` may be a :class:`ScenarioSpec`, its ``to_dict`` document,
    or that document as a JSON string (how sweep cells carry it).
    ``seed`` (when given) replaces ``execution.seed``; ``overrides`` are
    dotted :meth:`ScenarioSpec.override` paths applied atomically.
    """
    if isinstance(spec, str):
        spec = json.loads(spec)
    if not isinstance(spec, ScenarioSpec):
        spec = ScenarioSpec.from_dict(spec)
    merged = dict(overrides or {})
    if seed is not None:
        merged["execution.seed"] = int(seed)
    if merged:
        spec = spec.with_overrides(merged)
    if spec.execution.t_end_s is None:
        raise SpecError(
            "execution.t_end_s",
            "the scenario experiment needs a time horizon in the spec",
        )
    result = Deployment.from_spec(spec).run()
    tasks = [
        ScenarioTaskSummary(
            name=stats.name,
            server_steps=stats.server_steps,
            final_loss=stats.final_loss,
            time_to_target_s=stats.time_to_target,
            comm_trips=stats.comm_trips,
            downloads=stats.downloads,
            aggregated=stats.aggregated,
            discarded=stats.discarded,
            failed=stats.failed,
            timeouts=stats.timeouts,
            aborted=stats.aborted,
            mean_staleness=stats.mean_staleness,
        )
        for stats in result.task_stats.values()
    ]
    return ScenarioRunSummary(
        duration_s=result.duration_s,
        plane=spec.plane.name,
        num_shards=spec.plane.num_shards,
        tasks=tasks,
    )


def print_scenario(res: ScenarioRunSummary) -> None:
    """Render a scenario run as text."""
    print_table(
        ["task", "steps", "final loss", "to target (h)", "aggregated",
         "discarded", "failed", "aborted", "mean staleness"],
        [
            [t.name, t.server_steps, t.final_loss,
             "n/a" if t.time_to_target_s is None else t.time_to_target_s / 3600.0,
             t.aggregated, t.discarded, t.failed, t.aborted, t.mean_staleness]
            for t in res.tasks
        ],
        title=(
            f"Scenario — plane={res.plane}"
            + (f" (S={res.num_shards})" if res.num_shards > 1 else "")
            + f", {res.duration_s / 3600.0:.2f} simulated hours"
        ),
    )


def _run_scenario(scale: Scale, seed: int, spec=None, **overrides) -> ScenarioRunSummary:
    """Registry runner: ``spec`` is a ScenarioSpec document (dict)."""
    if spec is None:
        raise SpecError(
            "spec",
            "the scenario experiment needs a spec document "
            "(CLI: --spec scenario.json)",
        )
    return run_scenario(spec, seed=seed, overrides=overrides)


registry.register(
    registry.ExperimentSpec(
        "scenario",
        _run_scenario,
        print_scenario,
        ScenarioRunSummary,
        description="run/sweep an arbitrary declarative ScenarioSpec deployment",
        default_grid={},
        uses_scale=False,
    ),
    replace=True,
)
