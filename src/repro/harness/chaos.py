"""The ``chaos`` experiment: fault schedules × planes with recovery contracts.

PAPAYA's robustness claim is that async FL keeps making progress under
device churn, stragglers, and infrastructure failure.  This experiment
quantifies that claim: for each (fault schedule × aggregation plane)
cell it runs the same deployment twice — once clean, once under the
schedule — and reports *goodput retention* (aggregated updates vs the
clean baseline), *recovery time* (first server step after the last
fault window closes), buffered updates lost to failover, and the
conservation contracts (no device leaked, no update unaccounted for).
Non-empty schedules are additionally re-run to confirm the fault
realization replays bit-identically (same spec + seed + schedule →
same trace).

Canned schedules (:data:`SCHEDULES`) mirror the adversarial scenario
library in ``examples/scenarios/``::

    python -m repro.harness chaos
    python -m repro.harness sweep chaos --seeds 0..2 \
        --grid schedules=dropout_storm,storm_combo

``benchmarks/bench_chaos.py`` pins asserted floors on these metrics so
a regression in failover or recovery fails CI, not just a dashboard.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.api import (
    Deployment,
    ExecutionSpec,
    FaultEvent,
    FaultSpec,
    PlaneSpec,
    PopulationSpec,
    ScenarioSpec,
    SpecError,
    TaskSpec,
)
from repro.harness import registry
from repro.harness.configs import Scale
from repro.harness.report import print_table
from repro.harness.runner import SIM_MODEL_BYTES
from repro.sim.faults import recovery_report

__all__ = [
    "SCHEDULES",
    "ChaosPoint",
    "ChaosResult",
    "chaos_experiment",
    "print_chaos",
]

#: Canned fault schedules, each a tuple of (kind, at_s, params) rows.
#: Fault windows open at t=1200–1800 s and close by t=2100 s, so the
#: default 3600 s horizon leaves a recovery tail ≥ 1500 s.
SCHEDULES: dict[str, tuple] = {
    "none": (),
    "dropout_storm": (
        ("dropout_storm", 1500.0,
         {"fraction": 0.5, "duration_s": 300.0, "interval_s": 60.0}),
    ),
    "aggregator_crash": (
        ("aggregator_crash", 1500.0, {"node": 0, "recover_after_s": 300.0}),
    ),
    "coordinator_outage": (
        ("coordinator_outage", 1500.0, {"duration_s": 240.0}),
    ),
    "storm_combo": (
        ("network_delay", 1200.0, {"factor": 3.0, "duration_s": 600.0}),
        ("dropout_storm", 1500.0, {"fraction": 0.3, "duration_s": 300.0}),
        ("flash_crowd", 1800.0,
         {"burst": 20, "duration_s": 120.0, "interval_s": 60.0}),
    ),
}


@dataclass(frozen=True)
class ChaosPoint:
    """One (schedule × plane) cell of the chaos sweep."""

    schedule: str
    plane: str
    server_steps: int
    aggregated: int
    failed: int
    aborted: int
    #: aggregated / clean-baseline aggregated (1.0 for the baseline row)
    goodput_retention: float
    #: first server step after the last fault window closes (None: no
    #: fault window, or no step followed it before the horizon)
    recovery_s: float | None
    #: buffered-but-unstepped updates dropped by failover
    lost_buffered: int
    #: admitted − stepped − lost − buffered; the conservation residual
    unaccounted: int
    device_conservation_ok: bool
    updates_conservation_ok: bool
    #: same spec re-run → byte-identical trace (None: replay skipped)
    replay_identical: bool | None
    faults_fired: int
    uploads_lost: int
    checkins_blocked: int


@dataclass(frozen=True)
class ChaosResult:
    """Everything one chaos run reports to the sweep layer."""

    n_devices: int
    t_end_s: float
    seed: int
    points: list[ChaosPoint]


def _chaos_spec(
    schedule: str, plane: str, n_devices: int, seed: int, t_end_s: float
) -> ScenarioSpec:
    events = tuple(
        FaultEvent(kind, at_s, params) for kind, at_s, params in SCHEDULES[schedule]
    )
    plane_spec = (
        PlaneSpec(name="sharded", num_shards=2) if plane == "sharded" else PlaneSpec()
    )
    return ScenarioSpec(
        population=PopulationSpec(n_devices=n_devices),
        tasks=(
            TaskSpec(
                name="train",
                mode="async",
                concurrency=48,
                aggregation_goal=8,
                model_size_bytes=SIM_MODEL_BYTES,
            ),
        ),
        plane=plane_spec,
        execution=ExecutionSpec(seed=seed, t_end_s=t_end_s),
        faults=FaultSpec(events=events),
    )


def _trace_fingerprint(result) -> str:
    h = hashlib.sha256()
    for p in result.trace.participations:
        h.update(
            repr((p.device_id, p.task, p.start_time, p.end_time, p.outcome)).encode()
        )
    for s in result.trace.server_steps:
        h.update(repr((s.time, s.task, s.version, s.num_updates, s.loss)).encode())
    return h.hexdigest()


def _run_cell(spec: ScenarioSpec):
    dep = Deployment.from_spec(spec)
    result = dep.run()
    return dep, result


def chaos_experiment(
    n_devices: int = 800,
    seed: int = 0,
    t_end_s: float = 3600.0,
    schedules: str = "all",
    planes: str = "single,sharded",
    replay: bool = True,
) -> ChaosResult:
    """Run the fault-schedule × plane grid and measure recovery.

    ``schedules`` / ``planes`` are comma-joined cell lists (sweepable as
    scalar grid values); ``schedules="all"`` expands to every canned
    schedule.  The clean baseline (``"none"``) always runs per plane —
    goodput retention is measured against it.  ``replay=True`` re-runs
    each non-empty schedule once and compares trace fingerprints.
    """
    if t_end_s < 2400.0:
        raise SpecError(
            "t_end_s",
            "the canned fault windows close by t=2100 s; the horizon "
            "must leave a recovery tail (need t_end_s >= 2400)",
        )
    wanted = (
        list(SCHEDULES) if schedules == "all" else [s.strip() for s in schedules.split(",")]
    )
    for name in wanted:
        if name not in SCHEDULES:
            raise SpecError(
                "schedules",
                f"unknown schedule {name!r}; known: {', '.join(SCHEDULES)}",
            )
    plane_list = [p.strip() for p in planes.split(",")]
    for plane in plane_list:
        if plane not in ("single", "sharded"):
            raise SpecError("planes", f"must be 'single' or 'sharded', got {plane!r}")

    points: list[ChaosPoint] = []
    for plane in plane_list:
        base_spec = _chaos_spec("none", plane, n_devices, seed, t_end_s)
        base_dep, base_result = _run_cell(base_spec)
        baseline_aggregated = base_result.stats("train").aggregated
        for schedule in wanted:
            if schedule == "none":
                dep, result = base_dep, base_result
            else:
                dep, result = _run_cell(
                    _chaos_spec(schedule, plane, n_devices, seed, t_end_s)
                )
            stats = result.stats("train")
            report = recovery_report(dep.simulation, result)
            task_report = report["tasks"].get("train", {})
            injector = dep.simulation.fault_injector
            recovery_s = None
            replay_identical = None
            if injector is not None:
                end = injector.last_fault_end_s
                step_after = next(
                    (s.time for s in result.trace.server_steps if s.time >= end), None
                )
                recovery_s = None if step_after is None else step_after - end
                if replay:
                    _, rerun = _run_cell(
                        _chaos_spec(schedule, plane, n_devices, seed, t_end_s)
                    )
                    replay_identical = (
                        _trace_fingerprint(rerun) == _trace_fingerprint(result)
                    )
            points.append(
                ChaosPoint(
                    schedule=schedule,
                    plane=plane,
                    server_steps=stats.server_steps,
                    aggregated=stats.aggregated,
                    failed=stats.failed,
                    aborted=stats.aborted,
                    goodput_retention=(
                        stats.aggregated / baseline_aggregated
                        if baseline_aggregated
                        else 0.0
                    ),
                    recovery_s=recovery_s,
                    lost_buffered=int(task_report.get("lost_buffered", 0)),
                    unaccounted=int(task_report.get("unaccounted", 0)),
                    device_conservation_ok=bool(report["device_conservation_ok"]),
                    updates_conservation_ok=bool(report["updates_conservation_ok"]),
                    replay_identical=replay_identical,
                    faults_fired=0 if injector is None else len(injector.fired),
                    uploads_lost=0 if injector is None else injector.uploads_lost,
                    checkins_blocked=(
                        0 if injector is None else injector.checkins_blocked
                    ),
                )
            )
    return ChaosResult(
        n_devices=n_devices, t_end_s=t_end_s, seed=seed, points=points
    )


def print_chaos(res: ChaosResult) -> None:
    """Render a chaos run as text."""

    def _flag(ok: bool) -> str:
        return "ok" if ok else "VIOLATED"

    print_table(
        ["schedule", "plane", "steps", "aggregated", "goodput", "recovery (s)",
         "lost buf", "unacct", "conserved", "replay"],
        [
            [
                p.schedule, p.plane, p.server_steps, p.aggregated,
                p.goodput_retention,
                "n/a" if p.recovery_s is None else p.recovery_s,
                p.lost_buffered, p.unaccounted,
                _flag(p.device_conservation_ok and p.updates_conservation_ok),
                "n/a" if p.replay_identical is None else _flag(p.replay_identical),
            ]
            for p in res.points
        ],
        title=(
            f"Chaos — {res.n_devices} devices, "
            f"{res.t_end_s / 3600.0:.1f} h horizon, seed {res.seed}"
        ),
    )


def _run_chaos(scale: Scale, seed: int, **params) -> ChaosResult:
    """Registry runner (``scale`` unused: the grid sets the population)."""
    return chaos_experiment(seed=seed, **params)


registry.register(
    registry.ExperimentSpec(
        "chaos",
        _run_chaos,
        print_chaos,
        ChaosResult,
        description=(
            "fault-schedule x plane chaos sweep — goodput retention, recovery "
            "time, and conservation contracts under canned adversarial "
            "schedules"
        ),
        default_grid={},
        uses_scale=False,
    ),
    replace=True,
)
