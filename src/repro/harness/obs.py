"""The ``obs`` experiment: telemetry overhead and invariance, first-class.

The observability plane (:mod:`repro.obs`) promises two things at once:
telemetry **off** costs one attribute load per hook site and the run is
byte-identical to a build that never heard of telemetry; telemetry
**on** observes every round trip without perturbing a single RNG draw
or event. This experiment turns both promises into columns.  For each
workload it runs the same deployment twice — telemetry off, telemetry
on — and reports both wall clocks, the observer overhead as a
percentage, and whether the on-arm's simulation outputs (participation
trace + server steps) are *bit-identical* to the off-arm's.  The
telemetry arm's exported span tree is checked for completeness on the
spot: ``span_orphans`` must be 0 (every recorded span's parent chain is
intact).

Workloads:

* ``shards`` — the system plane on the sharded aggregation core
  (coordinator, selectors, client sessions, hierarchical folds), where
  telemetry opens a round-trip span per session and meters every
  check-in; this is the span-tree-heavy arm.
* ``million`` — the columnar fleet driver
  (:class:`repro.sim.fleet.FleetSimulation`), where per-session costs
  are the scaling claim; telemetry meters arrivals per *tick* (one
  vectorized hook) and opens spans only for deep-traced sessions, so
  the overhead budget (≤5 %, pinned by ``benchmarks/bench_obs.py``)
  holds at fleet scale.

Run / sweep it through the harness layer::

    python -m repro.harness obs
    python -m repro.harness sweep obs --seeds 0..2 --json obs.json

``python -m repro.harness trace <spec.json>`` is the companion CLI: it
forces telemetry on for one scenario and exports the merged span+event
JSONL trace (and, optionally, the Prometheus metrics snapshot).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.api import (
    Deployment,
    ExecutionSpec,
    PlaneSpec,
    PopulationSpec,
    ScenarioSpec,
    TaskSpec,
    TelemetrySpec,
    build_population,
)
from repro.harness import registry
from repro.harness.configs import Scale
from repro.harness.report import print_table
from repro.harness.runner import SIM_MODEL_BYTES
from repro.obs.telemetry import RunTelemetry
from repro.sim.fleet import FleetConfig, FleetSimulation
from repro.sim.trace import BoundedMetricsTrace

__all__ = [
    "ObsPoint",
    "ObsResult",
    "obs_experiment",
    "print_obs",
    "trace_scenario",
]


@dataclass(frozen=True)
class ObsPoint:
    """One workload × (telemetry off, telemetry on) comparison."""

    workload: str          # "shards" (system plane) or "million" (fleet)
    telemetry_off_s: float  # best-of wall clock, observer absent
    telemetry_on_s: float   # best-of wall clock, observer attached
    overhead_pct: float     # (on - off) / off * 100
    #: on-arm participation trace + server steps byte-equal to off-arm
    bit_identical: bool
    spans_total: int        # spans recorded by the on-arm tracer
    spans_open: int         # spans still open at the horizon (in-flight)
    span_orphans: int       # completed spans with a broken parent chain
    metric_series: int      # labeled series across all metric families
    events_total: int       # structured events the run emitted


@dataclass(frozen=True)
class ObsResult:
    """Overhead + invariance across the workloads."""

    seed: int
    repeats: int
    n_devices: int          # system-plane population
    fleet_devices: int      # columnar fleet population
    t_end_s: float          # system-plane horizon
    horizon_s: float        # fleet horizon
    points: list[ObsPoint]
    max_overhead_pct: float
    all_identical: bool


def _obs_spec(
    n_devices: int, seed: int, t_end_s: float, telemetry: bool, max_spans: int
) -> ScenarioSpec:
    """The system-plane workload: async training on the sharded core."""
    return ScenarioSpec(
        population=PopulationSpec(n_devices=n_devices),
        tasks=(
            TaskSpec(
                name="train",
                mode="async",
                concurrency=48,
                aggregation_goal=8,
                model_size_bytes=SIM_MODEL_BYTES,
            ),
        ),
        plane=PlaneSpec(name="sharded", num_shards=2),
        execution=ExecutionSpec(seed=seed, t_end_s=t_end_s),
        telemetry=TelemetrySpec(enabled=telemetry, max_spans=max_spans),
    )


def _result_fingerprint(result) -> str:
    """sha256 over participations + server steps (the chaos-replay pin)."""
    h = hashlib.sha256()
    for p in result.trace.participations:
        h.update(
            repr((p.device_id, p.task, p.start_time, p.end_time, p.outcome)).encode()
        )
    for s in result.trace.server_steps:
        h.update(repr((s.time, s.task, s.version, s.num_updates, s.loss)).encode())
    return h.hexdigest()


def _fleet_fingerprint(fleet: FleetSimulation) -> str:
    """sha256 over the fleet's sampled trace + exact counters."""
    h = hashlib.sha256()
    for p in fleet.trace.participations:
        h.update(
            repr((p.device_id, p.start_time, p.end_time, p.outcome)).encode()
        )
    h.update(
        repr(
            (
                fleet.sessions_started,
                fleet.sessions_completed,
                fleet.turned_away,
                fleet.ineligible,
                fleet.trace.total_participations,
                fleet.sim.events_fired,
                fleet.sim.now,
            )
        ).encode()
    )
    return h.hexdigest()


def _telemetry_stats(telemetry: RunTelemetry, events_total: int) -> dict:
    """The on-arm columns shared by both workloads."""
    totals = telemetry.tracer.name_totals()
    series = sum(
        len(family["series"]) for family in telemetry.metrics.snapshot().values()
    )
    return {
        "spans_total": int(sum(totals.values())),
        "spans_open": telemetry.tracer.open_count,
        "span_orphans": len(telemetry.tracer.orphans()),
        "metric_series": series,
        "events_total": events_total,
    }


def _run_system_arm(n_devices, seed, t_end_s, telemetry, max_spans):
    """One system-plane run; returns (wall_s, fingerprint, dep, result)."""
    dep = Deployment.from_spec(
        _obs_spec(n_devices, seed, t_end_s, telemetry, max_spans)
    )
    dep.build()  # construction (population, adapters) is untimed
    t0 = time.perf_counter()
    result = dep.run()
    wall = time.perf_counter() - t0
    return wall, _result_fingerprint(result), dep, result


def _run_fleet_arm(fleet_devices, seed, horizon_s, telemetry, max_spans):
    """One columnar-fleet run; returns (wall_s, fingerprint, observer)."""
    population = build_population(
        PopulationSpec(n_devices=fleet_devices, columnar=True, seed=seed)
    )
    observer = RunTelemetry(max_spans=max_spans) if telemetry else None
    fleet = FleetSimulation(
        population,
        FleetConfig(demand=max(64, fleet_devices // 200)),
        trace=BoundedMetricsTrace(max_records=10_000, seed=seed),
        seed=seed,
        observer=observer,
    )
    t0 = time.perf_counter()
    fleet.run(horizon_s)
    wall = time.perf_counter() - t0
    return wall, _fleet_fingerprint(fleet), observer


def obs_experiment(
    workloads: str = "shards,million",
    n_devices: int = 800,
    fleet_devices: int = 100_000,
    t_end_s: float = 3600.0,
    horizon_s: float = 1800.0,
    repeats: int = 2,
    max_spans: int = 200_000,
    seed: int = 0,
) -> ObsResult:
    """Measure telemetry overhead + invariance on each workload.

    Both arms of a workload consume identical specs except the
    ``telemetry`` section; the off arm is the exact deployment every
    non-observed run uses.  Wall clocks are best-of-``repeats`` (each
    repeat rebuilds the simulation — runs are single-shot); the on-arm's
    trace/step fingerprint must equal the off-arm's bit-for-bit, which
    is the read-only-observer contract the differential suite pins
    per-event.
    """
    names = [w.strip() for w in workloads.split(",") if w.strip()]
    unknown = sorted(set(names) - {"shards", "million"})
    if unknown:
        raise ValueError(f"unknown workload(s): {', '.join(unknown)}")
    points: list[ObsPoint] = []
    for workload in names:
        best_off = best_on = float("inf")
        off_fp = on_fp = None
        stats: dict = {}
        # Arms interleave within each repeat: running every off repeat
        # first would let allocator/heap drift masquerade as observer
        # overhead (the bias is larger than the overhead under test).
        for _ in range(max(1, repeats)):
            if workload == "shards":
                wall, off_fp, _, _ = _run_system_arm(
                    n_devices, seed, t_end_s, False, max_spans
                )
                best_off = min(best_off, wall)
                wall, on_fp, dep, result = _run_system_arm(
                    n_devices, seed, t_end_s, True, max_spans
                )
                events = sum(result.log.kind_totals().values())
                stats = _telemetry_stats(dep.simulation.telemetry, events)
            else:
                wall, off_fp, _ = _run_fleet_arm(
                    fleet_devices, seed, horizon_s, False, max_spans
                )
                best_off = min(best_off, wall)
                wall, on_fp, observer = _run_fleet_arm(
                    fleet_devices, seed, horizon_s, True, max_spans
                )
                stats = _telemetry_stats(observer, 0)
            best_on = min(best_on, wall)
        points.append(
            ObsPoint(
                workload=workload,
                telemetry_off_s=best_off,
                telemetry_on_s=best_on,
                overhead_pct=(
                    (best_on - best_off) / best_off * 100.0
                    if best_off > 0
                    else float("inf")
                ),
                bit_identical=(off_fp == on_fp),
                **stats,
            )
        )
    return ObsResult(
        seed=seed,
        repeats=repeats,
        n_devices=n_devices,
        fleet_devices=fleet_devices,
        t_end_s=t_end_s,
        horizon_s=horizon_s,
        points=points,
        max_overhead_pct=max(p.overhead_pct for p in points),
        all_identical=all(p.bit_identical for p in points),
    )


def print_obs(res: ObsResult) -> None:
    """Render the telemetry overhead/invariance table as text."""
    print_table(
        [
            "workload",
            "off (s)",
            "on (s)",
            "overhead %",
            "bit-identical",
            "spans",
            "open",
            "orphans",
            "series",
            "events",
        ],
        [
            [
                p.workload,
                p.telemetry_off_s,
                p.telemetry_on_s,
                p.overhead_pct,
                p.bit_identical,
                p.spans_total,
                p.spans_open,
                p.span_orphans,
                p.metric_series,
                p.events_total,
            ]
            for p in res.points
        ],
        title=(
            f"Observability plane — telemetry off vs on "
            f"(system {res.n_devices} devices / {res.t_end_s:g}s, "
            f"fleet {res.fleet_devices} devices / {res.horizon_s:g}s, "
            f"best of {res.repeats}; max overhead "
            f"{res.max_overhead_pct:.2f}%)"
        ),
    )


def _run_obs(scale: Scale, seed: int, **params) -> ObsResult:
    return obs_experiment(seed=seed, **params)


registry.register(
    registry.ExperimentSpec(
        "obs",
        _run_obs,
        print_obs,
        ObsResult,
        description=(
            "telemetry off vs on per workload: observer overhead %, "
            "bit-identity, span-tree completeness"
        ),
        default_grid={},
        uses_scale=False,
    ),
    replace=True,
)


# ---------------------------------------------------------------------------
# The `trace` CLI backend: one scenario, telemetry forced on, exported
# ---------------------------------------------------------------------------

def trace_scenario(
    doc: dict,
    t_end: float | None = None,
    max_spans: int | None = None,
):
    """Run a scenario document with telemetry forced on.

    Returns ``(result, report)`` where ``report`` is the run's
    :class:`repro.obs.telemetry.TelemetryReport` (span/event JSONL and
    Prometheus exposition come from it).  The document's own telemetry
    section is honored except ``enabled``, which is overridden to True.
    """
    doc = dict(doc)
    telemetry = dict(doc.get("telemetry") or {})
    telemetry["enabled"] = True
    if max_spans is not None:
        telemetry["max_spans"] = max_spans
    doc["telemetry"] = telemetry
    spec = ScenarioSpec.from_dict(doc)
    result = Deployment.from_spec(spec).run(t_end=t_end)
    return result, result.telemetry
