"""Scenario builders shared by every figure regenerator.

The figure functions describe their deployments as
:class:`~repro.api.ScenarioSpec` values via :func:`async_scenario` /
:func:`sync_scenario` and build them through the :mod:`repro.api`
façade.  The pre-redesign helpers (:func:`build_async`,
:func:`build_sync`, :func:`run_async`, :func:`run_sync`) remain as thin
**deprecated** shims over the same path — a shim-built simulation is
trace-identical to its spec-built equivalent (pinned by
``tests/test_api_deployment.py``).
"""

from __future__ import annotations

import dataclasses

from repro.api import (
    Deployment,
    ExecutionSpec,
    PlaneSpec,
    PopulationSpec,
    ScenarioSpec,
    TaskSpec,
    build_population,
)
from repro.core.surrogate import SurrogateParams
from repro.harness.configs import CLIENT_TIMEOUT_S, OVER_SELECTION
from repro.sim.population import DevicePopulation
from repro.system.orchestrator import FederatedSimulation, RunResult, SystemConfig

__all__ = [
    "make_population",
    "async_scenario",
    "sync_scenario",
    "deploy",
    "build_async",
    "build_sync",
    "run_async",
    "run_sync",
    "DEFAULT_TARGET_LOSS",
]

# With the default SurrogateParams (initial 4.16, floor 2.2) this target
# requires substantial but attainable progress — runs reach it in a few
# simulated hours at paper-like ratios.
DEFAULT_TARGET_LOSS = 2.55

# Small model-on-the-wire for simulation speed; the wire size only shifts
# network latencies, which are dwarfed by training times.
SIM_MODEL_BYTES = 1_000_000


def make_population(n_devices: int, seed: int = 0, **overrides) -> DevicePopulation:
    """The standard heterogeneous population (Figure 2-calibrated)."""
    return build_population(
        PopulationSpec(n_devices=n_devices, seed=seed, overrides=overrides)
    )


def _trainer_params(surrogate: SurrogateParams | None) -> dict:
    """Serialize surrogate calibration constants for a TaskSpec."""
    if surrogate is None:
        return {}
    return {
        f.name: getattr(surrogate, f.name)
        for f in dataclasses.fields(SurrogateParams)
    }


def _plane_and_system(system: SystemConfig | None) -> tuple[PlaneSpec, dict]:
    """Split a SystemConfig into a PlaneSpec + plain system overrides."""
    if system is None:
        return PlaneSpec(), {}
    if system.plane in ("auto", "sharded") and system.num_shards > 1:
        plane = PlaneSpec(
            name="sharded",
            num_shards=system.num_shards,
            shard_routing=system.shard_routing,
        )
    elif system.plane != "auto":
        if system.num_shards > 1:
            # A custom pinned plane carrying shard knobs has no ScenarioSpec
            # representation; refusing beats silently dropping the shards.
            raise ValueError(
                f"cannot express SystemConfig(plane={system.plane!r}, "
                f"num_shards={system.num_shards}) as a ScenarioSpec plane"
            )
        plane = PlaneSpec(name=system.plane)
    else:
        plane = PlaneSpec()
    overrides = {
        f.name: getattr(system, f.name)
        for f in dataclasses.fields(SystemConfig)
        if f.name not in ("num_shards", "shard_routing", "plane")
        and getattr(system, f.name) != f.default
    }
    return plane, overrides


def _population_spec(
    population: DevicePopulation | PopulationSpec,
) -> PopulationSpec:
    if isinstance(population, PopulationSpec):
        return population
    return PopulationSpec.from_population(population)


def async_scenario(
    concurrency: int,
    goal: int,
    population: DevicePopulation | PopulationSpec,
    seed: int = 0,
    max_staleness: int = 100,
    surrogate: SurrogateParams | None = None,
    system: SystemConfig | None = None,
    target_loss: float | None = None,
    t_end_s: float | None = None,
) -> ScenarioSpec:
    """An AsyncFL (FedBuff) deployment with a surrogate trainer, as a spec."""
    plane, overrides = _plane_and_system(system)
    return ScenarioSpec(
        population=_population_spec(population),
        tasks=(
            TaskSpec(
                name="async",
                mode="async",
                concurrency=concurrency,
                aggregation_goal=goal,
                max_staleness=max_staleness,
                client_timeout_s=CLIENT_TIMEOUT_S,
                model_size_bytes=SIM_MODEL_BYTES,
                trainer="surrogate",
                trainer_params=_trainer_params(surrogate),
            ),
        ),
        plane=plane,
        system=overrides,
        execution=ExecutionSpec(
            seed=seed, t_end_s=t_end_s, target_loss=target_loss
        ),
    )


def sync_scenario(
    goal: int,
    population: DevicePopulation | PopulationSpec,
    over_selection: float = OVER_SELECTION,
    seed: int = 0,
    surrogate: SurrogateParams | None = None,
    system: SystemConfig | None = None,
    target_loss: float | None = None,
    t_end_s: float | None = None,
) -> ScenarioSpec:
    """A SyncFL deployment spec; concurrency = the over-selected cohort."""
    import math

    cohort = int(math.ceil(goal * (1.0 + over_selection)))
    plane, overrides = _plane_and_system(system)
    return ScenarioSpec(
        population=_population_spec(population),
        tasks=(
            TaskSpec(
                name="sync",
                mode="sync",
                concurrency=cohort,
                aggregation_goal=goal,
                over_selection=over_selection,
                client_timeout_s=CLIENT_TIMEOUT_S,
                model_size_bytes=SIM_MODEL_BYTES,
                trainer="surrogate",
                trainer_params=_trainer_params(surrogate),
            ),
        ),
        plane=plane,
        system=overrides,
        execution=ExecutionSpec(
            seed=seed, t_end_s=t_end_s, target_loss=target_loss
        ),
    )


def deploy(
    spec: ScenarioSpec, population: DevicePopulation | None = None
) -> FederatedSimulation:
    """Build a spec through the façade, reusing a built population."""
    return Deployment.from_spec(spec, population=population).build()


# ---------------------------------------------------------------------------
# Deprecated shims (pre-redesign helper surface)
# ---------------------------------------------------------------------------

def build_async(
    concurrency: int,
    goal: int,
    population: DevicePopulation,
    seed: int = 0,
    max_staleness: int = 100,
    surrogate: SurrogateParams | None = None,
    system: SystemConfig | None = None,
) -> FederatedSimulation:
    """Deprecated: use :func:`async_scenario` + :func:`repro.api.build`."""
    spec = async_scenario(
        concurrency, goal, population, seed=seed, max_staleness=max_staleness,
        surrogate=surrogate, system=system,
    )
    return deploy(spec, population=population)


def build_sync(
    goal: int,
    population: DevicePopulation,
    over_selection: float = OVER_SELECTION,
    seed: int = 0,
    surrogate: SurrogateParams | None = None,
    system: SystemConfig | None = None,
) -> FederatedSimulation:
    """Deprecated: use :func:`sync_scenario` + :func:`repro.api.build`."""
    spec = sync_scenario(
        goal, population, over_selection=over_selection, seed=seed,
        surrogate=surrogate, system=system,
    )
    return deploy(spec, population=population)


def run_async(
    concurrency: int,
    goal: int,
    population: DevicePopulation,
    t_end: float,
    target_loss: float | None = None,
    seed: int = 0,
    **kw,
) -> RunResult:
    """Deprecated: build a spec and run it through :class:`Deployment`."""
    sim = build_async(concurrency, goal, population, seed=seed, **kw)
    return sim.run(t_end=t_end, target_loss=target_loss)


def run_sync(
    goal: int,
    population: DevicePopulation,
    t_end: float,
    over_selection: float = OVER_SELECTION,
    target_loss: float | None = None,
    seed: int = 0,
    **kw,
) -> RunResult:
    """Deprecated: build a spec and run it through :class:`Deployment`."""
    sim = build_sync(goal, population, over_selection=over_selection, seed=seed, **kw)
    return sim.run(t_end=t_end, target_loss=target_loss)
