"""Run helpers shared by every figure regenerator."""

from __future__ import annotations

from repro.core.surrogate import SurrogateParams
from repro.core.types import TaskConfig, TrainingMode
from repro.harness.configs import CLIENT_TIMEOUT_S, OVER_SELECTION
from repro.sim.population import DevicePopulation, PopulationConfig
from repro.system.adapters import SurrogateAdapter
from repro.system.orchestrator import FederatedSimulation, RunResult, SystemConfig

__all__ = [
    "make_population",
    "build_async",
    "build_sync",
    "run_async",
    "run_sync",
    "DEFAULT_TARGET_LOSS",
]

# With the default SurrogateParams (initial 4.16, floor 2.2) this target
# requires substantial but attainable progress — runs reach it in a few
# simulated hours at paper-like ratios.
DEFAULT_TARGET_LOSS = 2.55

# Small model-on-the-wire for simulation speed; the wire size only shifts
# network latencies, which are dwarfed by training times.
SIM_MODEL_BYTES = 1_000_000


def make_population(n_devices: int, seed: int = 0, **overrides) -> DevicePopulation:
    """The standard heterogeneous population (Figure 2-calibrated)."""
    return DevicePopulation(PopulationConfig(n_devices=n_devices, **overrides), seed=seed)


def build_async(
    concurrency: int,
    goal: int,
    population: DevicePopulation,
    seed: int = 0,
    max_staleness: int = 100,
    surrogate: SurrogateParams | None = None,
    system: SystemConfig | None = None,
) -> FederatedSimulation:
    """An AsyncFL (FedBuff) deployment with a surrogate trainer."""
    cfg = TaskConfig(
        name="async",
        mode=TrainingMode.ASYNC,
        concurrency=concurrency,
        aggregation_goal=goal,
        max_staleness=max_staleness,
        client_timeout_s=CLIENT_TIMEOUT_S,
        model_size_bytes=SIM_MODEL_BYTES,
    )
    adapter = SurrogateAdapter(surrogate, seed=seed)
    return FederatedSimulation([(cfg, adapter)], population, system=system, seed=seed)


def build_sync(
    goal: int,
    population: DevicePopulation,
    over_selection: float = OVER_SELECTION,
    seed: int = 0,
    surrogate: SurrogateParams | None = None,
    system: SystemConfig | None = None,
) -> FederatedSimulation:
    """A SyncFL deployment; concurrency = the over-selected cohort size."""
    import math

    cohort = int(math.ceil(goal * (1.0 + over_selection)))
    cfg = TaskConfig(
        name="sync",
        mode=TrainingMode.SYNC,
        concurrency=cohort,
        aggregation_goal=goal,
        over_selection=over_selection,
        client_timeout_s=CLIENT_TIMEOUT_S,
        model_size_bytes=SIM_MODEL_BYTES,
    )
    adapter = SurrogateAdapter(surrogate, seed=seed)
    return FederatedSimulation([(cfg, adapter)], population, system=system, seed=seed)


def run_async(
    concurrency: int,
    goal: int,
    population: DevicePopulation,
    t_end: float,
    target_loss: float | None = None,
    seed: int = 0,
    **kw,
) -> RunResult:
    """Build and run an async deployment in one call."""
    sim = build_async(concurrency, goal, population, seed=seed, **kw)
    return sim.run(t_end=t_end, target_loss=target_loss)


def run_sync(
    goal: int,
    population: DevicePopulation,
    t_end: float,
    over_selection: float = OVER_SELECTION,
    target_loss: float | None = None,
    seed: int = 0,
    **kw,
) -> RunResult:
    """Build and run a sync deployment in one call."""
    sim = build_sync(goal, population, over_selection=over_selection, seed=seed, **kw)
    return sim.run(t_end=t_end, target_loss=target_loss)
