"""Regenerators for every figure and table in the paper's evaluation.

Each ``figure*``/``table1`` function runs the corresponding experiment at
a configurable scale and returns a structured result whose fields are the
series/rows of the original plot.  ``print_*`` companions render them as
text.  The pytest-benchmark modules under ``benchmarks/`` call these with
the SMOKE scale and assert the paper's qualitative claims (who wins, by
roughly what factor, where the crossovers are).

Index (paper → function):

* Figure 2  — client execution-time distribution; round duration vs mean
  client time → :func:`figure2`
* Figure 3  — SyncFL time-to-target & comm trips vs concurrency → :func:`figure3`
* Figure 6  — host↔TEE transfer time vs aggregation goal → :func:`figure6`
* Figure 7  — active clients over time, Sync vs Async → :func:`figure7`
* Figure 8  — server model updates per hour vs concurrency → :func:`figure8`
* Figure 9  — time-to-target, speedup, comm trips vs concurrency → :func:`figure9`
* Figure 10 — time-to-target & update rate vs aggregation goal K → :func:`figure10`
* Figure 11 — participant distributions ± over-selection, KS tests → :func:`figure11`
* Figure 12 — training curves for the four configurations → :func:`figure12`
* Figure 13 — hours-to-target bar chart for the four configurations → :func:`figure13`
* Table 1   — test perplexity by data-volume percentile (real training) → :func:`table1`
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.api import (
    Deployment,
    ExecutionSpec,
    PopulationSpec,
    ScenarioSpec,
    TaskSpec,
)
from repro.core.server_opt import FedAdam
from repro.core.state import GlobalModelState
from repro.core.client_trainer import LocalTrainer
from repro.core.surrogate import SurrogateParams
from repro.core.types import TrainingMode
from repro.data.federated import FederatedDataset
from repro.data.synthetic_text import CorpusSpec, TopicMarkovCorpus
from repro.harness import registry
from repro.harness.configs import DEFAULT, OVER_SELECTION, Scale, MODEL_BYTES_20MB
from repro.harness.ks import KSResult, ks_two_sample
from repro.harness.report import print_series, print_table
from repro.harness.runner import (
    DEFAULT_TARGET_LOSS,
    async_scenario,
    deploy,
    make_population,
    sync_scenario,
)
from repro.nn.model import LSTMLanguageModel, ModelConfig
from repro.secagg.protocol import BoundaryCostModel
from repro.sim.population import DevicePopulation
from repro.sim.trace import Outcome
from repro.system.adapters import RealTrainingAdapter
from repro.system.orchestrator import FederatedSimulation, RunResult
from repro.utils.rng import child_rng

__all__ = [
    "figure2", "figure3", "figure6", "figure7", "figure8", "figure9",
    "figure10", "figure11", "figure12", "figure13", "table1",
    "Fig2Result", "Fig3Result", "Fig6Result", "Fig7Result", "Fig8Result",
    "Fig9Result", "Fig10Result", "Fig11Result", "Fig12Result", "Fig13Result",
    "Table1Result",
]


def _params(scale: Scale) -> SurrogateParams:
    return SurrogateParams(critical_goal=scale.critical_goal)


def _async_sim(
    concurrency: int, goal: int, pop: DevicePopulation, scale: Scale, seed: int,
) -> FederatedSimulation:
    """An AsyncFL figure deployment, built through the scenario API."""
    spec = async_scenario(
        concurrency, goal, pop, seed=seed, surrogate=_params(scale)
    )
    return deploy(spec, population=pop)


def _sync_sim(
    goal: int, pop: DevicePopulation, scale: Scale, seed: int,
    over_selection: float = OVER_SELECTION,
) -> FederatedSimulation:
    """A SyncFL figure deployment, built through the scenario API."""
    spec = sync_scenario(
        goal, pop, over_selection=over_selection, seed=seed,
        surrogate=_params(scale),
    )
    return deploy(spec, population=pop)


def _sync_goal(concurrency: int, over_selection: float = OVER_SELECTION) -> int:
    """The paper's convention: concurrency = goal × (1 + over-selection).

    Floored so the over-selected cohort never exceeds the concurrency cap
    (ceil(floor(C/1.3) × 1.3) ≤ C).
    """
    return max(1, int(concurrency / (1.0 + over_selection)))


# ---------------------------------------------------------------------------
# Figure 2 — execution-time heterogeneity and the straggler effect
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig2Result:
    """Execution-time histogram + round-duration comparison."""

    bin_edges: np.ndarray
    density: np.ndarray
    mean_client_s: float
    median_client_s: float
    mean_round_s: float
    round_to_client_ratio: float
    spread_orders_of_magnitude: float


def figure2(
    population: DevicePopulation | None = None,
    cohort: int = 1000,
    n_rounds: int = 30,
    n_hist_samples: int = 20_000,
    seed: int = 0,
) -> Fig2Result:
    """Client execution-time distribution (log x-axis) and the 21× gap.

    The round duration of SyncFL at concurrency = goal = ``cohort`` is the
    maximum over the cohort's execution times (no over-selection), just as
    in the paper's measurement.
    """
    pop = population or make_population(100_000, seed=seed)
    rng = child_rng(seed, "fig2")
    profiles = pop.sample_profiles(min(n_hist_samples, pop.config.n_devices), rng)
    times = np.array([p.execution_time(pop.config.overhead_s) for p in profiles])

    edges = np.logspace(np.log10(max(times.min(), 0.1)), np.log10(times.max()), 50)
    density, _ = np.histogram(times, bins=edges, density=True)
    density = density / density.max() if density.max() > 0 else density

    round_durations = []
    for r in range(n_rounds):
        cohort_times = rng.choice(times, size=min(cohort, times.size), replace=False)
        round_durations.append(float(cohort_times.max()))

    mean_client = float(times.mean())
    mean_round = float(np.mean(round_durations))
    return Fig2Result(
        bin_edges=edges,
        density=density,
        mean_client_s=mean_client,
        median_client_s=float(np.median(times)),
        mean_round_s=mean_round,
        round_to_client_ratio=mean_round / mean_client,
        spread_orders_of_magnitude=float(
            np.log10(np.percentile(times, 99.5) / max(np.percentile(times, 0.5), 1e-9))
        ),
    )


def print_figure2(res: Fig2Result) -> None:
    """Render Figure 2 as text."""
    print_series("exec-time density (log bins)", res.bin_edges[:-1], res.density)
    print_table(
        ["metric", "value"],
        [
            ["mean client execution time (s)", res.mean_client_s],
            ["median client execution time (s)", res.median_client_s],
            ["mean SyncFL round duration (s)", res.mean_round_s],
            ["round / client ratio (paper: ~21x)", res.round_to_client_ratio],
            ["spread (orders of magnitude, paper: >2)", res.spread_orders_of_magnitude],
        ],
        title="Figure 2 — client execution times vs round duration",
    )


# ---------------------------------------------------------------------------
# Figure 3 — SyncFL scaling limits
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One operating point of a concurrency sweep."""

    concurrency: int
    goal: int
    time_to_target_h: float | None
    comm_trips: int
    steps_per_hour: float


@dataclass(frozen=True)
class Fig3Result:
    """SyncFL time-to-target and communication vs concurrency."""

    points: list[SweepPoint]
    target_loss: float


def figure3(
    scale: Scale = DEFAULT,
    target_loss: float = DEFAULT_TARGET_LOSS,
    seed: int = 0,
) -> Fig3Result:
    """SyncFL-only concurrency sweep (the motivation experiment)."""
    pop = make_population(scale.population, seed=seed)
    points = []
    for conc in scale.concurrency_sweep:
        goal = _sync_goal(conc)
        sim = _sync_sim(goal, pop, scale, seed=seed)
        res = sim.run(t_end=scale.sim_seconds * 4, target_loss=target_loss)
        s = res.stats("sync")
        t = s.time_to_target
        points.append(
            SweepPoint(
                concurrency=conc,
                goal=goal,
                time_to_target_h=None if t is None else t / 3600.0,
                comm_trips=_trips_until(res, "sync", t),
                steps_per_hour=res.trace.steps_per_hour("sync"),
            )
        )
    return Fig3Result(points=points, target_loss=target_loss)


def _trips_until(res: RunResult, task: str, t: float | None) -> int:
    """Client updates received at the server before time ``t``."""
    horizon = math.inf if t is None else t
    return sum(
        1
        for p in res.trace.participations
        if p.task == task
        and p.outcome in (Outcome.AGGREGATED, Outcome.DISCARDED)
        and p.end_time <= horizon
    )


def print_figure3(res: Fig3Result) -> None:
    """Render Figure 3 as text."""
    print_table(
        ["concurrency", "goal", "hours to target", "comm trips", "steps/h"],
        [
            [p.concurrency, p.goal,
             "n/a" if p.time_to_target_h is None else p.time_to_target_h,
             p.comm_trips, p.steps_per_hour]
            for p in res.points
        ],
        title=f"Figure 3 — SyncFL scaling (target loss {res.target_loss})",
    )


# ---------------------------------------------------------------------------
# Figure 6 — TEE boundary-transfer time
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig6Result:
    """Naive TSA vs Asynchronous SecAgg boundary transfer times."""

    goals: tuple[int, ...]
    naive_ms: list[float]
    async_ms: list[float]
    model_bytes: int


def figure6(
    goals: tuple[int, ...] = (10, 50, 100, 500, 1000),
    model_bytes: int = MODEL_BYTES_20MB,
    cost_model: BoundaryCostModel | None = None,
) -> Fig6Result:
    """Data-transfer time across the TEE boundary vs aggregation goal."""
    m = cost_model or BoundaryCostModel()
    return Fig6Result(
        goals=tuple(goals),
        naive_ms=[m.naive_transfer_ms(k, model_bytes) for k in goals],
        async_ms=[m.async_transfer_ms(k, model_bytes) for k in goals],
        model_bytes=model_bytes,
    )


def print_figure6(res: Fig6Result) -> None:
    """Render Figure 6 as text."""
    rows = [
        [k, n, a, n / a]
        for k, n, a in zip(res.goals, res.naive_ms, res.async_ms)
    ]
    print_table(
        ["K", "naive TSA (ms)", "AsyncSecAgg (ms)", "ratio"],
        rows,
        title=f"Figure 6 — TEE boundary transfer time, {res.model_bytes >> 20} MB model",
    )


# ---------------------------------------------------------------------------
# Figure 7 — client utilization over time
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7Result:
    """Active-client time series for SyncFL and AsyncFL."""

    sync_times: np.ndarray
    sync_active: np.ndarray
    async_times: np.ndarray
    async_active: np.ndarray
    concurrency: int
    sync_utilization: float
    async_utilization: float


def figure7(
    scale: Scale = DEFAULT,
    duration_h: float | None = None,
    seed: int = 0,
) -> Fig7Result:
    """Active clients over time at equal max concurrency (paper: 1300)."""
    duration = (duration_h or scale.sim_hours / 2) * 3600.0
    conc = scale.base_concurrency
    pop = make_population(scale.population, seed=seed)

    sync_sim = _sync_sim(_sync_goal(conc), pop, scale, seed=seed)
    sync_res = sync_sim.run(t_end=duration)
    async_sim = _async_sim(conc, scale.base_goal, pop, scale, seed=seed + 1)
    async_res = async_sim.run(t_end=duration)

    st, sc = sync_res.trace.active_series()
    at, ac = async_res.trace.active_series()
    warmup = duration * 0.2
    return Fig7Result(
        sync_times=st, sync_active=sc, async_times=at, async_active=ac,
        concurrency=conc,
        sync_utilization=sync_res.trace.mean_utilization(conc, warmup, duration),
        async_utilization=async_res.trace.mean_utilization(conc, warmup, duration),
    )


def print_figure7(res: Fig7Result) -> None:
    """Render Figure 7 as text."""
    print_series("SyncFL active clients", res.sync_times, res.sync_active)
    print_series("AsyncFL active clients", res.async_times, res.async_active)
    print_table(
        ["configuration", "mean utilization"],
        [
            [f"SyncFL w/ OS (max {res.concurrency})", res.sync_utilization],
            [f"AsyncFL (max {res.concurrency})", res.async_utilization],
        ],
        title="Figure 7 — client utilization",
    )


# ---------------------------------------------------------------------------
# Figure 8 — server model updates per hour
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig8Result:
    """Server update rate vs concurrency, Sync vs Async."""

    concurrencies: tuple[int, ...]
    sync_steps_per_hour: list[float]
    async_steps_per_hour: list[float]
    async_goal: int


def figure8(
    scale: Scale = DEFAULT,
    duration_h: float | None = None,
    seed: int = 0,
) -> Fig8Result:
    """Update-rate sweep; the paper sees ~30× at concurrency 2300."""
    duration = (duration_h or scale.sim_hours / 2) * 3600.0
    pop = make_population(scale.population, seed=seed)
    sync_rates, async_rates = [], []
    for conc in scale.concurrency_sweep:
        sync_sim = _sync_sim(_sync_goal(conc), pop, scale, seed=seed)
        sync_rates.append(sync_sim.run(t_end=duration).trace.steps_per_hour("sync"))
        async_sim = _async_sim(conc, scale.base_goal, pop, scale, seed=seed + 1)
        async_rates.append(async_sim.run(t_end=duration).trace.steps_per_hour("async"))
    return Fig8Result(
        concurrencies=scale.concurrency_sweep,
        sync_steps_per_hour=sync_rates,
        async_steps_per_hour=async_rates,
        async_goal=scale.base_goal,
    )


def print_figure8(res: Fig8Result) -> None:
    """Render Figure 8 as text."""
    rows = [
        [c, s, a, (a / s if s > 0 else float("inf"))]
        for c, s, a in zip(
            res.concurrencies, res.sync_steps_per_hour, res.async_steps_per_hour
        )
    ]
    print_table(
        ["concurrency", "sync steps/h", f"async steps/h (K={res.async_goal})", "ratio"],
        rows,
        title="Figure 8 — server model updates per hour",
    )


# ---------------------------------------------------------------------------
# Figure 9 — convergence speed and communication efficiency
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig9Row:
    """One concurrency level of the headline comparison."""

    concurrency: int
    sync_hours: float | None
    async_hours: float | None
    speedup: float | None
    sync_trips: int
    async_trips: int
    trip_ratio: float | None


@dataclass(frozen=True)
class Fig9Result:
    """AsyncFL vs SyncFL: hours to target, speedup, communication trips."""

    rows: list[Fig9Row]
    target_loss: float


def figure9(
    scale: Scale = DEFAULT,
    target_loss: float = DEFAULT_TARGET_LOSS,
    seed: int = 0,
) -> Fig9Result:
    """The paper's headline: async up to 5× faster, 8× fewer trips."""
    pop = make_population(scale.population, seed=seed)
    rows = []
    for conc in scale.concurrency_sweep:
        sync_sim = _sync_sim(_sync_goal(conc), pop, scale, seed=seed)
        sync_res = sync_sim.run(t_end=scale.sim_seconds * 4, target_loss=target_loss)
        sync_t = sync_res.stats("sync").time_to_target

        async_sim = _async_sim(conc, scale.base_goal, pop, scale, seed=seed + 1)
        async_res = async_sim.run(t_end=scale.sim_seconds * 4, target_loss=target_loss)
        async_t = async_res.stats("async").time_to_target

        sync_trips = _trips_until(sync_res, "sync", sync_t)
        async_trips = _trips_until(async_res, "async", async_t)
        rows.append(
            Fig9Row(
                concurrency=conc,
                sync_hours=None if sync_t is None else sync_t / 3600.0,
                async_hours=None if async_t is None else async_t / 3600.0,
                speedup=(
                    sync_t / async_t
                    if sync_t is not None and async_t is not None and async_t > 0
                    else None
                ),
                sync_trips=sync_trips,
                async_trips=async_trips,
                trip_ratio=(
                    sync_trips / async_trips if async_trips > 0 else None
                ),
            )
        )
    return Fig9Result(rows=rows, target_loss=target_loss)


def print_figure9(res: Fig9Result) -> None:
    """Render Figure 9 as text."""
    print_table(
        ["concurrency", "sync (h)", "async (h)", "speedup",
         "sync trips", "async trips", "trip ratio"],
        [
            [r.concurrency,
             "n/a" if r.sync_hours is None else r.sync_hours,
             "n/a" if r.async_hours is None else r.async_hours,
             "n/a" if r.speedup is None else r.speedup,
             r.sync_trips, r.async_trips,
             "n/a" if r.trip_ratio is None else r.trip_ratio]
            for r in res.rows
        ],
        title=f"Figure 9 — time/communication to target loss {res.target_loss}",
    )


# ---------------------------------------------------------------------------
# Figure 10 — effect of the aggregation goal K
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig10Row:
    """One aggregation-goal setting at fixed concurrency."""

    goal: int
    time_to_target_h: float | None
    steps_per_hour: float


@dataclass(frozen=True)
class Fig10Result:
    """Async convergence time and update rate vs K (fixed concurrency)."""

    rows: list[Fig10Row]
    concurrency: int
    target_loss: float


def figure10(
    scale: Scale = DEFAULT,
    target_loss: float = DEFAULT_TARGET_LOSS,
    seed: int = 0,
) -> Fig10Result:
    """K sweep at fixed concurrency (paper: C=1300, K=100…1300)."""
    pop = make_population(scale.population, seed=seed)
    conc = scale.base_concurrency
    rows = []
    for goal in scale.goal_sweep:
        if goal > conc:
            continue
        sim = _async_sim(conc, goal, pop, scale, seed=seed)
        res = sim.run(t_end=scale.sim_seconds * 4, target_loss=target_loss)
        t = res.stats("async").time_to_target
        rows.append(
            Fig10Row(
                goal=goal,
                time_to_target_h=None if t is None else t / 3600.0,
                steps_per_hour=res.trace.steps_per_hour("async"),
            )
        )
    return Fig10Result(rows=rows, concurrency=conc, target_loss=target_loss)


def print_figure10(res: Fig10Result) -> None:
    """Render Figure 10 as text."""
    print_table(
        ["K", "hours to target", "server steps/h"],
        [
            [r.goal,
             "n/a" if r.time_to_target_h is None else r.time_to_target_h,
             r.steps_per_hour]
            for r in res.rows
        ],
        title=(
            f"Figure 10 — aggregation goal sweep at concurrency "
            f"{res.concurrency} (target {res.target_loss})"
        ),
    )


# ---------------------------------------------------------------------------
# Figure 11 — sampling bias from over-selection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig11Result:
    """Participant distributions and KS tests against the ground truth."""

    truth_exec: np.ndarray          # SyncFL w/o OS = unbiased reference
    sync_os_exec: np.ndarray
    async_exec: np.ndarray
    truth_examples: np.ndarray
    sync_os_examples: np.ndarray
    async_examples: np.ndarray
    ks_async_exec: KSResult
    ks_sync_os_exec: KSResult
    ks_async_examples: KSResult
    ks_sync_os_examples: KSResult


def figure11(
    scale: Scale = DEFAULT,
    duration_h: float | None = None,
    seed: int = 0,
) -> Fig11Result:
    """Who actually gets aggregated, with and without over-selection."""
    duration = (duration_h or scale.sim_hours) * 3600.0
    pop = make_population(scale.population, seed=seed)
    conc = scale.base_concurrency
    goal = _sync_goal(conc)

    def aggregated_arrays(res: RunResult, task: str) -> tuple[np.ndarray, np.ndarray]:
        parts = [
            p for p in res.trace.participations
            if p.task == task and p.outcome is Outcome.AGGREGATED
        ]
        return (
            np.array([p.execution_time for p in parts]),
            np.array([p.n_examples for p in parts], dtype=float),
        )

    truth_res = _sync_sim(goal, pop, scale, seed=seed,
                          over_selection=0.0).run(t_end=duration)
    os_res = _sync_sim(goal, pop, scale, seed=seed,
                       over_selection=OVER_SELECTION).run(t_end=duration)
    async_res = _async_sim(conc, scale.base_goal, pop, scale,
                           seed=seed).run(t_end=duration)

    truth_exec, truth_n = aggregated_arrays(truth_res, "sync")
    os_exec, os_n = aggregated_arrays(os_res, "sync")
    a_exec, a_n = aggregated_arrays(async_res, "async")
    return Fig11Result(
        truth_exec=truth_exec, sync_os_exec=os_exec, async_exec=a_exec,
        truth_examples=truth_n, sync_os_examples=os_n, async_examples=a_n,
        ks_async_exec=ks_two_sample(a_exec, truth_exec),
        ks_sync_os_exec=ks_two_sample(os_exec, truth_exec),
        ks_async_examples=ks_two_sample(a_n, truth_n),
        ks_sync_os_examples=ks_two_sample(os_n, truth_n),
    )


def print_figure11(res: Fig11Result) -> None:
    """Render Figure 11 as text."""
    print_table(
        ["sample vs ground truth", "KS D", "p-value", "distinguishable?"],
        [
            ["AsyncFL exec time", res.ks_async_exec.statistic,
             res.ks_async_exec.pvalue, not res.ks_async_exec.matches()],
            ["SyncFL w/ OS exec time", res.ks_sync_os_exec.statistic,
             res.ks_sync_os_exec.pvalue, not res.ks_sync_os_exec.matches()],
            ["AsyncFL #examples", res.ks_async_examples.statistic,
             res.ks_async_examples.pvalue, not res.ks_async_examples.matches()],
            ["SyncFL w/ OS #examples", res.ks_sync_os_examples.statistic,
             res.ks_sync_os_examples.pvalue, not res.ks_sync_os_examples.matches()],
        ],
        title="Figure 11 — sampling bias (KS vs SyncFL w/o over-selection)",
    )
    print_table(
        ["population", "mean exec (s)", "mean #examples"],
        [
            ["ground truth (sync w/o OS)", float(res.truth_exec.mean()),
             float(res.truth_examples.mean())],
            ["SyncFL w/ OS", float(res.sync_os_exec.mean()),
             float(res.sync_os_examples.mean())],
            ["AsyncFL", float(res.async_exec.mean()),
             float(res.async_examples.mean())],
        ],
    )


# ---------------------------------------------------------------------------
# Figures 12 & 13 — decomposing AsyncFL's advantage
# ---------------------------------------------------------------------------

FOUR_CONFIGS = ("async_small_k", "async_big_k", "sync_with_os", "sync_without_os")


@dataclass(frozen=True)
class Fig12Result:
    """Training curves of the four configurations of Figure 12."""

    curves: dict[str, tuple[np.ndarray, np.ndarray]]
    concurrency: int
    small_goal: int
    big_goal: int


def _four_config_sims(
    scale: Scale, pop: DevicePopulation, seed: int
) -> dict[str, FederatedSimulation]:
    """The four configurations the paper compares at goal=1000/C=1300."""
    conc = scale.base_concurrency
    big_goal = _sync_goal(conc)  # e.g. 1000 at paper scale
    return {
        "async_small_k": _async_sim(conc, scale.base_goal, pop, scale, seed=seed),
        "async_big_k": _async_sim(conc, big_goal, pop, scale, seed=seed),
        "sync_with_os": _sync_sim(big_goal, pop, scale, seed=seed,
                                  over_selection=OVER_SELECTION),
        "sync_without_os": _sync_sim(big_goal, pop, scale, seed=seed,
                                     over_selection=0.0),
    }


def figure12(
    scale: Scale = DEFAULT,
    duration_h: float | None = None,
    seed: int = 0,
) -> Fig12Result:
    """Training curves: frequent steps vs staleness vs sampling bias."""
    duration = (duration_h or scale.sim_hours) * 3600.0
    pop = make_population(scale.population, seed=seed)
    curves = {}
    for name, sim in _four_config_sims(scale, pop, seed).items():
        res = sim.run(t_end=duration)
        task = next(iter(res.task_stats))
        curves[name] = res.trace.loss_curve(task)
    return Fig12Result(
        curves=curves,
        concurrency=scale.base_concurrency,
        small_goal=scale.base_goal,
        big_goal=_sync_goal(scale.base_concurrency),
    )


def print_figure12(res: Fig12Result) -> None:
    """Render Figure 12 as text."""
    for name, (times, losses) in res.curves.items():
        if len(times):
            print_series(f"{name:16s}", times, losses)
    rows = []
    for name, (times, losses) in res.curves.items():
        rows.append([name, len(times), losses[-1] if len(losses) else float("nan")])
    print_table(["configuration", "server steps", "final loss"], rows,
                title="Figure 12 — training curves")


@dataclass(frozen=True)
class Fig13Result:
    """Hours-to-target for the four configurations (bar chart)."""

    hours: dict[str, float | None]
    target_loss: float


def figure13(
    scale: Scale = DEFAULT,
    target_loss: float = DEFAULT_TARGET_LOSS,
    seed: int = 0,
) -> Fig13Result:
    """Time to target for the four Figure 12 configurations."""
    pop = make_population(scale.population, seed=seed)
    hours: dict[str, float | None] = {}
    for name, sim in _four_config_sims(scale, pop, seed).items():
        res = sim.run(t_end=scale.sim_seconds * 6, target_loss=target_loss)
        task = next(iter(res.task_stats))
        t = res.task_stats[task].time_to_target
        hours[name] = None if t is None else t / 3600.0
    return Fig13Result(hours=hours, target_loss=target_loss)


def print_figure13(res: Fig13Result) -> None:
    """Render Figure 13 as text."""
    print_table(
        ["configuration", "hours to target"],
        [[k, "n/a" if v is None else v] for k, v in res.hours.items()],
        title=f"Figure 13 — hours to target loss {res.target_loss}",
    )


# ---------------------------------------------------------------------------
# Table 1 — model quality and fairness under real training
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    """One method's quality/fairness numbers."""

    method: str
    ppl_all: float
    ppl_75: float
    ppl_99: float
    time_h: float
    client_updates: int


@dataclass(frozen=True)
class Table1Result:
    """Test perplexity by data-volume percentile after a fixed update budget."""

    rows: list[Table1Row]


def _percentile_clients(
    pop: DevicePopulation, n_sample: int, seed: int
) -> tuple[list[int], list[int], list[int]]:
    """Client id groups: all, ≥75th percentile, ≥99th percentile by data volume."""
    rng = child_rng(seed, "table1-percentiles")
    profiles = pop.sample_profiles(n_sample, rng)
    counts = np.array([p.n_examples for p in profiles])
    p75, p99 = np.percentile(counts, 75), np.percentile(counts, 99)
    all_ids = [p.device_id for p in profiles]
    ids75 = [p.device_id for p in profiles if p.n_examples >= p75]
    ids99 = [p.device_id for p in profiles if p.n_examples >= p99]
    return all_ids, ids75, ids99


def table1(
    update_budget: int = 400,
    concurrency: int = 16,
    async_goal: int = 4,
    population_size: int = 400,
    vocab_size: int = 24,
    server_lr: float = 0.1,
    client_lr: float = 1.0,
    seed: int = 0,
) -> Table1Result:
    """Real-training fairness comparison (scaled-down Table 1).

    Three methods — SyncFL without over-selection, SyncFL with 30 %
    over-selection, AsyncFL — each train the same NumPy LSTM until
    ``update_budget`` client updates have been aggregated; test perplexity
    is then measured for all clients and for the 75th / 99th data-volume
    percentiles (the paper's fairness slice).
    """
    model_cfg = ModelConfig(vocab_size=vocab_size, embed_dim=8, hidden_dim=16)
    corpus = TopicMarkovCorpus(
        CorpusSpec(
            vocab_size=vocab_size,
            seq_len=10,
            volume_topic_coupling=0.8,
            reference_examples=20.0,
        ),
        seed=seed,
    )
    pop = make_population(
        population_size, seed=seed, mean_examples=20.0, max_examples=80
    )
    all_ids, ids75, ids99 = _percentile_clients(pop, min(200, population_size), seed)

    def run_method(name: str, mode: TrainingMode, goal: int, over: float) -> Table1Row:
        dataset = FederatedDataset(corpus)
        model = LSTMLanguageModel(model_cfg, seed=seed)
        state = GlobalModelState(model.get_flat(), FedAdam(lr=server_lr))
        trainer = LocalTrainer(model_cfg, lr=client_lr, batch_size=8, seed=seed)
        eval_ids = all_ids[:24]
        adapter = RealTrainingAdapter(
            trainer, dataset, state,
            eval_clients=eval_ids,
            eval_examples=[pop.profile(i).n_examples for i in eval_ids],
            eval_every=5,
        )
        conc = concurrency if mode is TrainingMode.ASYNC else int(
            math.ceil(goal * (1.0 + over))
        )
        spec = ScenarioSpec(
            population=PopulationSpec.from_population(pop),
            tasks=(
                TaskSpec(
                    name=name, mode=mode.value, concurrency=conc,
                    aggregation_goal=goal, over_selection=over,
                    model_size_bytes=200_000, trainer="external",
                ),
            ),
            execution=ExecutionSpec(seed=seed),
        )
        fs = Deployment.from_spec(
            spec, population=pop, adapters={name: adapter}
        ).build()
        max_steps = max(1, update_budget // goal)
        res = fs.run(t_end=3e6, max_server_steps=max_steps)

        def ppl(ids: list[int]) -> float:
            return adapter.perplexity_for_clients(
                ids, [pop.profile(i).n_examples for i in ids]
            )

        return Table1Row(
            method=name,
            ppl_all=ppl(all_ids[:60]),
            ppl_75=ppl(ids75[:40]),
            ppl_99=ppl(ids99[:20] if ids99 else ids75[:5]),
            time_h=res.duration_s / 3600.0,
            client_updates=res.stats(name).aggregated,
        )

    rows = [
        run_method("sync_no_os", TrainingMode.SYNC, concurrency, 0.0),
        run_method("sync_with_os", TrainingMode.SYNC, concurrency, OVER_SELECTION),
        run_method("async", TrainingMode.ASYNC, async_goal, 0.0),
    ]
    return Table1Result(rows=rows)


def print_table1(res: Table1Result) -> None:
    """Render Table 1 as text."""
    print_table(
        ["method", "ppl All", "ppl 75%", "ppl 99%", "time (h)", "updates"],
        [
            [r.method, r.ppl_all, r.ppl_75, r.ppl_99, r.time_h, r.client_updates]
            for r in res.rows
        ],
        title="Table 1 — test perplexity by data-volume percentile",
    )


# ---------------------------------------------------------------------------
# Registry wiring — every figure/table becomes a first-class experiment
# ---------------------------------------------------------------------------
#
# The runners below are module-level so sweep worker processes can pickle
# and re-import them; each normalizes the registry calling convention
# ``runner(scale, seed, **params)`` onto the figure function's signature.

def _run_fig2(scale: Scale, seed: int, **params) -> Fig2Result:
    return figure2(seed=seed, **params)


def _run_fig3(scale: Scale, seed: int, **params) -> Fig3Result:
    return figure3(scale=scale, seed=seed, **params)


def _run_fig6(scale: Scale, seed: int, **params) -> Fig6Result:
    return figure6(**params)


def _run_fig7(scale: Scale, seed: int, **params) -> Fig7Result:
    return figure7(scale=scale, seed=seed, **params)


def _run_fig8(scale: Scale, seed: int, **params) -> Fig8Result:
    return figure8(scale=scale, seed=seed, **params)


def _run_fig9(scale: Scale, seed: int, **params) -> Fig9Result:
    return figure9(scale=scale, seed=seed, **params)


def _run_fig10(scale: Scale, seed: int, **params) -> Fig10Result:
    return figure10(scale=scale, seed=seed, **params)


def _run_fig11(scale: Scale, seed: int, **params) -> Fig11Result:
    return figure11(scale=scale, seed=seed, **params)


def _run_fig12(scale: Scale, seed: int, **params) -> Fig12Result:
    return figure12(scale=scale, seed=seed, **params)


def _run_fig13(scale: Scale, seed: int, **params) -> Fig13Result:
    return figure13(scale=scale, seed=seed, **params)


def _run_table1(scale: Scale, seed: int, **params) -> Table1Result:
    params.setdefault("update_budget", 800)
    params.setdefault("server_lr", 0.05)
    return table1(seed=seed, **params)


def _register_all() -> None:
    specs = [
        registry.ExperimentSpec(
            "fig2", _run_fig2, print_figure2, Fig2Result,
            description="client execution-time distribution vs round duration",
            uses_scale=False),
        registry.ExperimentSpec(
            "fig3", _run_fig3, print_figure3, Fig3Result,
            description="SyncFL time-to-target & comm trips vs concurrency"),
        registry.ExperimentSpec(
            "fig6", _run_fig6, print_figure6, Fig6Result,
            description="host-TEE transfer time vs aggregation goal",
            uses_seed=False, uses_scale=False),
        registry.ExperimentSpec(
            "fig7", _run_fig7, print_figure7, Fig7Result,
            description="active clients over time, Sync vs Async"),
        registry.ExperimentSpec(
            "fig8", _run_fig8, print_figure8, Fig8Result,
            description="server model updates per hour vs concurrency"),
        registry.ExperimentSpec(
            "fig9", _run_fig9, print_figure9, Fig9Result,
            description="time-to-target, speedup, comm trips vs concurrency"),
        registry.ExperimentSpec(
            "fig10", _run_fig10, print_figure10, Fig10Result,
            description="time-to-target & update rate vs aggregation goal K"),
        registry.ExperimentSpec(
            "fig11", _run_fig11, print_figure11, Fig11Result,
            description="participant distributions ± over-selection, KS tests"),
        registry.ExperimentSpec(
            "fig12", _run_fig12, print_figure12, Fig12Result,
            description="training curves for the four configurations"),
        registry.ExperimentSpec(
            "fig13", _run_fig13, print_figure13, Fig13Result,
            description="hours-to-target for the four configurations"),
        registry.ExperimentSpec(
            "table1", _run_table1, print_table1, Table1Result,
            description="test perplexity by data-volume percentile",
            uses_scale=False),
    ]
    for spec in specs:
        registry.register(spec, replace=True)


_register_all()
